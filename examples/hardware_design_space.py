"""Hardware design-space exploration with the calibrated system models.

Three sweeps a sensor architect would run before committing silicon:

1. **Frame-rate sweep** — energy per frame and per second for all four
   variants from 30 to 500 FPS, with the feasibility check of the Fig. 8
   schedule (NPU-Full stops keeping up when segmentation no longer fits a
   frame period).
2. **Resolution sweep** — BlissCam's advantage grows with resolution
   because readout + MIPI scale with pixels while its sampled fraction
   stays constant; this is where the paper's "up to 8.2x" headline lives.
3. **Process-node grid** — Fig. 17 at finer granularity.

Run:  python examples/hardware_design_space.py
"""

from dataclasses import replace

from repro.core import Table
from repro.hardware import (
    ProcessNodes,
    SystemEnergyModel,
    TimingModel,
    VARIANTS,
    WorkloadProfile,
)


def frame_rate_sweep() -> None:
    model = SystemEnergyModel()
    timing = TimingModel()
    profile = WorkloadProfile()
    table = Table(
        ["FPS"]
        + [f"{v} (uJ)" for v in VARIANTS]
        + ["BlissCam saving", "NPU-Full sustains?"],
        title="1. Frame-rate sweep (energy per frame)",
    )
    for fps in (30, 60, 90, 120, 240, 360, 500):
        energies = {v: model.frame_energy(v, profile, fps).total for v in VARIANTS}
        table.add_row(
            fps,
            *(round(energies[v] * 1e6, 1) for v in VARIANTS),
            f"{energies['NPU-Full'] / energies['BlissCam']:.2f}x",
            str(timing.schedule_feasible("NPU-Full", profile, fps)),
        )
    print(table.render())
    print()


def resolution_sweep() -> None:
    model = SystemEnergyModel()
    table = Table(
        ["sensor", "NPU-Full (uJ)", "BlissCam (uJ)", "saving"],
        title="2. Resolution sweep at 120 FPS (fixed sampled fraction)",
    )
    base = WorkloadProfile()
    for name, (height, width) in {
        "VGA-ish 640x400": (400, 640),
        "720P": (720, 1280),
        "1080P": (1080, 1920),
        "4K": (2160, 3840),
    }.items():
        scale = (height * width) / (base.height * base.width)
        profile = replace(
            base,
            height=height,
            width=width,
            seg_macs_dense=int(base.seg_macs_dense * scale),
            dram_bytes_dense=int(base.dram_bytes_dense * scale),
        )
        full = model.frame_energy("NPU-Full", profile, 120).total
        bliss = model.frame_energy("BlissCam", profile, 120).total
        table.add_row(
            name,
            round(full * 1e6, 1),
            round(bliss * 1e6, 1),
            f"{full / bliss:.2f}x",
        )
    print(table.render())
    print("   (the paper's 'up to 8.2x' appears at the high-resolution end)")
    print()


def node_grid() -> None:
    model = SystemEnergyModel()
    profile = WorkloadProfile()
    logic_nodes = (16, 22, 28, 40, 65)
    soc_nodes = (7, 16, 22)
    table = Table(
        ["logic \\ SoC"] + [f"{soc} nm" for soc in soc_nodes],
        title="3. BlissCam saving across process-node combinations",
    )
    for logic in logic_nodes:
        row = []
        for soc in soc_nodes:
            m = model.with_nodes(ProcessNodes(sensor_logic_nm=logic, host_nm=soc))
            row.append(f"{m.savings_over('NPU-Full', 'BlissCam', profile, 120):.2f}x")
        table.add_row(f"{logic} nm", *row)
    print(table.render())


def main() -> None:
    print("=== BlissCam hardware design-space exploration ===\n")
    frame_rate_sweep()
    resolution_sweep()
    node_grid()


if __name__ == "__main__":
    main()
