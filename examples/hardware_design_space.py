"""Hardware design-space exploration with the calibrated system models.

Three sweeps a sensor architect would run before committing silicon:

1. **Frame-rate sweep** — the declarative ``fps_sweep`` workload (plus
   per-variant energies and the Fig. 8 feasibility check of the timing
   model: NPU-Full stops keeping up when segmentation no longer fits a
   frame period).
2. **Resolution sweep** — BlissCam's advantage grows with resolution
   because readout + MIPI scale with pixels while its sampled fraction
   stays constant; this is where the paper's "up to 8.2x" headline lives.
3. **Process-node grid** — the ``node_sweep`` workload (Fig. 17), plus a
   finer-grained grid straight from the model.

Sweeps 1 and 3 run through ``repro.api`` — the same specs the CLI's
``sweep-fps`` / ``sweep-node`` subcommands build — so their numbers are
the front door's numbers; the custom sweeps query the models directly.

Run:  python examples/hardware_design_space.py
"""

from dataclasses import replace

from repro.api import ExperimentSpec, Session
from repro.core import Table
from repro.hardware import (
    ProcessNodes,
    SystemEnergyModel,
    TimingModel,
    VARIANTS,
    WorkloadProfile,
)


def frame_rate_sweep(session: Session) -> None:
    # A denser sweep than the Fig. 16 default points, so the table shows
    # where NPU-Full stops sustaining the frame rate.
    result = session.run(
        ExperimentSpec.from_dict(
            {
                "workload": "fps_sweep",
                "execution": {
                    "fps_sweep_points": [30, 60, 90, 120, 240, 360, 500]
                },
            }
        )
    )
    model = SystemEnergyModel()
    timing = TimingModel()
    profile = WorkloadProfile()
    table = Table(
        ["FPS"]
        + [f"{v} (uJ)" for v in VARIANTS]
        + ["BlissCam saving", "NPU-Full sustains?"],
        title="1. Frame-rate sweep (energy per frame)",
    )
    for fps_key, saving in result.metrics["savings_by_fps"].items():
        fps = float(fps_key)
        energies = {
            v: model.frame_energy(v, profile, fps).total for v in VARIANTS
        }
        table.add_row(
            int(fps),
            *(round(energies[v] * 1e6, 1) for v in VARIANTS),
            f"{saving:.2f}x",
            str(timing.schedule_feasible("NPU-Full", profile, fps)),
        )
    print(table.render())
    print()


def resolution_sweep() -> None:
    model = SystemEnergyModel()
    table = Table(
        ["sensor", "NPU-Full (uJ)", "BlissCam (uJ)", "saving"],
        title="2. Resolution sweep at 120 FPS (fixed sampled fraction)",
    )
    base = WorkloadProfile()
    for name, (height, width) in {
        "VGA-ish 640x400": (400, 640),
        "720P": (720, 1280),
        "1080P": (1080, 1920),
        "4K": (2160, 3840),
    }.items():
        scale = (height * width) / (base.height * base.width)
        profile = replace(
            base,
            height=height,
            width=width,
            seg_macs_dense=int(base.seg_macs_dense * scale),
            dram_bytes_dense=int(base.dram_bytes_dense * scale),
        )
        full = model.frame_energy("NPU-Full", profile, 120).total
        bliss = model.frame_energy("BlissCam", profile, 120).total
        table.add_row(
            name,
            round(full * 1e6, 1),
            round(bliss * 1e6, 1),
            f"{full / bliss:.2f}x",
        )
    print(table.render())
    print("   (the paper's 'up to 8.2x' appears at the high-resolution end)")
    print()


def node_grid(session: Session) -> None:
    # The Fig. 17 grid through the front door...
    result = session.run(ExperimentSpec.from_dict({"workload": "node_sweep"}))
    print("3. " + result.tables[0].render())
    print()

    # ...and a finer-grained grid straight from the model.
    model = SystemEnergyModel()
    profile = WorkloadProfile()
    logic_nodes = (16, 22, 28, 40, 65)
    soc_nodes = (7, 16, 22)
    table = Table(
        ["logic \\ SoC"] + [f"{soc} nm" for soc in soc_nodes],
        title="   finer grid (BlissCam saving)",
    )
    for logic in logic_nodes:
        row = []
        for soc in soc_nodes:
            m = model.with_nodes(ProcessNodes(sensor_logic_nm=logic, host_nm=soc))
            row.append(f"{m.savings_over('NPU-Full', 'BlissCam', profile, 120):.2f}x")
        table.add_row(f"{logic} nm", *row)
    print(table.render())


def main() -> None:
    print("=== BlissCam hardware design-space exploration ===\n")
    with Session() as session:
        frame_rate_sweep(session)
        resolution_sweep()
        node_grid(session)


if __name__ == "__main__":
    main()
