"""Quickstart: train and evaluate the full BlissCam pipeline in a minute.

Everything goes through the declarative front door: the experiment is a
JSON spec (``examples/specs/quickstart.json``), a ``Session`` trains the
CI-scale system (synthetic near-eye dataset, ROI predictor, sparse ViT,
functional sensor) exactly once and reuses it across runs, and the
result is the same uniform ``RunResult`` the CLI and benchmarks emit —
tracking accuracy plus the measured in-sensor statistics (compression,
ROI fraction, RLE size) and the engine's wall-clock stage attribution.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro.api import ExperimentSpec, Session, system_config
from repro.core import Table

SPEC_PATH = Path(__file__).resolve().parent / "specs" / "quickstart.json"


def main() -> None:
    print("=== BlissCam quickstart ===\n")

    spec = ExperimentSpec.from_file(SPEC_PATH)
    print(f"spec: {SPEC_PATH.name} (hash {spec.spec_hash()})")
    print(
        f"scene: {spec.dataset.num_sequences} sequences of "
        f"{spec.dataset.frames_per_sequence} frames @ "
        f"{spec.dataset.fps:.0f} FPS, "
        f"target compression {spec.sensor.compression:g}x"
    )

    with Session() as session:
        print("\n[1/3] joint training (ROI predictor + sparse ViT)...")
        pipeline = session.pipeline(spec)
        train_result = pipeline.train_result
        for epoch, (seg, roi) in enumerate(
            zip(train_result.seg_losses, train_result.roi_losses)
        ):
            print(
                f"  epoch {epoch}: segmentation loss {seg:.3f}, "
                f"ROI loss {roi:.4f}"
            )

        print("\n[2/3] evaluating on held-out sequences (batched lockstep)...")
        # The session reuses the pipeline trained above (same training
        # hash) — run() only executes the staged engine, in vectorized
        # lockstep, bitwise-identical to the sequential loop (see
        # docs/architecture.md and `python -m repro.cli throughput`).
        result = session.run(spec)
        assert session.stats()["train_cache_hits"] == 1, session.stats()

    print("\n[3/3] results")
    m = result.metrics
    table = Table(["metric", "value"])
    table.add_row("horizontal error (deg)", round(m["horizontal"]["mean"], 2))
    table.add_row("vertical error (deg)", round(m["vertical"]["mean"], 2))
    table.add_row("frames evaluated", m["frames"])
    table.add_row("mean ROI fraction", round(m["mean_roi_fraction"], 3))
    table.add_row("mean sampled fraction", round(m["mean_sampled_fraction"], 3))
    table.add_row("achieved compression (x)", round(m["mean_compression"], 1))
    table.add_row("valid ViT tokens", f"{m['mean_valid_token_fraction']:.1%}")
    table.add_row("ROI IoU vs ground truth", round(m["mean_roi_iou"], 2))
    table.add_row(
        "mean transmitted bytes/frame", int(m["mean_transmitted_bytes"])
    )
    print(table.render())

    config = system_config(spec)
    full_frame_bytes = config.height * config.width * 10 // 8
    saved = 1 - m["mean_transmitted_bytes"] / full_frame_bytes
    print(
        f"\nThe sensor transmitted {saved:.0%} fewer bytes than a full "
        f"{config.height}x{config.width} 10-bit frame ({full_frame_bytes} B)."
    )

    timing_table = Table(["engine stage", "ms/frame"])
    for name, timing in result.stage_timings.items():
        timing_table.add_row(name, round(timing["seconds_per_frame"] * 1e3, 2))
    print("\nPer-stage wall-clock attribution (engine timings):")
    print(timing_table.render())

    print(
        f"\nsession stats: {session.stats()} — the second run of the same "
        "spec would retrain nothing."
    )


if __name__ == "__main__":
    main()
