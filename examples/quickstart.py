"""Quickstart: train and evaluate the full BlissCam pipeline in a minute.

Builds the end-to-end system at CI scale — synthetic near-eye dataset,
ROI predictor, sparse ViT, functional sensor — runs the joint training of
Sec. III-C, and evaluates tracking accuracy plus the measured in-sensor
statistics (compression, ROI fraction, RLE size).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BlissCamPipeline, Table, ci


def main() -> None:
    print("=== BlissCam quickstart ===\n")

    config = ci(num_sequences=4, frames_per_sequence=16)
    print(
        f"scene: {config.height}x{config.width} @ {config.dataset.fps:.0f} FPS, "
        f"{len(range(config.dataset.num_sequences))} sequences, "
        f"target compression {config.compression:g}x"
    )

    pipeline = BlissCamPipeline(config)

    print("\n[1/3] joint training (ROI predictor + sparse ViT)...")
    train_result = pipeline.train()
    for epoch, (seg, roi) in enumerate(
        zip(train_result.seg_losses, train_result.roi_losses)
    ):
        print(f"  epoch {epoch}: segmentation loss {seg:.3f}, ROI loss {roi:.4f}")

    print("\n[2/3] evaluating on held-out sequences (batched lockstep)...")
    # Batched mode runs the held-out sequences through the staged engine
    # in vectorized lockstep — bitwise-identical to the sequential loop,
    # just faster (see docs/architecture.md and `python -m repro.cli
    # throughput`).
    result = pipeline.evaluate(batched=True)

    print("\n[3/3] results")
    table = Table(["metric", "value"])
    table.add_row("horizontal error (deg)", round(result.horizontal.mean, 2))
    table.add_row("vertical error (deg)", round(result.vertical.mean, 2))
    table.add_row("frames evaluated", result.horizontal.count)
    table.add_row("mean ROI fraction", round(result.stats.mean_roi_fraction, 3))
    table.add_row(
        "mean sampled fraction", round(result.stats.mean_sampled_fraction, 3)
    )
    table.add_row("achieved compression (x)", round(result.stats.mean_compression, 1))
    table.add_row(
        "valid ViT tokens", f"{result.stats.mean_valid_token_fraction:.1%}"
    )
    table.add_row("ROI IoU vs ground truth", round(result.stats.mean_roi_iou, 2))
    table.add_row(
        "mean transmitted bytes/frame",
        int(np.mean(result.stats.transmitted_bytes)),
    )
    print(table.render())

    full_frame_bytes = config.height * config.width * 10 // 8
    saved = 1 - np.mean(result.stats.transmitted_bytes) / full_frame_bytes
    print(
        f"\nThe sensor transmitted {saved:.0%} fewer bytes than a full "
        f"{config.height}x{config.width} 10-bit frame ({full_frame_bytes} B)."
    )

    timing_table = Table(["engine stage", "ms/frame"])
    for name, timing in result.stage_timings.items():
        timing_table.add_row(name, round(timing.seconds_per_frame * 1e3, 2))
    print("\nPer-stage wall-clock attribution (engine timings):")
    print(timing_table.render())


if __name__ == "__main__":
    main()
