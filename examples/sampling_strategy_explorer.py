"""Compare the seven sampling strategies of Fig. 15 on one scene.

The sweep itself is one declarative ``strategy_sweep`` run through
``repro.api``: the spec names the strategies and the compression target,
the ``Session`` trains a small sparse ViT per strategy (memoized — run
it twice and the second sweep is evaluation-only) and reports gaze error
plus achieved compression.  On top of the sweep, the example renders
each strategy's mask on the same frame — making it visible *why* in-ROI
random sampling wins: the budget lands on the eye, not the cheek.

Note: since moving onto the API this example uses the workload's
canonical configuration — the CI preset's depth-2 ViT and the shared
"lively" dynamics preset — so its absolute numbers differ from the
pre-API version's ad-hoc depth-1 setup; the ranking story is the same.

Run:  python examples/sampling_strategy_explorer.py [compression]
"""

import sys

from repro.api import ExperimentSpec, STRATEGIES, Session
from repro.sampling import STRATEGY_NAMES, eventify
from repro.synth import SyntheticEyeDataset


def mask_ascii(mask, box, height=16) -> list[str]:
    step = max(1, mask.shape[0] // height)
    lines = []
    for r in range(0, mask.shape[0], step):
        row = []
        for c in range(0, mask.shape[1], step):
            if mask[r : r + step, c : c + step].any():
                row.append("o")
            elif box and box[0] <= r < box[2] and box[1] <= c < box[3]:
                row.append("'")
            else:
                row.append(".")
        lines.append("".join(row))
    return lines


def main() -> None:
    compression = float(sys.argv[1]) if len(sys.argv) > 1 else 16.0
    print(f"=== sampling strategies at {compression:g}x compression ===\n")

    spec = ExperimentSpec.from_dict(
        {
            "workload": "strategy_sweep",
            "dataset": {
                "num_sequences": 4,
                "frames_per_sequence": 20,
                "eye_scale": 0.6,
                "dynamics": "lively",
            },
            "strategy": {
                "names": list(STRATEGY_NAMES),
                "compression": compression,
                "train_epochs": 4,
            },
        }
    )
    with Session() as session:
        result = session.run(spec)
    print(result.render_tables())

    # The sweep's numbers came from the engine; the panels below sample
    # one demo frame directly through the same registry factories.
    from repro.api.session import system_config
    from repro.api.workloads import strategy_rng

    dataset = SyntheticEyeDataset(system_config(spec).dataset)
    _, eval_idx = dataset.split()
    seq = dataset[eval_idx[0]]
    demo_prev, demo_frame = seq.frames[3], seq.frames[4]
    demo_event = eventify(demo_prev, demo_frame)
    demo_box = seq.roi_boxes[4]

    panels = {}
    for name in STRATEGY_NAMES:
        # Name-keyed stream (not Python's per-process hash()): the
        # panels render identically on every run.
        rng = strategy_rng(0, name)
        strategy = STRATEGIES.get(name)(compression, dataset)
        decision = strategy.sample(demo_frame, demo_event, demo_box, rng)
        panels[name] = mask_ascii(decision.mask, decision.roi_box)

    print("\nmasks on the same frame (o = sampled, ' = in-ROI, . = skipped):\n")
    names = list(panels)
    for start in range(0, len(names), 3):
        group = names[start : start + 3]
        print("   ".join(f"{n[:20]:<20}" for n in group))
        for row in zip(*(panels[n] for n in group)):
            print("   ".join(f"{r:<20}" for r in row))
        print()


if __name__ == "__main__":
    main()
