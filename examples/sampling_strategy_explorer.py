"""Compare the seven sampling strategies of Fig. 15 on one scene.

Trains a small sparse ViT per strategy at a common compression target and
reports gaze error, achieved compression, and an ASCII rendering of each
strategy's mask on the same frame — making it visible *why* in-ROI random
sampling wins: the budget lands on the eye, not the cheek.

Run:  python examples/sampling_strategy_explorer.py [compression]
"""

import sys

import numpy as np

from repro.core import Table, evaluate_strategy, make_strategy
from repro.core.variants import train_for_strategy
from repro.sampling import STRATEGY_NAMES, eventify
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, GazeDynamicsConfig, SyntheticEyeDataset


def mask_ascii(mask, box, height=16) -> list[str]:
    step = max(1, mask.shape[0] // height)
    lines = []
    for r in range(0, mask.shape[0], step):
        row = []
        for c in range(0, mask.shape[1], step):
            if mask[r : r + step, c : c + step].any():
                row.append("o")
            elif box and box[0] <= r < box[2] and box[1] <= c < box[3]:
                row.append("'")
            else:
                row.append(".")
        lines.append("".join(row))
    return lines


def main() -> None:
    compression = float(sys.argv[1]) if len(sys.argv) > 1 else 16.0
    print(f"=== sampling strategies at {compression:g}x compression ===\n")

    dataset = SyntheticEyeDataset(
        DatasetConfig(
            height=64,
            width=64,
            frames_per_sequence=20,
            num_sequences=4,
            eye_scale=0.6,
            dynamics=GazeDynamicsConfig(fixation_mean_s=0.03),
        )
    )
    train_idx, eval_idx = dataset.split()

    # One demo frame pair for the mask visualizations.
    seq = dataset[eval_idx[0]]
    demo_prev, demo_frame = seq.frames[3], seq.frames[4]
    demo_event = eventify(demo_prev, demo_frame)
    demo_box = seq.roi_boxes[4]

    table = Table(
        ["strategy", "horz err (deg)", "vert err (deg)", "achieved compression"],
    )
    panels = {}
    for name in STRATEGY_NAMES:
        rng = np.random.default_rng(hash(name) % 2**31)
        strategy = make_strategy(name, compression, dataset)
        segmenter = ViTSegmenter(
            ViTConfig(height=64, width=64, patch=8, dim=24, heads=3,
                      depth=1, decoder_depth=1),
            rng,
        )
        train_for_strategy(segmenter, strategy, dataset, train_idx, 4, rng)
        result = evaluate_strategy(strategy, segmenter, dataset, eval_idx, rng)
        table.add_row(
            name,
            round(result.horizontal.mean, 2),
            round(result.vertical.mean, 2),
            round(result.mean_compression, 1),
        )
        decision = strategy.sample(demo_frame, demo_event, demo_box, rng)
        panels[name] = mask_ascii(decision.mask, decision.roi_box)

    print(table.render())
    print("\nmasks on the same frame (o = sampled, ' = in-ROI, . = skipped):\n")
    names = list(panels)
    for start in range(0, len(names), 3):
        group = names[start : start + 3]
        print("   ".join(f"{n[:20]:<20}" for n in group))
        for row in zip(*(panels[n] for n in group)):
            print("   ".join(f"{r:<20}" for r in row))
        print()


if __name__ == "__main__":
    main()
