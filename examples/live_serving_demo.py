"""Live serving demo: watch a multi-client fleet tick through the scheduler.

Trains a small tracker through a ``repro.api`` session, then serves a
fleet of synthetic clients against the virtual clock under deliberate
*overload*: more clients arrive per tick than the host's micro-batch
budget can serve, so the queue builds, deadline shedding kicks in, and
the telemetry shows the SLO story (latency percentiles, goodput, drops)
— the scenario family the offline figure reproductions cannot express.

Two runs are compared: a comfortable fleet (every frame served the tick
it arrives) and an overloaded one (batch budget at half the arrival
rate).  Both go through the same ``serve`` workload the CLI exposes
(``repro serve``), so the printed scorecards are the uniform
``RunResult`` tables.

Run:  python examples/live_serving_demo.py
"""

from repro.api import ExperimentSpec, Session

BASE = {
    "workload": "serve",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 8,
        "eye_scale": 0.7,
        "dynamics": "lively",
    },
    "training": {"train_indices": [0, 1], "epochs": 2},
}


def scenario(**serve) -> ExperimentSpec:
    return ExperimentSpec.from_dict({**BASE, "execution": {"serve": serve}})


def main() -> None:
    comfortable = scenario(num_clients=6, duration_ticks=16)
    overloaded = scenario(
        num_clients=6,
        duration_ticks=16,
        max_batch=3,          # host serves half the arrival rate
        queue_capacity=6,     # bounded admission queue
        deadline_policy="drop",
    )
    print("training (a few seconds)...")
    with Session() as session:  # one training, both scenarios reuse it
        for label, spec in (
            ("comfortable fleet", comfortable),
            ("overloaded fleet", overloaded),
        ):
            result = session.run(spec)
            telemetry = result.metrics["telemetry"]
            print(f"\n=== {label} ===")
            print(result.render_tables())
            trace = telemetry["queue_depth"]["trace"]
            peak = max(trace) if trace else 0
            bars = "".join(
                " ▁▂▃▄▅▆▇█"[min(8, round(8 * d / peak))] if peak else " "
                for d in trace
            )
            print(f"\nqueue depth per tick  |{bars}|  (peak {peak})")
            print(
                "mean gaze error: "
                f"{telemetry['gaze_error_deg']['mean']:.2f} deg over "
                f"{telemetry['frames']['completed']} completed frames"
            )


if __name__ == "__main__":
    main()
