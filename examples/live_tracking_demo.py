"""Live tracking demo: watch the in-sensor pipeline frame by frame.

Simulates a recording with saccades and blinks, runs every frame through
the functional sensor (analog eventification -> ROI DNN -> SRAM-RNG
sampling -> sparse readout -> RLE) and the host (decode -> sparse ViT ->
gaze regression), and prints an ASCII visualization per frame:

* the event map the sensor computed,
* the predicted ROI box and the sampled pixels,
* predicted vs. true gaze, flagged on saccade/blink frames.

The trained system comes out of a ``repro.api`` session — the demo spec
is declarative and the joint training is the session-memoized one — and
the demo then drives the trained sensor *directly*, frame by frame,
which is exactly the layering the API is for: ``Session`` for training
and batch experiments, the underlying pipeline objects for interactive
streaming.

Run:  python examples/live_tracking_demo.py
"""

from repro.api import ExperimentSpec, Session

DEMO_SPEC = {
    "workload": "evaluate",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 20,
        "eye_scale": 0.7,
        "dynamics": "lively",
        "blink_rate_hz": 2.0,
    },
    "training": {"train_indices": [0, 1]},
}


def ascii_panel(frame, mask, box, width=32):
    """Downsampled ASCII view: pixels, sampled points, ROI corners."""
    height = frame.shape[0]
    step = max(1, height // 16)
    chars = " .:-=+*#%@"
    lines = []
    for r in range(0, height, step):
        row = []
        for c in range(0, frame.shape[1], step):
            block_mask = mask[r : r + step, c : c + step]
            if block_mask.any():
                row.append("o")  # sampled pixel present
            elif box and box[0] <= r < box[2] and box[1] <= c < box[3]:
                row.append("'")  # inside ROI, not sampled
            else:
                value = frame[r : r + step, c : c + step].mean()
                row.append(chars[int(value * 9.99)])
        lines.append("".join(row))
    return lines


def main() -> None:
    spec = ExperimentSpec.from_dict(DEMO_SPEC)
    print("training (a few seconds)...")
    with Session() as session:
        pipeline = session.pipeline(spec)

        sensor = pipeline.build_sensor()
        seq = pipeline.dataset[2]
        prev_seg = None

        print(f"\nstreaming sequence 2 ({len(seq)} frames)")
        print("legend: o = sampled pixel, ' = in-ROI unsampled, shades = scene\n")
        for t in range(len(seq)):
            out = sensor.capture(seq.frames[t], prev_seg)
            if out is None:
                print(f"frame {t:2d}: bootstrap (held in analog memory)")
                continue
            sparse, mask = sensor.host_decode(out)
            seg_pred = pipeline.segmenter.predict(sparse, mask)
            prev_seg = seg_pred
            gaze = pipeline.gaze_estimator.predict(seg_pred)
            truth = seq.gazes[t]

            flags = []
            if seq.saccade_flags[t]:
                flags.append("SACCADE")
            if seq.blink_flags[t]:
                flags.append("BLINK")
            header = (
                f"frame {t:2d}: gaze pred ({gaze[0]:+6.1f}, {gaze[1]:+6.1f}) deg   "
                f"true ({truth[0]:+6.1f}, {truth[1]:+6.1f})   "
                f"events {out.event_map.mean():5.1%}  "
                f"sampled {out.sampled_pixels:4d}px  "
                f"tx {out.transmitted_bytes:4d}B  "
                + " ".join(flags)
            )
            print(header)
            for line in ascii_panel(seq.frames[t], out.sample_mask, out.roi_box):
                print("    " + line)
            print()


if __name__ == "__main__":
    main()
