"""Gaze accuracy metrics: the angular errors reported in Figs. 12, 15, 16.

The paper reports *vertical* and *horizontal* angular error separately
(Fig. 12a/12b) with one-standard-deviation error bars, plus the 3-D
angular error between unit gaze vectors for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AngularErrorStats", "angular_errors", "gaze_vector", "vector_angle_deg"]


@dataclass(frozen=True)
class AngularErrorStats:
    """Summary of per-frame angular errors (degrees)."""

    mean: float
    std: float
    median: float
    p95: float
    count: int

    @staticmethod
    def from_errors(errors: np.ndarray) -> "AngularErrorStats":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValueError("no errors to summarize")
        return AngularErrorStats(
            mean=float(errors.mean()),
            std=float(errors.std()),
            median=float(np.median(errors)),
            p95=float(np.percentile(errors, 95)),
            count=int(errors.size),
        )


def angular_errors(
    predicted: np.ndarray, truth: np.ndarray
) -> tuple[AngularErrorStats, AngularErrorStats]:
    """Per-axis error stats from (N, 2) arrays of (horizontal, vertical) degrees.

    Returns ``(horizontal_stats, vertical_stats)``.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if predicted.shape != truth.shape or predicted.ndim != 2 or predicted.shape[1] != 2:
        raise ValueError(
            f"expected matching (N, 2) arrays, got {predicted.shape} vs {truth.shape}"
        )
    abs_err = np.abs(predicted - truth)
    return (
        AngularErrorStats.from_errors(abs_err[:, 0]),
        AngularErrorStats.from_errors(abs_err[:, 1]),
    )


def gaze_vector(gaze_h_deg: float, gaze_v_deg: float) -> np.ndarray:
    """Unit 3-D gaze vector (x right, y up, z toward the scene)."""
    h = np.deg2rad(gaze_h_deg)
    v = np.deg2rad(gaze_v_deg)
    vec = np.array([np.sin(h) * np.cos(v), np.sin(v), np.cos(h) * np.cos(v)])
    return vec / np.linalg.norm(vec)


def vector_angle_deg(
    pred: tuple[float, float], truth: tuple[float, float]
) -> float:
    """3-D angular error between two (horizontal, vertical) gaze directions."""
    a = gaze_vector(*pred)
    b = gaze_vector(*truth)
    cos = float(np.clip(np.dot(a, b), -1.0, 1.0))
    return float(np.rad2deg(np.arccos(cos)))
