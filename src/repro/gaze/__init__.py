"""Gaze prediction from segmentation maps, plus angular-error metrics."""

from repro.gaze.filtering import FilterConfig, KalmanGazeFilter
from repro.gaze.estimation import (
    FittedGazeEstimator,
    GeometricGazeEstimator,
    pupil_centroid,
    pupil_centroid_batch,
)
from repro.gaze.metrics import (
    AngularErrorStats,
    angular_errors,
    gaze_vector,
    vector_angle_deg,
)

__all__ = [
    "pupil_centroid",
    "pupil_centroid_batch",
    "KalmanGazeFilter",
    "FilterConfig",
    "GeometricGazeEstimator",
    "FittedGazeEstimator",
    "AngularErrorStats",
    "angular_errors",
    "gaze_vector",
    "vector_angle_deg",
]
