"""Temporal gaze filtering — an extension beyond the paper's pipeline.

The paper's gaze stage is memoryless (per-frame regression).  A natural
production extension is a constant-velocity Kalman filter over the gaze
trajectory: it suppresses per-frame segmentation jitter during fixations
while remaining responsive during saccades (the innovation gate widens
the filter when a saccade-sized jump arrives, avoiding the classic
"filter lags the saccade" failure).

State per axis: ``[angle, angular velocity]``; constant-velocity model
with white acceleration noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KalmanGazeFilter", "FilterConfig"]


@dataclass(frozen=True)
class FilterConfig:
    """Tuning of the constant-velocity filter."""

    #: White angular-acceleration noise density, deg/s^2 rms.
    acceleration_rms: float = 400.0
    #: Per-frame measurement noise, deg rms (segmentation jitter).
    measurement_rms: float = 0.5
    #: Innovations beyond this many sigmas re-initialize velocity — the
    #: saccade gate (saccades violate the constant-velocity assumption).
    saccade_gate_sigma: float = 6.0

    def __post_init__(self):
        if self.acceleration_rms <= 0 or self.measurement_rms <= 0:
            raise ValueError("noise parameters must be positive")
        if self.saccade_gate_sigma <= 0:
            raise ValueError("gate must be positive")


class KalmanGazeFilter:
    """Per-axis constant-velocity Kalman filter over (h, v) gaze angles."""

    def __init__(self, fps: float, config: FilterConfig | None = None):
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        self.dt = 1.0 / fps
        self.config = config or FilterConfig()
        self._state: np.ndarray | None = None  # (2 axes, 2 state vars)
        self._cov: np.ndarray | None = None  # (2, 2, 2)
        dt = self.dt
        self._transition = np.array([[1.0, dt], [0.0, 1.0]])
        q = self.config.acceleration_rms**2
        self._process_noise = q * np.array(
            [[dt**4 / 4, dt**3 / 2], [dt**3 / 2, dt**2]]
        )
        self._measurement_var = self.config.measurement_rms**2

    def reset(self) -> None:
        self._state = None
        self._cov = None

    def update(self, measurement: tuple[float, float]) -> tuple[float, float]:
        """Fuse one (horizontal, vertical) measurement; returns the estimate."""
        z = np.asarray(measurement, dtype=np.float64)
        if z.shape != (2,):
            raise ValueError(f"measurement must be (h, v): {measurement}")
        if self._state is None:
            self._state = np.stack([[z[0], 0.0], [z[1], 0.0]])
            self._cov = np.stack([np.eye(2) * 1.0, np.eye(2) * 1.0])
            return float(z[0]), float(z[1])

        gate = self.config.saccade_gate_sigma
        out = np.zeros(2)
        for axis in range(2):
            # Predict.
            state = self._transition @ self._state[axis]
            cov = (
                self._transition @ self._cov[axis] @ self._transition.T
                + self._process_noise
            )
            # Innovation and gate.
            innovation = z[axis] - state[0]
            innovation_var = cov[0, 0] + self._measurement_var
            if abs(innovation) > gate * np.sqrt(innovation_var):
                # Saccade: trust the measurement, re-seed velocity from it.
                velocity = innovation / self.dt
                self._state[axis] = np.array([z[axis], velocity])
                self._cov[axis] = np.eye(2)
                out[axis] = z[axis]
                continue
            # Update.
            kalman_gain = cov[:, 0] / innovation_var
            self._state[axis] = state + kalman_gain * innovation
            self._cov[axis] = cov - np.outer(kalman_gain, cov[0, :])
            out[axis] = self._state[axis][0]
        return float(out[0]), float(out[1])

    def filter_sequence(self, measurements: np.ndarray) -> np.ndarray:
        """Filter an (N, 2) gaze trace; returns the (N, 2) estimates."""
        measurements = np.asarray(measurements, dtype=np.float64)
        if measurements.ndim != 2 or measurements.shape[1] != 2:
            raise ValueError(f"expected (N, 2) trace: {measurements.shape}")
        self.reset()
        return np.array([self.update(tuple(m)) for m in measurements])
