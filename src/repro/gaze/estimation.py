"""Gaze prediction from segmentation maps (paper Sec. II-A).

The paper's pipeline ends with a *regression model based on the geometric
model of human eyes* that maps the segmentation map to a gaze vector; this
stage is cheap compared to segmentation.  Two estimators are provided:

* :class:`GeometricGazeEstimator` — inverts the known synthetic eye
  geometry exactly (oracle calibration, used to isolate segmentation
  error);
* :class:`FittedGazeEstimator` — least-squares calibration of the
  pupil-centroid -> gaze map from labelled frames, i.e. what a real system
  does during its per-user calibration step.

Both take the pupil centroid of the predicted segmentation; when the pupil
is fully occluded (blink) they fall back to the iris, then to the previous
estimate.
"""

from __future__ import annotations

import numpy as np

from repro.synth.eye_model import SEG_CLASSES, EyeGeometry

__all__ = [
    "pupil_centroid",
    "pupil_centroid_batch",
    "GeometricGazeEstimator",
    "FittedGazeEstimator",
]


def pupil_centroid(
    segmentation: np.ndarray, min_pixels: int = 3
) -> tuple[float, float] | None:
    """Normalized (row, col) centroid of the pupil, iris as fallback.

    Returns None when neither class has at least ``min_pixels`` pixels
    (e.g. during a blink).  Coordinates are normalized by the image
    *height*, matching :class:`~repro.synth.eye_model.EyeGeometry`.
    """
    height = segmentation.shape[0]
    for cls in (SEG_CLASSES["pupil"], SEG_CLASSES["iris"]):
        rows, cols = np.nonzero(segmentation == cls)
        if rows.size >= min_pixels:
            return (
                float((rows.mean() + 0.5) / height),
                float((cols.mean() + 0.5) / height),
            )
    return None


def pupil_centroid_batch(
    segmentations: np.ndarray, min_pixels: int = 3
) -> list[tuple[float, float] | None]:
    """Per-row :func:`pupil_centroid` over a stacked ``(B, H, W)`` rank.

    Bitwise-equal to the scalar helper: the scalar path reduces int64
    index vectors with ``ndarray.mean``, whose float64 partial sums are
    all integers far below 2**53 and therefore exact regardless of
    summation order — so the batched integer index-weighted sums divide
    to the identical float64 value.
    """
    if segmentations.ndim != 3:
        raise ValueError(f"expected (B, H, W) maps, got {segmentations.shape}")
    b, height, width = segmentations.shape
    row_idx = np.arange(height, dtype=np.int64)[None, :, None]
    col_idx = np.arange(width, dtype=np.int64)[None, None, :]
    out: list[tuple[float, float] | None] = [None] * b
    for cls in (SEG_CLASSES["pupil"], SEG_CLASSES["iris"]):
        eq = segmentations == cls
        counts = eq.sum(axis=(1, 2), dtype=np.int64)
        row_sums = (eq * row_idx).sum(axis=(1, 2), dtype=np.int64)
        col_sums = (eq * col_idx).sum(axis=(1, 2), dtype=np.int64)
        for i in range(b):
            if out[i] is None and counts[i] >= min_pixels:
                mean_r = row_sums[i] / counts[i]  # int64/int64 -> float64
                mean_c = col_sums[i] / counts[i]
                out[i] = (
                    float((mean_r + 0.5) / height),
                    float((mean_c + 0.5) / height),
                )
    return out


class GeometricGazeEstimator:
    """Invert the known eye geometry: centroid -> gaze, exactly."""

    #: Fallback gaze before any frame with a visible pupil has been seen.
    INITIAL_FALLBACK: tuple[float, float] = (0.0, 0.0)

    def __init__(self, geometry: EyeGeometry):
        self.geometry = geometry
        self._last: tuple[float, float] = self.INITIAL_FALLBACK

    @property
    def fallback_state(self) -> tuple[float, float]:
        """The gaze emitted when the pupil is fully occluded."""
        return self._last

    @fallback_state.setter
    def fallback_state(self, value: tuple[float, float]) -> None:
        self._last = value

    def predict(self, segmentation: np.ndarray) -> tuple[float, float]:
        """Gaze ``(horizontal, vertical)`` in degrees."""
        return self.predict_from_centroid(pupil_centroid(segmentation))

    def predict_from_centroid(
        self, centroid: tuple[float, float] | None
    ) -> tuple[float, float]:
        """Gaze from a precomputed centroid; None means occlusion fallback.

        The seam the batched gaze stage uses: centroid extraction
        vectorizes across the rank, while this per-row tail keeps the
        fallback threading identical to :meth:`predict`.
        """
        if centroid is None:
            return self._last
        gaze = self.geometry.gaze_from_pupil(*centroid)
        self._last = gaze
        return gaze


class FittedGazeEstimator:
    """Per-user linear calibration: least squares on (row, col, 1) -> gaze.

    The linear map is exact for small angles (sin(theta) ~ theta) and a
    close approximation over the +-25 degree cone the synthetic eye covers,
    mirroring commercial calibration procedures.
    """

    #: Fallback gaze before any frame with a visible pupil has been seen.
    INITIAL_FALLBACK: tuple[float, float] = (0.0, 0.0)

    def __init__(self):
        self._coef: np.ndarray | None = None  # (3, 2)
        self._last: tuple[float, float] = self.INITIAL_FALLBACK

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    @property
    def fallback_state(self) -> tuple[float, float]:
        """The gaze emitted when the pupil is fully occluded."""
        return self._last

    @fallback_state.setter
    def fallback_state(self, value: tuple[float, float]) -> None:
        self._last = value

    def fit(self, segmentations: np.ndarray, gazes: np.ndarray) -> None:
        """Calibrate from (N, H, W) ground-truth maps and (N, 2) gazes."""
        features, targets = [], []
        for seg, gaze in zip(segmentations, gazes):
            centroid = pupil_centroid(seg)
            if centroid is None:
                continue
            features.append([centroid[0], centroid[1], 1.0])
            targets.append(gaze)
        if len(features) < 3:
            raise ValueError(
                f"need at least 3 frames with a visible pupil, got {len(features)}"
            )
        design = np.asarray(features)
        self._coef, *_ = np.linalg.lstsq(design, np.asarray(targets), rcond=None)

    def predict(self, segmentation: np.ndarray) -> tuple[float, float]:
        if self._coef is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        return self.predict_from_centroid(pupil_centroid(segmentation))

    def predict_from_centroid(
        self, centroid: tuple[float, float] | None
    ) -> tuple[float, float]:
        """Gaze from a precomputed centroid; None means occlusion fallback.

        The ``(3,) @ (3, 2)`` regression stays per-row on purpose: a
        stacked BLAS call is not provably row-invariant, and the batched
        gaze stage only needs the O(B*H*W) centroid extraction
        (:func:`pupil_centroid_batch`) vectorized.
        """
        if self._coef is None:
            raise RuntimeError("estimator is not fitted; call fit() first")
        if centroid is None:
            return self._last
        feat = np.array([centroid[0], centroid[1], 1.0])
        gaze_h, gaze_v = feat @ self._coef
        self._last = (float(gaze_h), float(gaze_v))
        return self._last
