"""The end-to-end BlissCam tracker: build, train, evaluate.

:class:`BlissCamPipeline` wires every subsystem together:

* the synthetic dataset (scene + optics + sensor noise),
* the functional sensor (analog eventification, trained ROI predictor,
  SRAM-RNG sampling, sparse readout, RLE),
* the sparse ViT segmenter on the host,
* the geometric gaze regressor,

and measures both *accuracy* (per-axis angular error) and the *workload
statistics* (ROI fraction, sampled fraction, valid-token fraction, RLE
bytes) that parameterize the hardware energy/latency models — so the
benchmark harness can feed measured numbers, not assumptions, into
Figs. 13/14/16/17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaze.estimation import FittedGazeEstimator
from repro.gaze.metrics import AngularErrorStats, angular_errors
from repro.hardware.energy import WorkloadProfile
from repro.hardware.sensor.sensor import BlissCamSensor
from repro.sampling.roi import ROIPredictor, ROIReusePolicy, box_iou
from repro.segmentation.vit import ViTSegmenter
from repro.synth.dataset import SyntheticEyeDataset
from repro.training.joint import JointTrainConfig, JointTrainer, JointTrainResult
from repro.core.config import SystemConfig

__all__ = ["BlissCamPipeline", "EvaluationResult", "WorkloadStats"]


@dataclass
class WorkloadStats:
    """Measured per-frame statistics, averaged over an evaluation run."""

    roi_fractions: list[float] = field(default_factory=list)
    sampled_fractions: list[float] = field(default_factory=list)
    valid_token_fractions: list[float] = field(default_factory=list)
    transmitted_bytes: list[int] = field(default_factory=list)
    rle_ratios: list[float] = field(default_factory=list)
    roi_ious: list[float] = field(default_factory=list)

    def record(self, *, roi_fraction, sampled_fraction, token_fraction,
               tx_bytes, rle_ratio, roi_iou):
        self.roi_fractions.append(roi_fraction)
        self.sampled_fractions.append(sampled_fraction)
        self.valid_token_fractions.append(token_fraction)
        self.transmitted_bytes.append(tx_bytes)
        self.rle_ratios.append(rle_ratio)
        if roi_iou is not None:
            self.roi_ious.append(roi_iou)

    @property
    def mean_roi_fraction(self) -> float:
        return float(np.mean(self.roi_fractions)) if self.roi_fractions else 0.0

    @property
    def mean_sampled_fraction(self) -> float:
        return (
            float(np.mean(self.sampled_fractions))
            if self.sampled_fractions
            else 0.0
        )

    @property
    def mean_valid_token_fraction(self) -> float:
        return (
            float(np.mean(self.valid_token_fractions))
            if self.valid_token_fractions
            else 0.0
        )

    @property
    def mean_compression(self) -> float:
        s = self.mean_sampled_fraction
        return 1.0 / s if s > 0 else float("inf")

    @property
    def mean_roi_iou(self) -> float:
        return float(np.mean(self.roi_ious)) if self.roi_ious else 0.0

    def to_profile(self, base: WorkloadProfile | None = None) -> WorkloadProfile:
        """A hardware :class:`WorkloadProfile` with measured fractions."""
        from dataclasses import replace

        base = base or WorkloadProfile()
        return replace(
            base,
            roi_fraction=max(self.mean_roi_fraction, 1e-4),
            sampled_fraction=max(self.mean_sampled_fraction, 1e-4),
            valid_token_fraction=max(self.mean_valid_token_fraction, 1e-4),
        )


@dataclass
class EvaluationResult:
    """Accuracy + workload statistics of one evaluation run."""

    horizontal: AngularErrorStats
    vertical: AngularErrorStats
    stats: WorkloadStats
    predictions: np.ndarray  # (N, 2)
    truths: np.ndarray  # (N, 2)

    @property
    def within_one_degree(self) -> bool:
        """The paper's accuracy bar: both axes under 1 degree mean error.

        At CI scale (64x64 frames, tiny ViT, few epochs) errors are larger
        than the paper's; this property is still the right *criterion*.
        """
        return self.horizontal.mean < 1.0 and self.vertical.mean < 1.0


class BlissCamPipeline:
    """Build, jointly train, and evaluate the full system."""

    def __init__(self, config: SystemConfig, rng: np.random.Generator | None = None):
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        self.dataset = SyntheticEyeDataset(config.dataset)
        self.roi_predictor = ROIPredictor(
            config.height,
            config.width,
            self.rng,
            base_channels=config.roi_base_channels,
        )
        self.segmenter = ViTSegmenter(config.vit, self.rng)
        self.gaze_estimator = FittedGazeEstimator()
        self._train_result: JointTrainResult | None = None

    # -- training ------------------------------------------------------------
    def train(self, train_indices: list[int] | None = None) -> JointTrainResult:
        """Joint training (Sec. III-C) + gaze calibration."""
        if train_indices is None:
            train_indices, _ = self.dataset.split()
        trainer = JointTrainer(
            self.roi_predictor, self.segmenter, self.config.joint, self.rng
        )
        self._train_result = trainer.train(self.dataset, train_indices)
        # Calibrate the gaze regression on ground-truth maps (per-user
        # calibration in a real system).
        segs, gazes = [], []
        for idx in train_indices:
            seq = self.dataset[idx]
            segs.append(seq.segmentations)
            gazes.append(seq.gazes)
        self.gaze_estimator.fit(np.concatenate(segs), np.concatenate(gazes))
        return self._train_result

    def _typical_roi_fraction(self) -> float:
        """Mean ground-truth foreground-box fraction over the first sequence."""
        seq = self.dataset[0]
        total = self.config.height * self.config.width
        fractions = [
            (b[2] - b[0]) * (b[3] - b[1]) / total
            for b in seq.roi_boxes
            if b is not None
        ]
        if not fractions:
            return WorkloadProfile().roi_fraction
        return float(np.mean(fractions))

    # -- evaluation ----------------------------------------------------------
    def build_sensor(self, seed: int = 1234) -> BlissCamSensor:
        """A functional sensor wired to the trained ROI predictor.

        The predicted box is expanded by ``config.roi_margin_px`` before
        sampling — a safety margin absorbing small regression errors.  The
        in-ROI sampling rate is derived from the dataset's typical ROI
        size so the *frame-level* compression hits ``config.compression``.
        """
        in_roi_rate = min(
            1.0,
            1.0
            / (self.config.compression * max(self._typical_roi_fraction(), 1e-6)),
        )
        height, width = self.config.height, self.config.width
        margin = self.config.roi_margin_px

        def predictor_with_margin(event_map, prev_seg):
            from repro.sampling.roi import (
                box_from_pixels,
                box_to_pixels,
                expand_box,
            )

            box = self.roi_predictor.predict_box(event_map, prev_seg)
            pixel_box = box_to_pixels(box, height, width)
            pixel_box = expand_box(pixel_box, margin, height, width)
            return box_from_pixels(pixel_box, height, width)

        return BlissCamSensor(
            height,
            width,
            roi_predictor=predictor_with_margin,
            sampling_rate=in_roi_rate,
            seed=seed,
        )

    def evaluate(
        self,
        eval_indices: list[int] | None = None,
        reuse_window: int = 1,
        sensor_seed: int = 1234,
    ) -> EvaluationResult:
        """Run the functional sensor + host over held-out sequences.

        ``reuse_window`` > 1 enables the Table-I ROI-reuse policy.
        """
        if not self.gaze_estimator.is_fitted:
            raise RuntimeError("pipeline must be trained before evaluation")
        if eval_indices is None:
            _, eval_indices = self.dataset.split()
        sensor = self.build_sensor(seed=sensor_seed)
        reuse = ROIReusePolicy(window=reuse_window)
        stats = WorkloadStats()
        preds, truths = [], []
        tokens_total = self.segmenter.config.tokens

        for seq_index in eval_indices:
            seq = self.dataset[seq_index]
            sensor.reset()
            reuse.reset()
            prev_seg_pred: np.ndarray | None = None
            for t in range(len(seq)):
                if reuse_window > 1 and not reuse.should_predict():
                    # Reuse the cached box: bypass the predictor inside the
                    # sensor by temporarily pinning its output.
                    cached = reuse.current()
                    original = sensor.roi_predictor
                    sensor.roi_predictor = lambda e, s, _c=cached: _c
                    out = sensor.capture(seq.frames[t], prev_seg_pred)
                    sensor.roi_predictor = original
                    reuse.tick()
                else:
                    out = sensor.capture(seq.frames[t], prev_seg_pred)
                    if out is not None:
                        reuse.update(out.roi_box_norm)
                if out is None:  # bootstrap frame
                    continue
                sparse, mask = sensor.host_decode(out)
                # Packed inference: unsampled patches decode to background,
                # which keeps hallucinated foreground out of the seg map
                # fed back to the ROI predictor (and drops empty tokens,
                # so host compute scales with the sampled volume).
                seg_pred = self.segmenter.predict_packed(sparse, mask)
                prev_seg_pred = seg_pred
                gaze_pred = self.gaze_estimator.predict(seg_pred)
                preds.append(gaze_pred)
                truths.append(seq.gazes[t])

                n = sparse.size
                patch = self.segmenter.config.patch
                token_mask = (
                    mask.reshape(
                        mask.shape[0] // patch, patch, mask.shape[1] // patch, patch
                    )
                    .any(axis=(1, 3))
                )
                gt_box = seq.roi_boxes[t]
                stats.record(
                    roi_fraction=(
                        (out.roi_box[2] - out.roi_box[0])
                        * (out.roi_box[3] - out.roi_box[1])
                        / n
                    ),
                    sampled_fraction=out.sampled_pixels / n,
                    token_fraction=token_mask.sum() / tokens_total,
                    tx_bytes=out.transmitted_bytes,
                    rle_ratio=out.rle_stats.compression_ratio,
                    roi_iou=(
                        box_iou(out.roi_box, gt_box) if gt_box is not None else None
                    ),
                )

        predictions = np.array(preds)
        truth_arr = np.array(truths)
        horizontal, vertical = angular_errors(predictions, truth_arr)
        return EvaluationResult(
            horizontal=horizontal,
            vertical=vertical,
            stats=stats,
            predictions=predictions,
            truths=truth_arr,
        )
