"""The end-to-end BlissCam tracker: build, train, evaluate.

:class:`BlissCamPipeline` wires every subsystem together:

* the synthetic dataset (scene + optics + sensor noise),
* the functional sensor (analog eventification, trained ROI predictor,
  SRAM-RNG sampling, sparse readout, RLE),
* the sparse ViT segmenter on the host,
* the geometric gaze regressor,

and measures both *accuracy* (per-axis angular error) and the *workload
statistics* (ROI fraction, sampled fraction, valid-token fraction, RLE
bytes) that parameterize the hardware energy/latency models — so the
benchmark harness can feed measured numbers, not assumptions, into
Figs. 13/14/16/17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import EngineRun, StageTiming, build_tracking_graph, tracking_runner
from repro.gaze.estimation import FittedGazeEstimator
from repro.gaze.metrics import AngularErrorStats, angular_errors
from repro.hardware.energy import WorkloadProfile
from repro.hardware.sensor.sensor import BlissCamSensor
from repro.sampling.roi import (
    ROIPredictor,
    box_from_pixels,
    box_to_pixels,
    expand_box,
)
from repro.segmentation.vit import ViTSegmenter
from repro.synth.dataset import SyntheticEyeDataset
from repro.training.joint import JointTrainConfig, JointTrainer, JointTrainResult
from repro.core.config import SystemConfig

__all__ = [
    "BlissCamPipeline",
    "EvaluationResult",
    "WorkloadStats",
    "MarginExpandedPredictor",
]


@dataclass
class MarginExpandedPredictor:
    """The trained ROI predictor with the safety-margin box expansion.

    A plain class (not a closure) for two engine requirements: sharded
    execution pickles the predictor to worker processes, and the batched
    ROI-predict stage needs the :meth:`predict_batch` fast path (bitwise
    row-independent, see :meth:`ROIPredictor.predict_box_batch`; the
    margin expansion itself is exact integer arithmetic per box).
    """

    roi_predictor: ROIPredictor
    height: int
    width: int
    margin: int

    def _expand(self, box: np.ndarray) -> np.ndarray:
        pixel_box = box_to_pixels(box, self.height, self.width)
        pixel_box = expand_box(pixel_box, self.margin, self.height, self.width)
        return box_from_pixels(pixel_box, self.height, self.width)

    def __call__(
        self, event_map: np.ndarray, prev_seg: np.ndarray | None
    ) -> np.ndarray:
        return self._expand(self.roi_predictor.predict_box(event_map, prev_seg))

    def predict_batch(
        self,
        event_maps: list[np.ndarray],
        prev_segs: list[np.ndarray | None],
    ) -> list[np.ndarray]:
        boxes = self.roi_predictor.predict_box_batch(event_maps, prev_segs)
        return [self._expand(box) for box in boxes]


@dataclass
class WorkloadStats:
    """Measured per-frame statistics, averaged over an evaluation run."""

    roi_fractions: list[float] = field(default_factory=list)
    sampled_fractions: list[float] = field(default_factory=list)
    valid_token_fractions: list[float] = field(default_factory=list)
    transmitted_bytes: list[int] = field(default_factory=list)
    rle_ratios: list[float] = field(default_factory=list)
    roi_ious: list[float] = field(default_factory=list)

    def record(self, *, roi_fraction, sampled_fraction, token_fraction,
               tx_bytes, rle_ratio, roi_iou):
        self.roi_fractions.append(roi_fraction)
        self.sampled_fractions.append(sampled_fraction)
        self.valid_token_fractions.append(token_fraction)
        self.transmitted_bytes.append(tx_bytes)
        self.rle_ratios.append(rle_ratio)
        if roi_iou is not None:
            self.roi_ious.append(roi_iou)

    @property
    def mean_roi_fraction(self) -> float:
        return float(np.mean(self.roi_fractions)) if self.roi_fractions else 0.0

    @property
    def mean_sampled_fraction(self) -> float:
        return (
            float(np.mean(self.sampled_fractions))
            if self.sampled_fractions
            else 0.0
        )

    @property
    def mean_valid_token_fraction(self) -> float:
        return (
            float(np.mean(self.valid_token_fractions))
            if self.valid_token_fractions
            else 0.0
        )

    @property
    def mean_compression(self) -> float:
        s = self.mean_sampled_fraction
        return 1.0 / s if s > 0 else float("inf")

    @property
    def mean_roi_iou(self) -> float:
        return float(np.mean(self.roi_ious)) if self.roi_ious else 0.0

    def to_profile(self, base: WorkloadProfile | None = None) -> WorkloadProfile:
        """A hardware :class:`WorkloadProfile` with measured fractions."""
        from dataclasses import replace

        base = base or WorkloadProfile()
        return replace(
            base,
            roi_fraction=max(self.mean_roi_fraction, 1e-4),
            sampled_fraction=max(self.mean_sampled_fraction, 1e-4),
            valid_token_fraction=max(self.mean_valid_token_fraction, 1e-4),
        )


@dataclass
class EvaluationResult:
    """Accuracy + workload statistics of one evaluation run."""

    horizontal: AngularErrorStats
    vertical: AngularErrorStats
    stats: WorkloadStats
    predictions: np.ndarray  # (N, 2)
    truths: np.ndarray  # (N, 2)
    #: Wall-clock per-stage attribution from the engine run (stage name ->
    #: :class:`~repro.engine.StageTiming`); the measured counterpart of the
    #: Figs. 13/14 per-stage energy/latency breakdowns.
    stage_timings: dict[str, StageTiming] | None = None
    #: Shard-transport accounting from the engine run (``None`` for
    #: in-process modes): mode, dispatches, per-dispatch payload bytes —
    #: see :attr:`repro.engine.EngineRun.transport`.
    transport: dict | None = None

    @property
    def within_one_degree(self) -> bool:
        """The paper's accuracy bar: both axes under 1 degree mean error.

        At CI scale (64x64 frames, tiny ViT, few epochs) errors are larger
        than the paper's; this property is still the right *criterion*.
        """
        return self.horizontal.mean < 1.0 and self.vertical.mean < 1.0


class BlissCamPipeline:
    """Build, jointly train, and evaluate the full system."""

    def __init__(self, config: SystemConfig, rng: np.random.Generator | None = None):
        self.config = config
        self.rng = rng or np.random.default_rng(config.seed)
        self.dataset = SyntheticEyeDataset(config.dataset)
        self.roi_predictor = ROIPredictor(
            config.height,
            config.width,
            self.rng,
            base_channels=config.roi_base_channels,
        )
        self.segmenter = ViTSegmenter(config.vit, self.rng)
        self.gaze_estimator = FittedGazeEstimator()
        self._train_result: JointTrainResult | None = None
        self._roi_fraction_cache: float | None = None
        self._sensor_templates: dict[int, BlissCamSensor] = {}

    # -- training ------------------------------------------------------------
    def train(
        self,
        train_indices: list[int] | None = None,
        workers: int | None = None,
        executor=None,
        transport=None,
    ) -> JointTrainResult:
        """Joint training (Sec. III-C) + gaze calibration.

        Runs on the batched training runtime
        (:class:`~repro.training.runtime.TrainRunner`):
        ``config.joint.batch_size`` sets the rank width / step
        granularity and ``config.joint.grad_accum`` selects the
        data-parallel epoch schedule, which ``workers >= 2`` shards over
        worker processes (``executor`` reuses an existing pool, e.g. a
        ``repro.api.Session``'s) with bitwise-identical results for any
        worker count.
        """
        if train_indices is None:
            train_indices, _ = self.dataset.split()
        trainer = JointTrainer(
            self.roi_predictor, self.segmenter, self.config.joint, self.rng
        )
        self._train_result = trainer.train(
            self.dataset,
            train_indices,
            workers=workers,
            executor=executor,
            transport=transport,
        )
        # Calibrate the gaze regression on ground-truth maps (per-user
        # calibration in a real system).
        segs, gazes = [], []
        for idx in train_indices:
            seq = self.dataset[idx]
            segs.append(seq.segmentations)
            gazes.append(seq.gazes)
        self.gaze_estimator.fit(np.concatenate(segs), np.concatenate(gazes))
        return self._train_result

    @property
    def train_result(self) -> JointTrainResult | None:
        """The last joint-training result (``None`` before training)."""
        return self._train_result

    def _typical_roi_fraction(self) -> float:
        """Mean ground-truth foreground-box fraction over the first sequence.

        Memoized (both here and in the dataset): ``build_sensor`` asks for
        it on every call and the answer is fixed for a given dataset.
        """
        if self._roi_fraction_cache is None:
            fraction = self.dataset.typical_roi_fraction(0)
            if fraction is None:
                fraction = WorkloadProfile().roi_fraction
            self._roi_fraction_cache = fraction
        return self._roi_fraction_cache

    # -- evaluation ----------------------------------------------------------
    def build_sensor(self, seed: int = 1234) -> BlissCamSensor:
        """A functional sensor wired to the trained ROI predictor.

        The predicted box is expanded by ``config.roi_margin_px`` before
        sampling — a safety margin absorbing small regression errors.  The
        in-ROI sampling rate is derived from the dataset's typical ROI
        size so the *frame-level* compression hits ``config.compression``.
        """
        in_roi_rate = min(
            1.0,
            1.0
            / (self.config.compression * max(self._typical_roi_fraction(), 1e-6)),
        )
        height, width = self.config.height, self.config.width
        return BlissCamSensor(
            height,
            width,
            roi_predictor=MarginExpandedPredictor(
                self.roi_predictor, height, width, self.config.roi_margin_px
            ),
            sampling_rate=in_roi_rate,
            seed=seed,
        )

    def _sensor_template(self, seed: int) -> BlissCamSensor:
        """A cached calibrated chip per seed; evaluation spawns per-sequence
        runtime streams from it, so the expensive SRAM manufacture +
        calibration happens once per (pipeline, seed)."""
        if seed not in self._sensor_templates:
            self._sensor_templates[seed] = self.build_sensor(seed=seed)
        return self._sensor_templates[seed]

    def tracking_setup(
        self, reuse_window: int = 1, sensor_seed: int = 1234
    ) -> tuple:
        """``(stage graph, calibrated sensor template)`` for this tracker.

        The unit streaming consumers build on: :meth:`evaluate` wraps it
        in a :func:`~repro.engine.tracking_runner` over dataset
        sequences, while ``repro.serve`` drives the same graph frame by
        frame with per-client sensor spawns from the template.  Requires
        a trained pipeline (the graph closes over the trained predictor,
        segmenter and calibrated gaze estimator).
        """
        if not self.gaze_estimator.is_fitted:
            raise RuntimeError("pipeline must be trained before evaluation")
        template = self._sensor_template(sensor_seed)
        graph = build_tracking_graph(
            predictor=template.roi_predictor,
            segmenter=self.segmenter,
            gaze_estimator=self.gaze_estimator,
            height=self.config.height,
            width=self.config.width,
            reuse_window=reuse_window,
        )
        return graph, template

    def evaluate(
        self,
        eval_indices: list[int] | None = None,
        reuse_window: int = 1,
        sensor_seed: int = 1234,
        batched: bool = False,
        batch_size: int | None = None,
        workers: int | None = None,
        executor=None,
        transport=None,
    ) -> EvaluationResult:
        """Run the functional sensor + host over held-out sequences.

        ``reuse_window`` > 1 enables the Table-I ROI-reuse policy (a
        first-class engine stage).  ``batched`` runs the sequences in
        vectorized lockstep; ``batch_size`` bounds the lockstep width.
        ``workers >= 2`` shards the sequence rank over that many worker
        processes (composable with ``batched``); ``executor`` reuses an
        existing pool (e.g. a persistent ``repro.api.Session`` pool)
        instead of forking one per call.  All modes produce
        bitwise-identical results; see ``docs/architecture.md``.
        """
        if eval_indices is None:
            _, eval_indices = self.dataset.split()
        graph, template = self.tracking_setup(
            reuse_window=reuse_window, sensor_seed=sensor_seed
        )
        runner = tracking_runner(
            sensor_template=template,
            sensor_seed=sensor_seed,
            graph=graph,
            batch_size=batch_size,
            # The collector below only needs gaze + stats per frame; drop
            # the O(frame size) intermediates as the run streams.
            retain_intermediates=False,
        )
        run = runner.run(
            [(i, self.dataset[i]) for i in eval_indices],
            batched=batched,
            workers=workers,
            executor=executor,
            transport=transport,
        )
        return self._collect_evaluation(run)

    @staticmethod
    def _collect_evaluation(run: EngineRun) -> EvaluationResult:
        """Fold an engine run into accuracy + workload statistics.

        Contexts arrive in sequence-major order from both execution modes,
        so every downstream reduction sees the same operand order — the
        property behind the batched == sequential bitwise guarantee.
        """
        stats = WorkloadStats()
        preds, truths = [], []
        for ctx in run.evaluated:
            preds.append(ctx.gaze_pred)
            truths.append(ctx.gaze_true)
            stats.record(**ctx.stats)
        predictions = np.array(preds)
        truth_arr = np.array(truths)
        horizontal, vertical = angular_errors(predictions, truth_arr)
        return EvaluationResult(
            horizontal=horizontal,
            vertical=vertical,
            stats=stats,
            predictions=predictions,
            truths=truth_arr,
            stage_timings=run.stage_timings,
            transport=run.transport,
        )
