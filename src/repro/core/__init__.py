"""End-to-end BlissCam system: configuration, pipeline, variants, results."""

from repro.core.config import SystemConfig, ci, paper
from repro.core.pipeline import (
    BlissCamPipeline,
    EvaluationResult,
    MarginExpandedPredictor,
    WorkloadStats,
)
from repro.core.results import PaperComparison, Table
from repro.core.variants import (
    StrategyEvaluation,
    collect_sampled_dataset,
    evaluate_strategy,
    make_strategy,
    train_for_strategy,
)

__all__ = [
    "SystemConfig",
    "ci",
    "paper",
    "BlissCamPipeline",
    "EvaluationResult",
    "MarginExpandedPredictor",
    "WorkloadStats",
    "Table",
    "PaperComparison",
    "StrategyEvaluation",
    "make_strategy",
    "collect_sampled_dataset",
    "train_for_strategy",
    "evaluate_strategy",
]
