"""Shared throughput measurement: sequential loop vs batched lockstep.

One implementation of the warm-up / best-of-N timing / bitwise check /
report-table logic, consumed by both ``repro.cli throughput`` and
``benchmarks/bench_engine_throughput.py`` so the two surfaces cannot
drift apart.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import BlissCamPipeline
from repro.core.results import Table

__all__ = ["measure_throughput", "throughput_tables"]


def measure_throughput(
    pipeline: BlissCamPipeline,
    eval_indices: list[int],
    repeats: int = 3,
) -> dict:
    """Time both engine modes over ``eval_indices`` on a trained pipeline.

    Warms the dataset cache (every lane), the calibrated sensor template
    and both execution paths' allocations first, so the timed section
    measures the engine rather than one-time setup.  Each mode is timed
    best-of-``repeats`` — the comparison is of the two code paths, not of
    the allocator/scheduler noise a loaded machine adds on top.
    """
    for i in eval_indices:
        pipeline.dataset[i]
    warm = eval_indices[: min(2, len(eval_indices))]
    pipeline.evaluate(warm)
    pipeline.evaluate(warm, batched=True)

    def best_of(batched: bool):
        best, result = float("inf"), None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = pipeline.evaluate(eval_indices, batched=batched)
            best = min(best, time.perf_counter() - t0)
        return best, result

    seq_s, seq_result = best_of(False)
    bat_s, bat_result = best_of(True)
    frames = int(seq_result.horizontal.count)
    return {
        "sequences": len(eval_indices),
        "frames": frames,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "sequential_fps": frames / seq_s,
        "batched_fps": frames / bat_s,
        "speedup": seq_s / bat_s,
        "bitwise_identical": bool(
            np.array_equal(seq_result.predictions, bat_result.predictions)
            and seq_result.stats.transmitted_bytes
            == bat_result.stats.transmitted_bytes
        ),
        "stage_seconds_sequential": {
            name: timing.seconds
            for name, timing in seq_result.stage_timings.items()
        },
        "stage_seconds_batched": {
            name: timing.seconds
            for name, timing in bat_result.stage_timings.items()
        },
    }


def throughput_tables(record: dict) -> list[Table]:
    """The fps table and the per-stage attribution table for a record."""
    fps = Table(
        ["mode", "frames/sec", "wall (ms)"],
        title=f"engine throughput ({record['frames']} frames, "
        f"{record['sequences']} sequences in lockstep)",
    )
    fps.add_row(
        "sequential loop",
        round(record["sequential_fps"]),
        round(record["sequential_s"] * 1e3),
    )
    fps.add_row(
        "batched lockstep",
        round(record["batched_fps"]),
        round(record["batched_s"] * 1e3),
    )
    fps.add_row("speedup", f"{record['speedup']:.2f}x", "")

    stages = Table(
        ["stage", "sequential (ms)", "batched (ms)"],
        title="per-stage wall-clock attribution",
    )
    for name, seconds in record["stage_seconds_sequential"].items():
        stages.add_row(
            name,
            round(seconds * 1e3, 1),
            round(record["stage_seconds_batched"][name] * 1e3, 1),
        )
    return [fps, stages]
