"""Shared throughput measurement: sequential loop vs batched vs sharded.

One implementation of the warm-up / best-of-N timing / bitwise check /
report-table logic, consumed by both ``repro.cli throughput`` and
``benchmarks/bench_engine_throughput.py`` so the two surfaces cannot
drift apart.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import BlissCamPipeline, EvaluationResult
from repro.core.results import Table

__all__ = ["measure_throughput", "throughput_tables"]


def _rate(frames: int, seconds: float) -> float:
    """Frames/sec that tolerates a timed section rounding to 0 s."""
    return frames / seconds if seconds > 0 else float("inf")


def _best_of(evaluate, repeats: int) -> tuple[float, EvaluationResult]:
    """Best wall time over ``repeats`` runs, paired with *that run's*
    result (not the last repeat's — the historical pairing bug)."""
    best_s, best_result = float("inf"), None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()  # repro: allow[REP102] throughput timing harness
        result = evaluate()
        dt = time.perf_counter() - t0  # repro: allow[REP102] throughput timing harness
        if dt < best_s:
            best_s, best_result = dt, result
    return best_s, best_result


def _same_results(a: EvaluationResult, b: EvaluationResult) -> bool:
    return bool(
        np.array_equal(a.predictions, b.predictions)
        and a.stats.transmitted_bytes == b.stats.transmitted_bytes
    )


def measure_throughput(
    pipeline: BlissCamPipeline,
    eval_indices: list[int],
    repeats: int = 3,
    workers: int | None = None,
    executor=None,
    transport=None,
) -> dict:
    """Time the engine modes over ``eval_indices`` on a trained pipeline.

    Warms the dataset cache (every lane), the calibrated sensor template
    and both execution paths' allocations first, so the timed section
    measures the engine rather than one-time setup.  Each mode is timed
    best-of-``repeats`` — the comparison is of the code paths, not of the
    allocator/scheduler noise a loaded machine adds on top — and the
    result reported for a mode is the one produced by its best repeat.

    ``workers >= 2`` additionally times the sharded mode — the
    *production* sharded configuration: batched kernels inside each
    worker process (``sharded_kernels`` records this) — and cross-checks
    it bitwise against the in-process runs.  ``executor`` (a persistent
    pool, e.g.  ``repro.api.Session``'s) adds the persistent-pool mode —
    sharded over the *reused* pool with shard work stealing and the
    shared-memory ``transport`` channel — plus a ``transport=False``
    plain-pickle timing of the same configuration, so the record
    captures per-call-fork vs persistent-pool (``pool_reuse_speedup``)
    and pickle vs shared-memory dispatch (``transport_speedup``, with
    per-dispatch payload bytes for both paths) side by side.
    """
    if not eval_indices:
        raise ValueError(
            "eval_indices must be non-empty: throughput over zero sequences "
            "is meaningless (and the warm-up would evaluate nothing)"
        )
    for i in eval_indices:
        pipeline.dataset[i]
    warm = eval_indices[: min(2, len(eval_indices))]
    pipeline.evaluate(warm)
    pipeline.evaluate(warm, batched=True)

    seq_s, seq_result = _best_of(
        lambda: pipeline.evaluate(eval_indices), repeats
    )
    bat_s, bat_result = _best_of(
        lambda: pipeline.evaluate(eval_indices, batched=True), repeats
    )
    frames = int(seq_result.horizontal.count)
    identical = _same_results(seq_result, bat_result)
    record = {
        "sequences": len(eval_indices),
        "frames": frames,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "sequential_fps": _rate(frames, seq_s),
        "batched_fps": _rate(frames, bat_s),
        "speedup": seq_s / bat_s if bat_s > 0 else float("inf"),
        "stage_seconds_sequential": {
            name: timing.seconds
            for name, timing in seq_result.stage_timings.items()
        },
        "stage_seconds_batched": {
            name: timing.seconds
            for name, timing in bat_result.stage_timings.items()
        },
    }
    if workers is not None and workers >= 2:
        # The production sharded configuration: batched kernels inside
        # each worker (vectorized lockstep within a shard, shards over
        # processes).  Sharding sequential kernels would measure pure
        # dispatch overhead on single-core hosts instead of the mode
        # anything actually runs.
        shard_s, shard_result = _best_of(
            lambda: pipeline.evaluate(
                eval_indices, batched=True, workers=workers
            ),
            repeats,
        )
        identical = identical and _same_results(seq_result, shard_result)
        record.update(
            {
                # The runner clamps to the sequence count; record what
                # actually executed, not what was requested.
                "workers": min(workers, len(eval_indices)),
                "sharded_kernels": "batched",
                "sharded_s": shard_s,
                "sharded_fps": _rate(frames, shard_s),
                "sharded_speedup": (
                    seq_s / shard_s if shard_s > 0 else float("inf")
                ),
                "stage_seconds_sharded": {
                    name: timing.seconds
                    for name, timing in shard_result.stage_timings.items()
                },
            }
        )
        if executor is not None:
            # Warm the pool's workers once so the timed section compares
            # steady-state dispatch, not the first fork (exactly the cost
            # the persistent pool exists to amortize across run() calls).
            pipeline.evaluate(
                warm, batched=True, workers=workers, executor=executor,
                transport=transport,
            )
            pers_s, pers_result = _best_of(
                lambda: pipeline.evaluate(
                    eval_indices, batched=True, workers=workers,
                    executor=executor, transport=transport,
                ),
                repeats,
            )
            identical = identical and _same_results(seq_result, pers_result)
            # The same configuration over plain-pickle dispatch: the
            # pre-transport baseline, so the record shows what the bytes
            # cost (and the handle path's payload shrink) directly.
            pickle_s, pickle_result = _best_of(
                lambda: pipeline.evaluate(
                    eval_indices, batched=True, workers=workers,
                    executor=executor, transport=False,
                ),
                repeats,
            )
            identical = identical and _same_results(seq_result, pickle_result)
            record.update(
                {
                    "sharded_persistent_s": pers_s,
                    "sharded_persistent_fps": _rate(frames, pers_s),
                    # Per-call-fork sharded time over persistent-pool
                    # sharded time: the payoff of reusing one pool.
                    "pool_reuse_speedup": (
                        shard_s / pers_s if pers_s > 0 else float("inf")
                    ),
                    "sharded_pickle_s": pickle_s,
                    # Plain-pickle dispatch over shared-memory dispatch
                    # on the same persistent pool: the payoff of the
                    # transport layer alone.
                    "transport_speedup": (
                        pickle_s / pers_s if pers_s > 0 else float("inf")
                    ),
                    "transport": {
                        mode: {
                            key: res.transport[key]
                            for key in (
                                "mode",
                                "dispatches",
                                "payload_bytes",
                                "payload_bytes_per_dispatch",
                                "segment_bytes_written",
                                "segments_created",
                                "publish_reuses",
                            )
                        }
                        for mode, res in (
                            ("channel", pers_result),
                            ("pickle", pickle_result),
                        )
                        if res.transport is not None
                    },
                }
            )
    record["bitwise_identical"] = identical
    return record


def _fmt(value: float, digits: int = 0):
    """Round for display; non-finite values (0-second sections) print
    as-is instead of overflowing ``round``."""
    if not np.isfinite(value):
        return str(value)
    return round(value, digits) if digits else round(value)


def throughput_tables(record: dict) -> list[Table]:
    """The fps table and the per-stage attribution table for a record."""
    sharded = "sharded_s" in record
    fps = Table(
        ["mode", "frames/sec", "wall (ms)"],
        title=f"engine throughput ({record['frames']} frames, "
        f"{record['sequences']} sequences in lockstep)",
    )
    fps.add_row(
        "sequential loop",
        _fmt(record["sequential_fps"]),
        _fmt(record["sequential_s"] * 1e3),
    )
    fps.add_row(
        "batched lockstep",
        _fmt(record["batched_fps"]),
        _fmt(record["batched_s"] * 1e3),
    )
    fps.add_row("speedup", f"{record['speedup']:.2f}x", "")
    if sharded:
        fps.add_row(
            f"sharded x{record['workers']}",
            _fmt(record["sharded_fps"]),
            _fmt(record["sharded_s"] * 1e3),
        )
        fps.add_row("sharded speedup", f"{record['sharded_speedup']:.2f}x", "")
    if "sharded_persistent_s" in record:
        fps.add_row(
            f"sharded x{record['workers']} (persistent pool)",
            _fmt(record["sharded_persistent_fps"]),
            _fmt(record["sharded_persistent_s"] * 1e3),
        )
        fps.add_row(
            "pool reuse speedup", f"{record['pool_reuse_speedup']:.2f}x", ""
        )
    if "transport_speedup" in record:
        fps.add_row(
            "transport speedup (vs pickle dispatch)",
            f"{record['transport_speedup']:.2f}x",
            "",
        )
    paths = record.get("transport") or {}
    if "channel" in paths and "pickle" in paths:
        fps.add_row(
            "payload bytes/dispatch (channel vs pickle)",
            f"{paths['channel']['payload_bytes_per_dispatch']:.0f}"
            f" vs {paths['pickle']['payload_bytes_per_dispatch']:.0f}",
            "",
        )

    # Sequential/batched columns are serial wall time; the sharded column
    # is CPU time *summed over concurrent workers* (shard timings add),
    # so it is labelled as such rather than passed off as wall clock.
    columns = ["stage", "sequential (ms)", "batched (ms)"]
    modes = ["stage_seconds_sequential", "stage_seconds_batched"]
    if sharded:
        columns.append("sharded CPU (ms)")
        modes.append("stage_seconds_sharded")
    stages = Table(columns, title="per-stage wall-clock attribution")
    # Iterate the *union* of stage names: runs configured with different
    # graphs (e.g. a reuse stage present in only one mode) must not
    # KeyError — absent stages simply cost 0.0 in that mode.
    names = []
    for mode in modes:
        for name in record[mode]:
            if name not in names:
                names.append(name)
    for name in names:
        stages.add_row(
            name,
            *(round(record[mode].get(name, 0.0) * 1e3, 1) for mode in modes),
        )
    return [fps, stages]
