"""Named system configurations: CI scale and paper scale.

Both profiles flow through identical code paths (DESIGN.md §6); only sizes
differ.  ``ci()`` keeps pure-numpy training and evaluation in the seconds
range so the test suite and benchmarks are practical; ``paper()`` is the
faithful configuration of Sec. V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.segmentation.vit import ViTConfig
from repro.synth.dataset import DatasetConfig
from repro.training.joint import JointTrainConfig

__all__ = ["SystemConfig", "ci", "paper"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and train the end-to-end tracker."""

    dataset: DatasetConfig
    vit: ViTConfig
    joint: JointTrainConfig
    #: Channel width of the ROI predictor's first conv layer.
    roi_base_channels: int = 4
    #: Target compression rate (total / transmitted pixels; paper: 20.6x).
    compression: float = 20.6
    #: Safety margin (pixels) added around the predicted ROI before
    #: sampling, absorbing small box-regression errors.
    roi_margin_px: int = 1
    seed: int = 0

    @property
    def height(self) -> int:
        return self.dataset.height

    @property
    def width(self) -> int:
        return self.dataset.width


def ci(
    seed: int = 0,
    num_sequences: int = 4,
    frames_per_sequence: int = 10,
    fps: float = 120.0,
) -> SystemConfig:
    """Small configuration for tests, examples, and benches (64x64)."""
    height = width = 64
    return SystemConfig(
        dataset=DatasetConfig(
            height=height,
            width=width,
            fps=fps,
            frames_per_sequence=frames_per_sequence,
            num_sequences=num_sequences,
            seed=seed,
        ),
        vit=ViTConfig(
            height=height,
            width=width,
            patch=8,
            dim=24,
            heads=3,
            depth=2,
            decoder_depth=1,
            mlp_ratio=2.0,
        ),
        joint=JointTrainConfig(epochs=2),
        roi_base_channels=4,
        compression=20.6,
        seed=seed,
    )


def paper(seed: int = 0) -> SystemConfig:
    """The faithful Sec. V configuration (640x400, ViT-12/2, 250 epochs).

    Pure-numpy training at this scale takes hours per epoch; it exists to
    document the target configuration and for spot checks.
    """
    return SystemConfig(
        dataset=DatasetConfig(
            height=400,
            width=640,
            fps=120.0,
            frames_per_sequence=60,
            num_sequences=32,
            seed=seed,
        ),
        vit=ViTConfig.paper(height=400, width=640),
        joint=JointTrainConfig(epochs=250, lr_segmenter=1e-3, lr_roi=1e-3),
        roi_base_channels=8,
        compression=20.6,
        seed=seed,
    )
