"""Algorithm-level system variants and the strategy evaluation harness.

Fig. 12 compares three pipeline variants (NPU-Full, NPU-ROI,
NPU-ROI-Sample) across segmentation backbones; Fig. 15 compares seven
sampling strategies under a common backbone.  Both reduce to the same
harness: *train a segmenter on frames sampled by strategy S, then measure
gaze error on held-out frames sampled by S*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaze.estimation import FittedGazeEstimator
from repro.gaze.metrics import AngularErrorStats, angular_errors
from repro.sampling.eventification import eventify
from repro.sampling.strategies import SamplingStrategy
from repro.synth.dataset import SyntheticEyeDataset
from repro.training.loop import train_segmentation

__all__ = [
    "StrategyEvaluation",
    "make_strategy",
    "collect_sampled_dataset",
    "train_for_strategy",
    "evaluate_strategy",
]


@dataclass
class StrategyEvaluation:
    """Gaze accuracy of one (strategy, segmenter) pair."""

    strategy_name: str
    horizontal: AngularErrorStats
    vertical: AngularErrorStats
    mean_compression: float
    frames: int


def make_strategy(name: str, compression: float, dataset=None) -> SamplingStrategy:
    """Factory for the Fig. 15 strategy zoo by display name.

    ``ROIFixed`` needs dataset statistics; pass the training dataset.

    A compatibility shim over the :mod:`repro.api` strategy registry —
    the construction logic (including the ``ROI+Fixed`` mask fit) lives
    with the built-in registrations, so registered third-party
    strategies resolve here too.
    """
    # Lazy: core sits below the api layer; only this shim reaches up.
    import repro.api.builtin  # noqa: F401  (populates the registry)
    from repro.api.registry import STRATEGIES

    return STRATEGIES.get(name)(compression, dataset)


def _frame_decisions(
    strategy: SamplingStrategy,
    dataset: SyntheticEyeDataset,
    indices: list[int],
    rng: np.random.Generator,
    use_gt_roi: bool = True,
):
    """Yield (decision, frame, seg_target, gaze, seq_index, t) per frame pair."""
    for prev, cur, seg, gaze, gt_box, seq_index, t in dataset.frame_pairs(indices):
        event_map = eventify(prev, cur)
        roi_box = gt_box if use_gt_roi else None
        decision = strategy.sample(cur, event_map, roi_box, rng)
        yield decision, cur, seg, gaze, seq_index, t


def collect_sampled_dataset(
    strategy: SamplingStrategy,
    dataset: SyntheticEyeDataset,
    indices: list[int],
    rng: np.random.Generator,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Build (sparse_frame, mask, target) training samples under a strategy."""
    samples = []
    for decision, _cur, seg, _gaze, _si, _t in _frame_decisions(
        strategy, dataset, indices, rng
    ):
        if decision.reuse_previous:
            continue  # SKIP transmits nothing; no training sample
        samples.append((decision.sparse_frame, decision.mask, seg))
    return samples


def train_for_strategy(
    segmenter,
    strategy: SamplingStrategy,
    dataset: SyntheticEyeDataset,
    indices: list[int],
    epochs: int,
    rng: np.random.Generator,
    lr: float = 3e-3,
    batch_size: int = 4,
):
    """Train ``segmenter`` on frames sampled by ``strategy``.

    Executes on the training runtime
    (:func:`repro.training.runtime.run_segmentation_epochs` via
    :func:`train_segmentation`): each ``batch_size`` minibatch is one
    model rank, exactly as the historical loop ran it.

    Stochastic strategies draw a *fresh* mask every epoch — the same
    regime as the real sensor, whose SRAM RNG resamples each frame.  This
    is what makes random sampling trainable at high compression: the
    network sees many sparse views of each frame instead of one frozen
    mask.  Deterministic strategies (Full+DS, Skip, ROI+DS, ROI+Fixed)
    draw nothing from the RNG, so their samples are collected once and
    every epoch trains on that first pass.  For the stateless ones the
    re-collection was literally identical work; for Skip it also pins the
    adaptive gate to a fresh first pass instead of letting its running
    skip-rate leak across epoch re-collections and silently drift the
    training set (the same leaked-state bug the per-sequence ``spawn``
    design fixes on the evaluation side).
    """
    result = None
    samples = None
    for _ in range(max(1, epochs)):
        if samples is None or strategy.stochastic:
            samples = collect_sampled_dataset(strategy, dataset, indices, rng)
        if not samples:
            raise ValueError("strategy produced no training samples")
        epoch_result = train_segmentation(
            segmenter, samples, epochs=1, rng=rng, lr=lr,
            batch_size=batch_size,
        )
        if result is None:
            result = epoch_result
        else:
            result.epoch_losses.extend(epoch_result.epoch_losses)
    return result


def evaluate_strategy(
    strategy: SamplingStrategy,
    segmenter,
    dataset: SyntheticEyeDataset,
    eval_indices: list[int],
    rng: np.random.Generator,
    gaze_estimator: FittedGazeEstimator | None = None,
    batched: bool = False,
    batch_size: int | None = None,
    workers: int | None = None,
    executor=None,
    transport=None,
    use_gt_roi: bool = True,
) -> StrategyEvaluation:
    """Measure gaze error when the host sees ``strategy``-sampled frames.

    The gaze estimator is calibrated on the evaluation sequences' ground
    truth (per-user calibration); pass a pre-fit estimator to share it.

    Runs on the shared :mod:`repro.engine` stage runtime: eventify ->
    strategy sampling -> segment-or-reuse -> gaze regression, the same
    runner the end-to-end tracker uses.  Each sequence samples from its
    own ``strategy.spawn`` stream keyed by sequence index (derived from
    ``rng``), so all three execution modes — sequential, ``batched``
    lockstep, and sharded (``workers >= 2``) — produce bitwise-identical
    results; Fig. 15 sweeps can fan out freely.
    """
    from repro.engine import build_strategy_graph, strategy_runner

    if gaze_estimator is None:
        gaze_estimator = FittedGazeEstimator()
        segs = np.concatenate([dataset[i].segmentations for i in eval_indices])
        gazes = np.concatenate([dataset[i].gazes for i in eval_indices])
        gaze_estimator.fit(segs, gazes)

    graph = build_strategy_graph(
        strategy=strategy,
        segmenter=segmenter,
        gaze_estimator=gaze_estimator,
        rng=rng,
        use_gt_roi=use_gt_roi,
    )
    # The collector below only needs gaze + stats scalars; drop the
    # O(frame size) intermediates as the run streams (and keep sharded
    # worker->parent transfers scalar-sized).
    runner = strategy_runner(
        graph, batch_size=batch_size, retain_intermediates=False
    )
    run = runner.run(
        [(i, dataset[i]) for i in eval_indices],
        batched=batched,
        workers=workers,
        executor=executor,
        transport=transport,
    )

    preds, truths, compressions = [], [], []
    for ctx in run.evaluated:
        preds.append(ctx.gaze_pred)
        truths.append(ctx.gaze_true)
        if not ctx.seg_reused:
            compressions.append(min(ctx.stats["compression"], 1e6))

    horizontal, vertical = angular_errors(np.array(preds), np.array(truths))
    return StrategyEvaluation(
        strategy_name=strategy.name,
        horizontal=horizontal,
        vertical=vertical,
        mean_compression=float(np.mean(compressions)) if compressions else 1.0,
        frames=len(preds),
    )
