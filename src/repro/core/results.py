"""Result records and table rendering for the benchmark harness.

Every benchmark prints the rows/series its paper figure reports plus a
paper-vs-measured comparison; these helpers keep that output uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "PaperComparison"]


class Table:
    """Monospace table with aligned columns."""

    def __init__(self, headers: list[str], title: str = ""):
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class PaperComparison:
    """Paper-reported vs measured values for one experiment."""

    experiment: str
    entries: list[tuple[str, str, str]] = field(default_factory=list)

    def add(self, metric: str, paper_value, measured_value) -> None:
        self.entries.append((metric, _fmt(paper_value), _fmt(measured_value)))

    def render(self) -> str:
        table = Table(
            ["metric", "paper", "measured"],
            title=f"[paper-vs-measured] {self.experiment}",
        )
        for metric, paper_value, measured in self.entries:
            table.add_row(metric, paper_value, measured)
        return table.render()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
