"""The counter/gauge name registry: one table, no drift.

Every counter or gauge an instrumented seam emits is named here, and the
workload metrics blocks that report the same quantity derive their field
names from the same constants — so ``repro trace summary`` and a
``RunResult``'s metrics can never disagree about what a number is
called.  ``docs/observability.md`` renders this table.
"""

from __future__ import annotations

__all__ = [
    "SERVE_QUEUE_DEPTH",
    "QUEUE_DEPTH_FIELDS",
    "serve_queue_depth_gauge",
    "COUNTER_REGISTRY",
]

#: The serve scheduler's per-tick queue-depth series (one gauge sample
#: per tick — the trace counterpart of the telemetry block's
#: ``queue_depth.trace`` list).
SERVE_QUEUE_DEPTH = "serve.queue_depth"

#: Fields of the telemetry summary's ``queue_depth`` block, in report
#: order.  ``Telemetry.summary`` builds its dict from this tuple and the
#: serve workload emits one ``serve.queue_depth.<field>`` gauge per
#: scalar field — the satellite-2 "one naming table" contract.
QUEUE_DEPTH_FIELDS = ("max", "mean", "trace")


def serve_queue_depth_gauge(field: str) -> str:
    """The exported gauge name of one ``queue_depth`` summary field."""
    return f"{SERVE_QUEUE_DEPTH}.{field}"


#: name -> meaning of every counter the instrumented seams emit.
#: (Spans are taxonomized in docs/observability.md; counters are flat
#: and live here so the CLI's counter table can annotate them.)
COUNTER_REGISTRY = {
    # engine
    "engine.runs": "SequenceRunner.run invocations",
    "engine.frames": "frame contexts executed (all stages)",
    # training
    "train.epochs": "training epochs executed (joint + per-strategy)",
    "train.shard_dispatches": "data-parallel epoch shards dispatched",
    # serve
    "serve.ticks": "scheduler virtual-clock ticks",
    "serve.admitted": "frames admitted to the queue",
    "serve.shed.queue_full": "arrivals dropped by admission control",
    "serve.shed.deadline": "queued frames shed as doomed",
    "serve.dispatched": "frames dispatched in micro-batches",
    # store
    "store.puts": "artifact-store writes",
    "store.gets": "artifact-store lookups",
    "store.hits": "artifact-store lookup hits",
    "store.misses": "artifact-store lookup misses",
    "store.put_bytes": "payload bytes written to the store",
    "store.gc_evicted": "entries evicted by gc",
    # transport
    "transport.publishes": "payloads published to the transport channel",
    "transport.publish_reuses": "publishes deduplicated by content digest",
    "transport.publish_bytes": "payload bytes published (pre-dedup)",
    # executors
    "executor.jobs": "jobs submitted across all backends",
    "executor.worker_spans_merged": "worker-captured spans merged in",
    # session
    "session.cache_hits": "trainings replayed from memo or store",
}
