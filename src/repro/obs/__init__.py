"""``repro.obs`` — unified tracing & metrics beside the stack.

A process-local :class:`Tracer` collects structured spans, counters and
gauges from every instrumented layer (engine, training, serve, store,
transport, executors) with a strict two-plane design: the
*deterministic plane* (names, hierarchy, ids, byte counts — byte-stable
across identical runs) and the *wall plane* (monotonic durations, RSS)
confined under each record's ``"wall"`` key and to the
:mod:`repro.obs.wall` clock seam.  See ``docs/observability.md``.

Like the lint package, obs sits beside the stack: layers reach it only
through :func:`current_tracer` at their instrumented seams and run
untouched (one global read) when tracing is off.
"""

from repro.obs.export import (
    TraceFormatError,
    deterministic_bytes,
    deterministic_plane,
    perfetto_events,
    read_trace,
    summarize,
)
from repro.obs.spool import capture_job, read_spool
from repro.obs.tracer import (
    DEFAULT_MAX_SPANS,
    TRACE_DETAIL_LEVELS,
    TRACE_FORMAT_VERSION,
    SpanRecord,
    Tracer,
    current_tracer,
    finish_wall,
    install_tracer,
)

__all__ = [
    "DEFAULT_MAX_SPANS",
    "TRACE_DETAIL_LEVELS",
    "TRACE_FORMAT_VERSION",
    "SpanRecord",
    "Tracer",
    "TraceFormatError",
    "capture_job",
    "current_tracer",
    "deterministic_bytes",
    "deterministic_plane",
    "finish_wall",
    "install_tracer",
    "perfetto_events",
    "read_spool",
    "read_trace",
    "summarize",
]
