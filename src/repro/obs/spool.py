"""The cross-process span spool: worker-side capture, dispatcher-side merge.

File-queue workers live in other processes, where the ambient tracer is
(by design — see :func:`repro.obs.tracer.current_tracer`) invisible.
Instead, a traced job runs under :func:`capture_job`: a fresh capture
:class:`~repro.obs.tracer.Tracer` is installed for the job's duration
and its records are spooled to a ``<seq>.spans`` JSONL file next to the
job's result.  The dispatcher merges spools in job-sequence order on
drain, re-parenting each capture under its submit-side ``executor.job``
span — so a cross-process run still reads as one deterministic tree.

This module *is* the sanctioned merge path REP108 points worker code at.
The spool file is written atomically (tmp + ``os.replace``) and before
the result file, so a resolved future implies its spans exist.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

from repro.obs.tracer import Tracer, install_tracer

__all__ = ["capture_job", "read_spool"]


def capture_job(
    spans_path: str | Path,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
) -> Any:
    """Run one traced job under a fresh capture tracer; spool its records.

    The capture is written even when the job raises, so a failed job's
    partial spans still reach the merged trace before the error record
    does.  Returns (or re-raises) whatever the job does.
    """
    spans_path = Path(spans_path)
    tracer = Tracer(origin=f"worker-{os.getpid()}")
    try:
        with install_tracer(tracer):
            return fn(*args, **kwargs)
    finally:
        tmp = spans_path.with_name(spans_path.name + ".tmp")
        lines = [
            json.dumps(record, sort_keys=True)
            for record in tracer.to_records()
        ]
        tmp.write_bytes(("\n".join(lines) + "\n").encode())
        os.replace(tmp, spans_path)


def read_spool(path: str | Path) -> list[dict]:
    """Parse one spooled capture back into a record list."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
