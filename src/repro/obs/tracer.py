"""The process-local tracer: structured spans + counters, two planes.

One :class:`Tracer` accumulates everything one traced run observed:

* **spans** — named, hierarchical (parent ids), each carrying a
  *deterministic* attribute dict (sequence/epoch/tick/client ids, byte
  counts, hit/miss flags — values that are a pure function of the spec)
  and a *wall* dict (monotonic start/duration, RSS snapshot) that is
  explicitly non-deterministic measurement payload;
* **counters** — monotonic named totals (cache hits, shed frames,
  dropped spans), folded into one sorted table at export;
* **gauges** — ordered samples of a named series (queue depth per
  tick), deterministic like counters.

The two-plane rule is structural, not conventional: every record stores
its wall measurements under the single ``"wall"`` key, all wall reads go
through :mod:`repro.obs.wall` (REP108 enforces this), and the exported
JSONL sorts keys — so two identical runs produce byte-identical files
once the ``"wall"`` values are stripped, which the determinism tests pin.

Instrumented seams reach the tracer ambiently via :func:`current_tracer`
(``None`` when tracing is off — the zero-overhead fast path is a single
global read).  The ambient tracer is pinned to the installing process
*and thread*: a fork-pool worker or a thread-pool job sees ``None``
instead of interleaving spans nondeterministically — cross-process spans
must travel the spooled merge path (:mod:`repro.obs.spool`) instead,
which REP108 also enforces at the worker-entry seams.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.wall import rss_kb, wall_now

__all__ = [
    "TRACE_FORMAT_VERSION",
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "finish_wall",
]

#: Version of the JSONL trace record schema.  Bump on any incompatible
#: change; ``repro trace`` refuses files from a different version rather
#: than misreading them.
TRACE_FORMAT_VERSION = 1

#: Trace detail levels (the ``execution.trace.detail`` spec values).
#: ``full`` records everything; ``summary`` skips the high-volume
#: per-tick/per-publish spans while keeping the layer roll-ups,
#: counters and gauges.
TRACE_DETAIL_LEVELS = ("summary", "full")

#: Span-count safety cap: a runaway instrumentation loop degrades into
#: a counted ``spans_dropped`` instead of unbounded memory growth.
DEFAULT_MAX_SPANS = 200_000


@dataclass
class SpanRecord:
    """One span: deterministic identity/attrs plus wall measurements."""

    id: int
    parent: int | None
    name: str
    #: Deterministic plane: a pure function of spec + code.
    attrs: dict = field(default_factory=dict)
    #: Wall plane: opaque measurement payload, stripped for byte
    #: comparisons.  Never branch on these values.
    wall: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        return {
            "type": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "attrs": self.attrs,
            "wall": self.wall,
        }


def finish_wall(record: SpanRecord) -> None:
    """Close a span's wall duration in place.

    Touches *only* the wall dict, so completion callbacks running on
    pool threads (whose ordering is nondeterministic) can never perturb
    the deterministic plane — the span's identity, position and attrs
    were fixed when it was opened.
    """
    start = record.wall.get("start_s")
    if start is not None and "dur_s" not in record.wall:
        record.wall["dur_s"] = wall_now() - start


class Tracer:
    """Accumulates one run's spans/counters/gauges; exports JSONL."""

    def __init__(
        self,
        origin: str = "main",
        detail: str = "full",
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        if detail not in TRACE_DETAIL_LEVELS:
            raise ValueError(
                f"unknown trace detail {detail!r}; "
                f"choose from {TRACE_DETAIL_LEVELS}"
            )
        self.origin = origin
        self.detail = detail
        self.max_spans = max_spans
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: list[dict] = []
        self.dropped = 0
        self.sink_bytes = 0
        self._next_id = 1
        self._stack: list[int] = []

    # -- emission -------------------------------------------------------------
    def _open(
        self, name: str, parent: int | None, attrs: dict
    ) -> SpanRecord | None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        record = SpanRecord(
            id=self._next_id,
            parent=parent,
            name=name,
            attrs=attrs,
            wall={"start_s": wall_now(), "rss_kb": rss_kb()},
        )
        self._next_id += 1
        self.spans.append(record)
        return record

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord | None]:
        """Open a child span of the innermost open span; closes on exit."""
        parent = self._stack[-1] if self._stack else None
        record = self._open(name, parent, attrs)
        if record is None:
            yield None
            return
        self._stack.append(record.id)
        try:
            yield record
        finally:
            self._stack.pop()
            finish_wall(record)

    def point(
        self,
        name: str,
        parent: int | None | SpanRecord = None,
        wall_dur: float | None = None,
        **attrs: Any,
    ) -> SpanRecord | None:
        """Emit an already-complete span (a measurement view).

        Used where the measurement exists before the span does — stage
        timings accumulated by the engine, executor jobs whose wall
        completion arrives later via :func:`finish_wall`.  ``parent``
        defaults to the innermost open span.
        """
        if isinstance(parent, SpanRecord):
            parent = parent.id
        if parent is None and self._stack:
            parent = self._stack[-1]
        record = self._open(name, parent, attrs)
        if record is not None and wall_dur is not None:
            record.wall["dur_s"] = wall_dur
        return record

    def count(self, name: str, value: float = 1) -> None:
        """Bump a named counter (deterministic plane)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        """Append one sample of a named series (deterministic plane)."""
        self.gauges.append(
            {"type": "gauge", "name": name, "value": value, "attrs": attrs}
        )

    # -- cross-process merge ---------------------------------------------------
    def merge_records(
        self, records: list[dict], parent: int | None | SpanRecord = None
    ) -> int:
        """Fold a spooled worker capture in (the file-queue merge path).

        Span ids are remapped into this tracer's sequence; captured root
        spans re-parent under ``parent`` (the dispatcher-side executor
        job span), so the cross-process trace reads as one tree.  Caller
        supplies captures in a deterministic order (sorted job
        sequence); within a capture, record order is preserved.
        Returns the number of spans merged.
        """
        if isinstance(parent, SpanRecord):
            parent = parent.id
        id_map: dict[int, int] = {}
        merged = 0
        for record in records:
            kind = record.get("type")
            if kind == "span":
                if len(self.spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                old_parent = record.get("parent")
                new = SpanRecord(
                    id=self._next_id,
                    parent=(
                        id_map.get(old_parent, parent)
                        if old_parent is not None
                        else parent
                    ),
                    name=record["name"],
                    attrs=dict(record.get("attrs", {})),
                    wall=dict(record.get("wall", {})),
                )
                self._next_id += 1
                id_map[record["id"]] = new.id
                self.spans.append(new)
                merged += 1
            elif kind == "counter":
                self.count(record["name"], record["value"])
            elif kind == "gauge":
                self.gauges.append(
                    {
                        "type": "gauge",
                        "name": record["name"],
                        "value": record["value"],
                        "attrs": dict(record.get("attrs", {})),
                    }
                )
            elif kind == "meta":
                self.dropped += int(record.get("spans_dropped", 0))
        return merged

    # -- export ----------------------------------------------------------------
    def to_records(self) -> list[dict]:
        """The full JSONL record stream (meta, spans, gauges, counters).

        Deterministic ordering throughout: spans in emission order,
        gauges in sample order, counters sorted by name (REP104 — the
        table must not depend on increment order).
        """
        records: list[dict] = [
            {
                "type": "meta",
                "format": TRACE_FORMAT_VERSION,
                "origin": self.origin,
                "detail": self.detail,
                "spans": len(self.spans),
                "spans_dropped": self.dropped,
            }
        ]
        records.extend(span.to_record() for span in self.spans)
        records.extend(self.gauges)
        records.extend(
            {"type": "counter", "name": name, "value": value}
            for name, value in sorted(self.counters.items())
        )
        return records

    def write_jsonl(self, path: str | Path) -> int:
        """Write the versioned JSONL trace; returns bytes written."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(record, sort_keys=True) for record in self.to_records()
        ]
        data = ("\n".join(lines) + "\n").encode()
        path.write_bytes(data)
        self.sink_bytes += len(data)
        return len(data)

    def stats(self) -> dict:
        """Observability of the observer: volume + drop accounting."""
        return {
            "spans": len(self.spans),
            "spans_dropped": self.dropped,
            "counters": len(self.counters),
            "gauges": len(self.gauges),
            "sink_bytes": self.sink_bytes,
        }


# -- the ambient tracer --------------------------------------------------------
_CURRENT: Tracer | None = None
#: (pid, thread ident) that installed the tracer: fork-pool children and
#: sibling threads read ``None`` instead of racing the span stack.
_OWNER: tuple[int, int] | None = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` (tracing off / wrong context).

    Returns ``None`` in any process or thread other than the installer's
    — span emission from shard workers must travel the spooled merge
    path (:mod:`repro.obs.spool`), never the ambient global.
    """
    if _CURRENT is None:
        return None
    if (os.getpid(), threading.get_ident()) != _OWNER:
        return None
    return _CURRENT


@contextmanager
def install_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` ambient for the calling thread; restores on exit."""
    global _CURRENT, _OWNER
    previous = (_CURRENT, _OWNER)
    _CURRENT = tracer
    _OWNER = (os.getpid(), threading.get_ident())
    try:
        yield tracer
    finally:
        _CURRENT, _OWNER = previous
