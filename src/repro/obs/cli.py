"""``repro trace <summary|export|diff>`` — inspect exported traces.

Follows the repository's CLI conventions: ``--json`` writes a
machine-readable record, exit code 0 on success and 2 on usage errors
(``diff`` additionally exits 1 when the deterministic planes differ).
Dispatch happens in :func:`repro.cli.main` before the spec-builder
parser runs, exactly like ``repro lint`` and ``repro store``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.results import Table
from repro.obs.export import (
    TraceFormatError,
    deterministic_plane,
    perfetto_events,
    read_trace,
    summarize,
)

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="inspect traces exported by `repro run --trace`",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="top-N spans by wall time + counter/gauge tables"
    )
    summary.add_argument("trace", help="JSONL trace file")
    summary.add_argument(
        "--top", type=int, default=10, help="span rows to show (default 10)"
    )
    summary.add_argument("--json", metavar="PATH", default=None)

    export = sub.add_parser(
        "export", help="convert a trace to another viewer format"
    )
    export.add_argument("trace", help="JSONL trace file")
    export.add_argument(
        "--perfetto",
        metavar="PATH",
        required=True,
        help="write Chrome/Perfetto trace_event JSON here",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two traces' deterministic planes (exit 1 on drift)",
    )
    diff.add_argument("left", help="baseline JSONL trace")
    diff.add_argument("right", help="candidate JSONL trace")
    diff.add_argument(
        "--max-lines", type=int, default=10,
        help="differing records to print (default 10)",
    )
    return parser


def _load(path: str) -> list[dict] | None:
    try:
        return read_trace(path)
    except TraceFormatError as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return None


def _cmd_summary(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    if records is None:
        return 2
    report = summarize(records, top=args.top)
    table = Table(
        ["span", "count", "wall_s", "mean_wall_s"],
        title=f"trace {args.trace} (origin={report['origin']}, "
        f"detail={report['detail']})",
    )
    for row in report["spans"]:
        table.add_row(
            row["name"],
            row["count"],
            f"{row['wall_s']:.6f}",
            f"{row['mean_wall_s']:.6f}",
        )
    print(table.render())
    print(
        f"{report['spans_total']} spans ({report['span_names']} names, "
        f"{report['spans_dropped']} dropped)"
    )
    if report["counters"]:
        counter_table = Table(["counter", "value"], title="counters")
        for name, value in report["counters"].items():
            counter_table.add_row(name, value)
        print(counter_table.render())
    if report["gauges"]:
        gauge_table = Table(
            ["gauge", "samples", "min", "max"], title="gauges"
        )
        for name, series in report["gauges"].items():
            gauge_table.add_row(
                name, series["samples"], series["min"], series["max"]
            )
        print(gauge_table.render())
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    if records is None:
        return 2
    payload = perfetto_events(records)
    out = Path(args.perfetto)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload) + "\n")
    print(f"wrote {len(payload['traceEvents'])} events to {out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    left = _load(args.left)
    right = _load(args.right)
    if left is None or right is None:
        return 2
    left_lines = [
        json.dumps(record, sort_keys=True)
        for record in deterministic_plane(left)
    ]
    right_lines = [
        json.dumps(record, sort_keys=True)
        for record in deterministic_plane(right)
    ]
    if left_lines == right_lines:
        print(
            f"deterministic planes identical "
            f"({len(left_lines)} records)"
        )
        return 0
    print(
        f"deterministic planes differ: {len(left_lines)} vs "
        f"{len(right_lines)} records"
    )
    shown = 0
    for i in range(max(len(left_lines), len(right_lines))):
        lhs = left_lines[i] if i < len(left_lines) else "<missing>"
        rhs = right_lines[i] if i < len(right_lines) else "<missing>"
        if lhs == rhs:
            continue
        print(f"record {i}:")
        print(f"  - {lhs}")
        print(f"  + {rhs}")
        shown += 1
        if shown >= args.max_lines:
            remaining = sum(
                1
                for j in range(i + 1, max(len(left_lines), len(right_lines)))
                if (left_lines[j] if j < len(left_lines) else None)
                != (right_lines[j] if j < len(right_lines) else None)
            )
            if remaining:
                print(f"... {remaining} more differing records")
            break
    return 1


_COMMANDS = {"summary": _cmd_summary, "export": _cmd_export, "diff": _cmd_diff}


def main(argv: list[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors already; normalize --help's 0.
        return int(exc.code or 0)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
