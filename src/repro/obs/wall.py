"""The wall plane's only clock: every wall-time read in ``repro.obs``.

The tracer's two-plane contract (see ``docs/observability.md``) confines
non-deterministic measurements — monotonic timestamps, durations, RSS
snapshots — to this module.  Everything else under ``repro.obs`` treats
wall values as opaque payload: it stores them under the ``"wall"`` key
of a record and never branches on them, so stripping that key yields the
byte-stable deterministic plane.

REP108 enforces the seam statically: a wall-clock call anywhere else in
``repro.obs`` is a lint finding.  The reads here carry the same REP102
waivers every sanctioned measurement seam in the repository does.
"""

from __future__ import annotations

import os
import time

__all__ = ["wall_now", "rss_kb"]

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None


def wall_now() -> float:
    """Monotonic wall-plane timestamp (seconds, arbitrary epoch)."""
    return time.perf_counter()  # repro: allow[REP102] the obs wall plane's declared clock seam


def rss_kb() -> int:
    """Current max resident-set size in KiB (0 where unsupported)."""
    if _resource is None:  # pragma: no cover - non-posix platforms
        return 0
    usage = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(usage // 1024) if os.uname().sysname == "Darwin" else int(usage)
