"""Trace readers and exporters: JSONL in, summaries / Perfetto out.

Everything here operates on the *record stream* (the list of plain dicts
:meth:`~repro.obs.tracer.Tracer.to_records` writes), so the CLI, the
tests and programmatic consumers share one parser and one
deterministic-plane definition.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import TRACE_FORMAT_VERSION

__all__ = [
    "TraceFormatError",
    "read_trace",
    "deterministic_plane",
    "deterministic_bytes",
    "perfetto_events",
    "summarize",
]


class TraceFormatError(ValueError):
    """A trace file is unreadable or from an incompatible format."""


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace, refusing incompatible format versions."""
    path = Path(path)
    records: list[dict] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}:{i}: invalid trace record: {exc}"
            ) from exc
    meta = records[0] if records else None
    if not isinstance(meta, dict) or meta.get("type") != "meta":
        raise TraceFormatError(
            f"{path}: not a repro trace (missing meta header)"
        )
    if meta.get("format") != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: trace format {meta.get('format')!r}, this tree reads "
            f"format {TRACE_FORMAT_VERSION} — re-record the trace"
        )
    return records


def deterministic_plane(records: list[dict]) -> list[dict]:
    """The byte-stable half of a trace: every record minus ``"wall"``.

    This is the *definition* the determinism tests pin: identical runs
    must produce identical streams after this projection.
    """
    return [
        {key: value for key, value in record.items() if key != "wall"}
        for record in records
    ]


def deterministic_bytes(records: list[dict]) -> bytes:
    """Canonical serialization of the deterministic plane."""
    lines = [
        json.dumps(record, sort_keys=True)
        for record in deterministic_plane(records)
    ]
    return ("\n".join(lines) + "\n").encode()


def perfetto_events(records: list[dict]) -> dict:
    """Chrome/Perfetto ``trace_event`` JSON for ``chrome://tracing``.

    Spans become complete (``"X"``) events on the wall timeline; gauges
    become counter (``"C"``) events sampled at their stream position.
    Spans without wall timestamps (merged captures from clock-skewed
    hosts always have them; dropped-cap placeholders do not exist) fall
    back to their emission index so every span stays visible.
    """
    events = []
    for index, record in enumerate(records):
        kind = record.get("type")
        if kind == "span":
            wall = record.get("wall", {})
            start = wall.get("start_s")
            ts_us = (
                start * 1e6 if start is not None else float(index)
            )
            events.append(
                {
                    "name": record["name"],
                    "ph": "X",
                    "ts": ts_us,
                    "dur": max(wall.get("dur_s", 0.0), 0.0) * 1e6,
                    "pid": wall.get("pid", 0),
                    "tid": wall.get("pid", 0),
                    "args": {
                        **record.get("attrs", {}),
                        "span_id": record["id"],
                        "parent_id": record.get("parent"),
                    },
                }
            )
        elif kind == "gauge":
            events.append(
                {
                    "name": record["name"],
                    "ph": "C",
                    "ts": float(index),
                    "pid": 0,
                    "args": {"value": record["value"]},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize(records: list[dict], top: int = 10) -> dict:
    """Aggregate a trace: per-name span roll-up + counter/gauge tables.

    Spans aggregate by name (count, total/mean wall seconds — wall
    values are reported, never compared); the span table is ordered by
    total wall seconds descending (ties by name) and truncated to
    ``top``.  Counters and gauge series are complete and name-sorted.
    """
    meta = records[0]
    by_name: dict[str, dict] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        entry = by_name.setdefault(
            record["name"], {"count": 0, "wall_s": 0.0}
        )
        entry["count"] += 1
        entry["wall_s"] += record.get("wall", {}).get("dur_s", 0.0) or 0.0
    span_rows = [
        {
            "name": name,
            "count": entry["count"],
            "wall_s": entry["wall_s"],
            "mean_wall_s": entry["wall_s"] / entry["count"],
        }
        for name, entry in by_name.items()
    ]
    span_rows.sort(key=lambda row: (-row["wall_s"], row["name"]))
    counters = {
        record["name"]: record["value"]
        for record in records
        if record.get("type") == "counter"
    }
    gauges: dict[str, dict] = {}
    for record in records:
        if record.get("type") != "gauge":
            continue
        series = gauges.setdefault(
            record["name"], {"samples": 0, "min": None, "max": None}
        )
        series["samples"] += 1
        value = record["value"]
        series["min"] = value if series["min"] is None else min(series["min"], value)
        series["max"] = value if series["max"] is None else max(series["max"], value)
    return {
        "format": meta.get("format"),
        "origin": meta.get("origin"),
        "detail": meta.get("detail"),
        "spans_total": sum(row["count"] for row in span_rows),
        "spans_dropped": meta.get("spans_dropped", 0),
        "span_names": len(span_rows),
        "spans": span_rows[:top],
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
    }
