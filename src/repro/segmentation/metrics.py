"""Segmentation quality metrics: per-class IoU, mIoU, pixel accuracy."""

from __future__ import annotations

import numpy as np

from repro.synth.eye_model import NUM_CLASSES

__all__ = ["per_class_iou", "mean_iou", "pixel_accuracy", "confusion_matrix"]


def confusion_matrix(
    pred: np.ndarray, target: np.ndarray, num_classes: int = NUM_CLASSES
) -> np.ndarray:
    """(K, K) matrix; rows are ground truth, columns predictions."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    idx = target.astype(np.int64).ravel() * num_classes + pred.astype(np.int64).ravel()
    counts = np.bincount(idx, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def per_class_iou(
    pred: np.ndarray, target: np.ndarray, num_classes: int = NUM_CLASSES
) -> np.ndarray:
    """IoU for each class; NaN for classes absent from both maps."""
    cm = confusion_matrix(pred, target, num_classes)
    inter = np.diag(cm).astype(np.float64)
    union = cm.sum(axis=0) + cm.sum(axis=1) - inter
    with np.errstate(invalid="ignore", divide="ignore"):
        iou = inter / union
    iou[union == 0] = np.nan
    return iou


def mean_iou(
    pred: np.ndarray, target: np.ndarray, num_classes: int = NUM_CLASSES
) -> float:
    """Mean IoU over present classes."""
    iou = per_class_iou(pred, target, num_classes)
    present = ~np.isnan(iou)
    if not present.any():
        return float("nan")
    return float(iou[present].mean())


def pixel_accuracy(pred: np.ndarray, target: np.ndarray) -> float:
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.mean(pred == target))
