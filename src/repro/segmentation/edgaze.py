"""EdGaze-style depthwise-separable CNN baseline (Feng et al. 2022).

EdGaze's eye segmentation network uses depthwise-separable convolutions
for efficiency.  This implementation mirrors that design at small scale:
a strided separable encoder, a separable middle stage, and a nearest-
neighbour upsampling decoder with a 1x1 classifier.  Like RITnet it is a
dense-input CNN and degrades under sparse sampling (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.synth.eye_model import NUM_CLASSES

__all__ = ["EdGazeNet"]


class _SeparableBlock(nn.Module):
    """Depthwise conv -> pointwise (1x1) conv -> BN -> ReLU."""

    def __init__(
        self, cin: int, cout: int, rng: np.random.Generator, stride: int = 1
    ):
        super().__init__()
        self.depthwise = nn.DepthwiseConv2d(cin, 3, rng, stride=stride, padding=1)
        self.pointwise = nn.Conv2d(cin, cout, 1, rng)
        self.bn = nn.BatchNorm2d(cout)
        self.act = nn.ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.act(self.bn(self.pointwise(self.depthwise(x))))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.bn.backward(self.act.backward(grad))
        return self.depthwise.backward(self.pointwise.backward(grad))

    def mac_count(self, h_in: int, w_in: int) -> int:
        h_out = h_in // self.depthwise.stride
        w_out = w_in // self.depthwise.stride
        return self.depthwise.mac_count(h_in, w_in) + self.pointwise.mac_count(
            h_out, w_out
        )


class EdGazeNet(nn.Module):
    """Depthwise-separable segmenter; logits returned as ``(B, H, W, K)``."""

    #: Training-mode batch norm couples rows through batch statistics,
    #: so the engine only batches ``predict_batch`` on eval-mode nets.
    predict_batch_requires_eval = True

    def __init__(
        self,
        rng: np.random.Generator,
        base_channels: int = 8,
        num_classes: int = NUM_CLASSES,
    ):
        super().__init__()
        c = base_channels
        self.num_classes = num_classes
        self.stem = nn.Conv2d(2, c, 3, rng, padding=1)
        self.stem_act = nn.ReLU()
        self.down1 = _SeparableBlock(c, 2 * c, rng, stride=2)
        self.down2 = _SeparableBlock(2 * c, 4 * c, rng, stride=2)
        self.mid = _SeparableBlock(4 * c, 4 * c, rng)
        self.up1 = nn.UpsampleNearest2d(2)
        self.refine1 = _SeparableBlock(4 * c, 2 * c, rng)
        self.up2 = nn.UpsampleNearest2d(2)
        self.refine2 = _SeparableBlock(2 * c, c, rng)
        self.classifier = nn.Conv2d(c, num_classes, 1, rng)
        self._c = c

    def forward(self, frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
        x = np.stack([frames, masks.astype(np.float64)], axis=1)
        h = self.stem_act(self.stem(x))
        h = self.down1(h)
        h = self.down2(h)
        h = self.mid(h)
        h = self.refine1(self.up1(h))
        h = self.refine2(self.up2(h))
        return self.classifier(h).transpose(0, 2, 3, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad.transpose(0, 3, 1, 2))
        grad = self.up2.backward(self.refine2.backward(grad))
        grad = self.up1.backward(self.refine1.backward(grad))
        grad = self.mid.backward(grad)
        grad = self.down2.backward(grad)
        grad = self.down1.backward(grad)
        return self.stem.backward(self.stem_act.backward(grad))

    def predict(self, frame: np.ndarray, mask: np.ndarray) -> np.ndarray:
        logits = self.forward(frame[None], mask[None])
        return np.argmax(logits[0], axis=-1)

    def predict_batch(self, frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`predict` over ``(B, H, W)`` stacks, bitwise row-equal.

        The trunk is row-independent in eval mode: convolutions run as
        per-sample GEMMs, batch norm applies frozen running statistics
        elementwise, and the argmax reduces per pixel, so stacking the
        rank cannot change any row (pinned by the batch-invariance
        tests).  Only valid on eval-mode networks — training-mode batch
        norm couples rows through batch statistics.
        """
        return np.argmax(self.forward(frames, masks), axis=-1)

    def mac_count(self, height: int, width: int) -> int:
        total = self.stem.mac_count(height, width)
        total += self.down1.mac_count(height, width)
        total += self.down2.mac_count(height // 2, width // 2)
        total += self.mid.mac_count(height // 4, width // 4)
        total += self.refine1.mac_count(height // 2, width // 2)
        total += self.refine2.mac_count(height, width)
        total += self.classifier.mac_count(height, width)
        return total
