"""ViT-based sparse eye segmentation (paper Sec. III-B, Fig. 6).

Architecture, following Strudel et al.'s Segmenter as the paper does:

* **patch embedding** — the sparse frame is split into non-overlapping
  patches; each token is the concatenation of the (masked) pixel values
  and the sampling-mask bits of its patch, linearly projected and given a
  learned positional embedding.  Carrying the mask bits lets the network
  distinguish "dark pixel" from "unsampled pixel".
* **encoder** — ``depth`` pre-LN MHA modules.  Tokens whose patch contains
  no sampled pixel are marked invalid and excluded from attention via a
  key-padding mask, which is how the computation "naturally reduces as the
  pixel volume reduces".
* **decoder** — learned class embeddings are appended as extra tokens and
  ``decoder_depth`` MHA modules run over the joint sequence; a linear head
  then expands every patch token into per-pixel class logits, and argmax
  yields the segmentation (Fig. 6's "MHA module x 2" + argmax).

Paper-scale configuration: 12 encoder MHA modules, 2 decoder modules,
3 heads x 192 channels.  The CI configuration shrinks depth/width only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn import init
from repro.synth.eye_model import NUM_CLASSES

__all__ = ["ViTConfig", "ViTSegmenter"]


@dataclass(frozen=True)
class ViTConfig:
    """Hyper-parameters of the ViT segmenter."""

    height: int = 64
    width: int = 64
    patch: int = 8
    dim: int = 48
    heads: int = 3
    depth: int = 2
    decoder_depth: int = 1
    mlp_ratio: float = 2.0
    num_classes: int = NUM_CLASSES

    @staticmethod
    def paper(height: int = 400, width: int = 640) -> "ViTConfig":
        """The configuration reported in Sec. III-B."""
        return ViTConfig(
            height=height,
            width=width,
            patch=16,
            dim=192,
            heads=3,
            depth=12,
            decoder_depth=2,
            mlp_ratio=4.0,
        )

    @property
    def tokens(self) -> int:
        return (self.height // self.patch) * (self.width // self.patch)

    def __post_init__(self):
        if self.height % self.patch or self.width % self.patch:
            raise ValueError(
                f"{self.height}x{self.width} not divisible by patch {self.patch}"
            )
        if self.dim % self.heads:
            raise ValueError(f"dim {self.dim} not divisible by heads {self.heads}")


class ViTSegmenter(nn.Module):
    """Sparse-input ViT segmentation network with full backprop."""

    #: The forward has no batch-coupled modules (LayerNorm and masked
    #: attention are per-row regardless of ``training``), so the engine
    #: may batch ``predict_batch`` even on a net still in training mode.
    predict_batch_requires_eval = False

    def __init__(self, config: ViTConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        c = config
        in_dim = 2 * c.patch * c.patch  # pixel values + mask bits
        self.patch_embed = nn.Linear(in_dim, c.dim, rng)
        self.pos_embed = nn.Parameter(
            init.truncated_normal((1, c.tokens, c.dim), rng), name="pos_embed"
        )
        self.class_embed = nn.Parameter(
            init.truncated_normal((1, c.num_classes, c.dim), rng), name="class_embed"
        )
        self.encoder = [
            nn.TransformerBlock(c.dim, c.heads, c.mlp_ratio, rng)
            for _ in range(c.depth)
        ]
        self.decoder = [
            nn.TransformerBlock(c.dim, c.heads, c.mlp_ratio, rng)
            for _ in range(c.decoder_depth)
        ]
        self.final_norm = nn.LayerNorm(c.dim)
        self.head = nn.Linear(c.dim, c.patch * c.patch * c.num_classes, rng)

    # -- helpers ---------------------------------------------------------------
    def _tokenize(
        self, frames: np.ndarray, masks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frames+masks (B, H, W) -> token features (B, T, 2p^2), validity (B, T)."""
        c = self.config
        frames = frames[:, None]  # (B, 1, H, W)
        masks_f = masks.astype(np.float64)[:, None]
        pix = F.patchify(frames * masks_f, c.patch)
        bit = F.patchify(masks_f, c.patch)
        valid = bit.sum(axis=-1) > 0  # token has at least one sampled pixel
        return np.concatenate([pix, bit], axis=-1), valid

    # -- forward / backward ------------------------------------------------------
    def forward(self, frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Sparse frames (B, H, W) + sampling masks -> logits (B, H, W, K)."""
        c = self.config
        if frames.ndim != 3:
            raise ValueError(f"expected (B, H, W) frames, got {frames.shape}")
        tokens, valid = self._tokenize(frames, masks)
        batch = tokens.shape[0]
        x = self.patch_embed(tokens) + self.pos_embed.data
        self._enc_valid = valid
        for block in self.encoder:
            x = block(x, key_mask=valid)
        cls = np.broadcast_to(
            self.class_embed.data, (batch, c.num_classes, c.dim)
        ).copy()
        joint = np.concatenate([x, cls], axis=1)
        joint_valid = np.concatenate(
            [valid, np.ones((batch, c.num_classes), dtype=bool)], axis=1
        )
        for block in self.decoder:
            joint = block(joint, key_mask=joint_valid)
        patch_tokens = joint[:, : c.tokens]
        normed = self.final_norm(patch_tokens)
        logits_flat = self.head(normed)  # (B, T, p*p*K)
        self._batch = batch
        per_pixel = logits_flat.reshape(batch, c.tokens, c.patch * c.patch, c.num_classes)
        # Rearrange to (B, H, W, K) via unpatchify on each class channel.
        per_pixel = per_pixel.transpose(0, 1, 3, 2).reshape(
            batch, c.tokens, c.num_classes * c.patch * c.patch
        )
        img = F.unpatchify(per_pixel, c.patch, c.num_classes, c.height, c.width)
        return img.transpose(0, 2, 3, 1)  # (B, H, W, K)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        c = self.config
        batch = self._batch
        grad = grad.transpose(0, 3, 1, 2)  # (B, K, H, W)
        grad_tokens = F.patchify(grad, c.patch)  # (B, T, K*p*p)
        grad_tokens = grad_tokens.reshape(
            batch, c.tokens, c.num_classes, c.patch * c.patch
        ).transpose(0, 1, 3, 2)
        grad_flat = grad_tokens.reshape(batch, c.tokens, -1)
        grad_normed = self.head.backward(grad_flat)
        grad_patch_tokens = self.final_norm.backward(grad_normed)
        grad_joint = np.concatenate(
            [
                grad_patch_tokens,
                np.zeros((batch, c.num_classes, c.dim)),
            ],
            axis=1,
        )
        for block in reversed(self.decoder):
            grad_joint = block.backward(grad_joint)
        grad_x = grad_joint[:, : c.tokens]
        self.class_embed.grad += grad_joint[:, c.tokens :].sum(axis=0, keepdims=True)
        for block in reversed(self.encoder):
            grad_x = block.backward(grad_x)
        self.pos_embed.grad += grad_x.sum(axis=0, keepdims=True)
        return self.patch_embed.backward(grad_x)

    def backward_to_input(self, grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backward pass returning pixel-space input gradients.

        Returns ``(grad_sparse_frame, grad_mask_channel)``, each ``(B, H,
        W)`` — the gradients with respect to the masked pixel values and
        the mask bits.  These feed the joint training's approximate
        differentiation through the sampling stage (Sec. III-C).
        """
        c = self.config
        grad_tokens = self.backward(grad)  # (B, T, 2*p*p)
        half = c.patch * c.patch
        grad_pix = F.unpatchify(
            grad_tokens[..., :half], c.patch, 1, c.height, c.width
        )[:, 0]
        grad_bit = F.unpatchify(
            grad_tokens[..., half:], c.patch, 1, c.height, c.width
        )[:, 0]
        return grad_pix, grad_bit

    # -- inference -----------------------------------------------------------
    def predict(self, frame: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Single sparse frame -> integer segmentation map (argmax layer)."""
        logits = self.forward(frame[None], mask[None])
        return np.argmax(logits[0], axis=-1)

    def predict_batch(self, frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Dense :meth:`predict` over a ``(B, H, W)`` rank, bitwise row-equal.

        One stacked dense forward: every row keeps the full token grid,
        so the rank is a single fixed-shape group — the same
        row-independence property :meth:`predict_packed_batch` exploits
        per valid-token-count group (see its caveat on BLAS behaviour).
        The strategy graph's segment-or-reuse stage batches through this
        because its scalar reference is the dense :meth:`predict`, not
        the packed path.
        """
        return np.argmax(self.forward(frames, masks), axis=-1)

    def forward_packed(
        self, frame: np.ndarray, mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sparse inference with *physically dropped* empty tokens.

        This is how "the cost of computation naturally reduces as the
        pixel volume reduces" (Sec. III-B) is realized at inference: only
        patch tokens containing sampled pixels enter the transformer, so
        attention and MLP cost scale with the valid-token count, not the
        frame size.  Because masked attention already isolates valid
        tokens from invalid ones, the logits produced for valid patches
        are identical to :meth:`forward`'s (up to float round-off).

        Returns ``(logits (H, W, K), token_valid (T,))``; patches without
        sampled pixels receive all-zero logits (argmax -> background).
        """
        c = self.config
        tokens, valid = self._tokenize(frame[None], mask[None])
        keep = np.nonzero(valid[0])[0]
        logits = np.zeros((c.tokens, c.patch * c.patch * c.num_classes))
        if keep.size:
            x = self.patch_embed(tokens[:, keep]) + self.pos_embed.data[:, keep]
            for block in self.encoder:
                x = block(x)
            cls = self.class_embed.data.copy()
            joint = np.concatenate([x, cls], axis=1)
            for block in self.decoder:
                joint = block(joint)
            packed = self.head(self.final_norm(joint[:, : keep.size]))
            logits[keep] = packed[0]
        per_pixel = logits.reshape(
            1, c.tokens, c.patch * c.patch, c.num_classes
        ).transpose(0, 1, 3, 2).reshape(
            1, c.tokens, c.num_classes * c.patch * c.patch
        )
        img = F.unpatchify(per_pixel, c.patch, c.num_classes, c.height, c.width)
        return img[0].transpose(1, 2, 0), valid[0]

    def predict_packed(self, frame: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Like :meth:`predict` but with dropped-token (fast) inference."""
        logits, _ = self.forward_packed(frame, mask)
        return np.argmax(logits, axis=-1)

    def predict_packed_batch(
        self, frames: np.ndarray, masks: np.ndarray
    ) -> np.ndarray:
        """Packed inference over a batch of frames, bitwise-equal per frame.

        Frames are grouped by valid-token count so each group runs one
        stacked packed forward with the same per-frame matmul shapes as
        :meth:`predict_packed`; numpy's batched GEMM/einsum paths are
        row-independent for a fixed inner shape, so every frame's logits
        (and hence seg map) are bitwise identical to the per-frame call.
        The batched engine relies on this for its sequential-equivalence
        guarantee while amortizing python/numpy dispatch overhead across
        the lockstep batch.

        Caveat: per-row identity of stacked GEMMs is a property of the
        installed BLAS, not an IEEE guarantee — it holds for the builds
        this repo targets and is enforced end-to-end by the engine
        equivalence tests, but a BLAS whose kernel selection varies with
        the stacked batch dimension could break it (pin single-threaded
        BLAS in such environments; cf. the ROI conv, which is excluded
        from batching for exactly this reason).
        """
        c = self.config
        if frames.ndim != 3:
            raise ValueError(f"expected (B, H, W) frames, got {frames.shape}")
        batch = frames.shape[0]
        tokens, valid = self._tokenize(frames, masks)
        counts = valid.sum(axis=1)
        p = c.patch
        gh, gw = c.height // p, c.width // p
        # Empty patches carry all-zero logits, so their argmax is class 0
        # (background) — exactly what a zero-initialized map encodes; only
        # kept tokens need their argmax computed and scattered.
        seg_tokens = np.zeros((batch, c.tokens, p * p), dtype=np.int64)
        for count in np.unique(counts):
            rows = np.nonzero(counts == count)[0]
            if count == 0:
                continue
            # (G, count) keep indices per frame in the group.
            keeps = np.stack([np.nonzero(valid[r])[0] for r in rows])
            x = (
                self.patch_embed(tokens[rows[:, None], keeps])
                + self.pos_embed.data[0][keeps]
            )
            for block in self.encoder:
                x = block(x)
            cls = np.broadcast_to(
                self.class_embed.data, (len(rows), c.num_classes, c.dim)
            ).copy()
            joint = np.concatenate([x, cls], axis=1)
            for block in self.decoder:
                joint = block(joint)
            packed = self.head(self.final_norm(joint[:, : int(count)]))
            # Per-token head layout is (pixel, class); argmax over classes
            # on the packed tokens only, then scatter the integer labels.
            labels = np.argmax(
                packed.reshape(len(rows), int(count), p * p, c.num_classes),
                axis=-1,
            )
            seg_tokens[rows[:, None], keeps] = labels
        return (
            seg_tokens.reshape(batch, gh, gw, p, p)
            .transpose(0, 1, 3, 2, 4)
            .reshape(batch, c.height, c.width)
        )

    # -- cost model ------------------------------------------------------------
    def mac_count(self, valid_tokens: int | None = None) -> int:
        """MACs for one frame; sparse inputs shrink the attention cost.

        ``valid_tokens`` is the number of patch tokens containing at least
        one sampled pixel; None means a dense frame (all tokens valid).
        """
        c = self.config
        t = c.tokens if valid_tokens is None else int(valid_tokens)
        total = t * self.patch_embed.in_features * self.patch_embed.out_features
        for block in self.encoder:
            total += block.mac_count(t)
        for block in self.decoder:
            total += block.mac_count(t + c.num_classes)
        total += t * self.head.in_features * self.head.out_features
        return total
