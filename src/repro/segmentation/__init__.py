"""Eye segmentation networks: the sparse-input ViT and CNN baselines."""

from repro.segmentation.edgaze import EdGazeNet
from repro.segmentation.metrics import (
    confusion_matrix,
    mean_iou,
    per_class_iou,
    pixel_accuracy,
)
from repro.segmentation.ritnet import RITNet
from repro.segmentation.vit import ViTConfig, ViTSegmenter

__all__ = [
    "ViTConfig",
    "ViTSegmenter",
    "RITNet",
    "EdGazeNet",
    "per_class_iou",
    "mean_iou",
    "pixel_accuracy",
    "confusion_matrix",
]
