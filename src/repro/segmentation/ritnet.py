"""RITnet-style encoder-decoder CNN baseline (Chaudhary et al. 2019).

A compact U-Net: two down-sampling stages with skip connections, a
bottleneck, and two up-sampling stages, ending in a 1x1 classifier.  This
is the dense-input CNN the paper compares against in Fig. 12 — its
accuracy collapses at high compression because convolutions rely on local
neighbourhoods that sparse sampling destroys (Sec. III-B).

The input is two channels (frame, sampling mask) so the same network can
be evaluated on dense and sparse inputs under identical conditions.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.synth.eye_model import NUM_CLASSES

__all__ = ["RITNet"]


class _ConvBlock(nn.Module):
    """conv -> BN -> ReLU, twice."""

    def __init__(self, cin: int, cout: int, rng: np.random.Generator):
        super().__init__()
        self.seq = nn.Sequential(
            nn.Conv2d(cin, cout, 3, rng, padding=1),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
            nn.Conv2d(cout, cout, 3, rng, padding=1),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.seq(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.seq.backward(grad)


class RITNet(nn.Module):
    """U-Net segmenter; logits returned as ``(B, H, W, K)``."""

    #: Training-mode batch norm couples rows through batch statistics,
    #: so the engine only batches ``predict_batch`` on eval-mode nets.
    predict_batch_requires_eval = True

    def __init__(
        self,
        rng: np.random.Generator,
        base_channels: int = 8,
        num_classes: int = NUM_CLASSES,
    ):
        super().__init__()
        c = base_channels
        self.num_classes = num_classes
        self.enc1 = _ConvBlock(2, c, rng)
        self.pool1 = nn.MaxPool2d(2)
        self.enc2 = _ConvBlock(c, 2 * c, rng)
        self.pool2 = nn.MaxPool2d(2)
        self.bottleneck = _ConvBlock(2 * c, 4 * c, rng)
        self.up2 = nn.UpsampleNearest2d(2)
        self.dec2 = _ConvBlock(4 * c + 2 * c, 2 * c, rng)
        self.up1 = nn.UpsampleNearest2d(2)
        self.dec1 = _ConvBlock(2 * c + c, c, rng)
        self.classifier = nn.Conv2d(c, num_classes, 1, rng)
        self._c = c

    @staticmethod
    def make_input(frame: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Stack (B, H, W) frame + mask into the (B, 2, H, W) network input."""
        return np.stack([frame, mask.astype(np.float64)], axis=1)

    def forward(self, frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
        x = self.make_input(frames, masks)
        s1 = self.enc1(x)
        s2 = self.enc2(self.pool1(s1))
        b = self.bottleneck(self.pool2(s2))
        u2 = self.up2(b)
        d2 = self.dec2(np.concatenate([u2, s2], axis=1))
        u1 = self.up1(d2)
        d1 = self.dec1(np.concatenate([u1, s1], axis=1))
        logits = self.classifier(d1)
        self._skip_channels = (u2.shape[1], u1.shape[1])
        return logits.transpose(0, 2, 3, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = grad.transpose(0, 3, 1, 2)
        grad = self.classifier.backward(grad)
        grad_cat1 = self.dec1.backward(grad)
        n_u1 = self._skip_channels[1]
        grad_u1, grad_s1_a = grad_cat1[:, :n_u1], grad_cat1[:, n_u1:]
        grad_d2 = self.up1.backward(grad_u1)
        grad_cat2 = self.dec2.backward(grad_d2)
        n_u2 = self._skip_channels[0]
        grad_u2, grad_s2_a = grad_cat2[:, :n_u2], grad_cat2[:, n_u2:]
        grad_b = self.up2.backward(grad_u2)
        grad_p2 = self.bottleneck.backward(grad_b)
        grad_s2 = self.pool2.backward(grad_p2) + grad_s2_a
        grad_p1 = self.enc2.backward(grad_s2)
        grad_s1 = self.pool1.backward(grad_p1) + grad_s1_a
        return self.enc1.backward(grad_s1)

    def predict(self, frame: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Single frame -> integer segmentation map."""
        logits = self.forward(frame[None], mask[None])
        return np.argmax(logits[0], axis=-1)

    def predict_batch(self, frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`predict` over ``(B, H, W)`` stacks, bitwise row-equal.

        Same contract as ``EdGazeNet.predict_batch``: the U-Net trunk is
        row-independent in eval mode (per-sample conv GEMMs, frozen batch
        norm, per-pixel argmax), so each row matches the per-frame call.
        Only valid on eval-mode networks.
        """
        return np.argmax(self.forward(frames, masks), axis=-1)

    def mac_count(self, height: int, width: int) -> int:
        """MACs for one dense frame (CNN cost does not shrink with sparsity)."""
        c = self._c
        total = 0
        shapes = [
            (self.enc1, height, width),
            (self.enc2, height // 2, width // 2),
            (self.bottleneck, height // 4, width // 4),
            (self.dec2, height // 2, width // 2),
            (self.dec1, height, width),
        ]
        for block, h, w in shapes:
            for layer in block.seq.modules:
                if isinstance(layer, nn.Conv2d):
                    total += layer.mac_count(h, w)
        total += self.classifier.mac_count(height, width)
        return total
