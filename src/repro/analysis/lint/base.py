"""Shared infrastructure of the determinism linter's rules.

Every rule is a class with a stable ``rule_id`` (``REPxxx``), a one-line
``title`` and a ``check(module)`` generator yielding
:class:`~repro.analysis.lint.findings.Finding`\\ s.  Rules operate on a
:class:`ParsedModule` — the file's source, its ``ast`` tree and a
resolved import map — and never import the code under analysis, so the
linter can check files that would fail to import (missing optional
deps, heavy side effects).

Import resolution is the piece every rule shares: ``np.random.rand`` and
``from numpy.random import rand`` must hit the same rule, so
:func:`resolve_call` normalizes a call's dotted name through the
module's import aliases before any rule matches on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.lint.findings import Finding

__all__ = [
    "ImportMap",
    "ParsedModule",
    "Rule",
    "base_name",
    "resolve_call",
    "resolve_name",
]


@dataclass
class ImportMap:
    """Local name -> canonical dotted path, from the module's imports.

    ``modules`` maps ``import x.y as z`` bindings (``z -> "x.y"``;
    plain ``import x.y`` binds ``x -> "x"``), ``names`` maps
    ``from x.y import f as g`` bindings (``g -> "x.y.f"``).
    """

    modules: dict[str, str] = field(default_factory=dict)
    names: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        imap = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imap.modules[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        imap.modules[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    # Relative imports resolve inside this package —
                    # never to ``numpy``/``time``/``random``, the only
                    # modules the rules match on.
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    imap.names[local] = f"{node.module}.{alias.name}"
        return imap


@dataclass
class ParsedModule:
    """One file, parsed once and shared by every rule."""

    path: Path
    #: Display path (repo-relative where possible) used in findings.
    rel: str
    source: str
    tree: ast.Module
    imports: ImportMap

    @classmethod
    def parse(cls, path: Path, rel: str, source: str) -> "ParsedModule":
        tree = ast.parse(source, filename=rel)
        return cls(
            path=path,
            rel=rel,
            source=source,
            tree=tree,
            imports=ImportMap.from_tree(tree),
        )


def resolve_name(node: ast.expr, imports: ImportMap) -> str | None:
    """The canonical dotted name of an attribute chain, or ``None``.

    ``np.random.default_rng`` resolves to
    ``"numpy.random.default_rng"`` when ``np`` aliases ``numpy``;
    chains rooted at anything that is not an imported module/name
    (locals, ``self``) resolve to ``None`` so rules skip them.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if root in imports.modules:
        head = imports.modules[root]
    elif root in imports.names:
        head = imports.names[root]
    else:
        return None
    return ".".join([head, *reversed(parts)])


def resolve_call(call: ast.Call, imports: ImportMap) -> str | None:
    """The canonical dotted name of a call's target, or ``None``."""
    return resolve_name(call.func, imports)


def base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of a ``Subscript``/``Attribute`` chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class Rule:
    """Base class: one hazard class, one stable ID."""

    #: Stable identifier (``REP101`` ...); suppression comments and the
    #: baseline key on it, so it must never be reused for a new meaning.
    rule_id: str = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    title: str = ""
    #: Why the hazard matters in this codebase (docs/linting.md carries
    #: the full rationale; this is the short form).
    rationale: str = ""

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )
