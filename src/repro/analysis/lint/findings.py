"""Finding and report records: the linter's one output shape.

A :class:`Finding` is one rule violation at one location; a
:class:`LintReport` is everything one ``repro lint`` invocation
produced, with the text and ``--json`` renderings the CLI, CI gate and
tests all consume.  The JSON record is versioned so downstream tooling
can detect shape changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Finding", "LintReport", "JSON_VERSION"]

#: Version of the ``--json`` record shape.
JSON_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file.

        Line/column are deliberately excluded: unrelated edits shift
        them, and a baseline that churns on every edit is a baseline
        nobody trusts.
        """
        return f"{self.rule}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Everything one lint run produced."""

    #: Unsuppressed, non-baselined findings — what gates CI.
    findings: list[Finding] = field(default_factory=list)
    #: Findings waived by an inline ``# repro: allow[...]`` comment.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline file (when one was given).
    baselined: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any unsuppressed finding remains (2 is
        the CLI's usage-error code and never originates here)."""
        return 0 if not self.findings else 1

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        n, m = len(self.findings), self.files_scanned
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} waived")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        tail = f" ({', '.join(extras)})" if extras else ""
        if not lines:
            return f"clean: 0 findings in {m} file(s){tail}"
        lines.append(f"{n} finding(s) in {m} file(s) scanned{tail}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": JSON_VERSION,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "files_scanned": self.files_scanned,
            "exit_code": self.exit_code,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"
