"""``repro.analysis.lint``: the determinism & cross-process-safety linter.

AST-based checks for the invariants every execution mode in this
repository is pinned against (see docs/linting.md for the catalog):

* **REP101** naked RNG calls outside the keyed-stream convention
* **REP102** wall-clock reads in deterministic modules
* **REP103** unpicklable callables at executor dispatch seams
* **REP104** float reductions over unordered operands
* **REP105** mutation of transport-resolved shared-memory payloads
* **REP106** ExperimentSpec fields outside validation/hash coverage

Exposed as ``repro lint [paths]`` in the CLI and run as a gating CI
step before the tier-1 suite.  Deliberate exceptions carry inline
``# repro: allow[RULE] <reason>`` waivers; the reason is mandatory.
"""

from repro.analysis.lint.base import ParsedModule, Rule
from repro.analysis.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.findings import JSON_VERSION, Finding, LintReport
from repro.analysis.lint.rules import ALL_RULES
from repro.analysis.lint.runner import (
    LintUsageError,
    collect_files,
    lint_source,
    main,
    run_lint,
)
from repro.analysis.lint.suppress import MALFORMED, collect_suppressions

__all__ = [
    "ALL_RULES",
    "Finding",
    "JSON_VERSION",
    "LintReport",
    "LintUsageError",
    "MALFORMED",
    "ParsedModule",
    "Rule",
    "apply_baseline",
    "collect_files",
    "collect_suppressions",
    "lint_source",
    "load_baseline",
    "main",
    "run_lint",
    "write_baseline",
]
