"""Inline suppressions: ``# repro: allow[RULE] <reason>``.

A waiver names the rule(s) it silences and **must carry a reason** —
the waiver policy (docs/linting.md) is that every deliberate exception
is reviewable at the point of use.  A reason-less ``allow`` suppresses
nothing and is itself reported as a :data:`MALFORMED` finding, so a
lazy waiver cannot slip a hazard past the CI gate.

Placement: a trailing comment waives its own line; a comment alone on a
line waives the next line (for sites too long to annotate in place).
"""

from __future__ import annotations

import re

from repro.analysis.lint.findings import Finding

__all__ = ["MALFORMED", "Suppressions", "collect_suppressions"]

#: Pseudo-rule reported for a suppression comment without a reason.
MALFORMED = "REP000"

_ALLOW = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<reason>.*)$"
)


class Suppressions:
    """Which rules are waived on which lines of one file."""

    def __init__(self) -> None:
        #: line number -> set of waived rule IDs on that line.
        self._by_line: dict[int, set[str]] = {}
        #: Reason-less ``allow`` comments, reported as findings.
        self.malformed: list[Finding] = []
        #: ``(line, rule)`` pairs that actually waived a finding, for
        #: unused-waiver reporting.
        self.used: set[tuple[int, str]] = set()

    def add(self, line: int, rules: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rules)

    def waives(self, line: int, rule: str) -> bool:
        if rule in self._by_line.get(line, ()):
            self.used.add((line, rule))
            return True
        return False


def collect_suppressions(path: str, source: str) -> Suppressions:
    """Parse one file's ``allow`` comments.

    Works line-wise on the raw source: suppression comments are part of
    the lint surface even in files whose AST the rules inspect, and a
    regex over each line is robust to code the tokenizer would reject.
    Lines whose only content is the comment extend the waiver to the
    following line.
    """
    sup = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW.search(text)
        if not match:
            continue
        rules = {
            r.strip() for r in match.group("rules").split(",") if r.strip()
        }
        reason = match.group("reason").strip().lstrip("-—:").strip()
        if not reason:
            sup.malformed.append(
                Finding(
                    rule=MALFORMED,
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    message=(
                        "suppression without a reason — write "
                        "`# repro: allow[RULE] <why this site is exempt>`"
                    ),
                )
            )
            continue
        sup.add(lineno, rules)
        if text[: match.start()].strip() == "":
            # Standalone comment line: the waiver targets the next line.
            sup.add(lineno + 1, rules)
    return sup
