"""Baseline files: adopt the linter on a tree with known findings.

A baseline records the *fingerprints* (rule + path + message, no line
numbers) of currently-accepted findings so new hazards gate CI while
the recorded debt is paid down incrementally.  This repository runs at
a zero baseline — the file support exists for downstream forks and for
the documented adoption path.

Fingerprints are counted, not just set-membership: two identical
hazards in one file need two baseline entries, so fixing one of them
is visible.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.lint.findings import Finding

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

_VERSION = 1


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    counts = Counter(f.fingerprint for f in findings)
    record = {
        "version": _VERSION,
        "fingerprints": {fp: counts[fp] for fp in sorted(counts)},
    }
    Path(path).write_text(json.dumps(record, indent=2) + "\n")


def load_baseline(path: str | Path) -> Counter:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path}: not a lint baseline file")
    if data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    fingerprints = data["fingerprints"]
    if not isinstance(fingerprints, dict):
        raise ValueError(f"{path}: 'fingerprints' must be an object")
    return Counter({str(k): int(v) for k, v in fingerprints.items()})


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (fresh, absorbed-by-baseline).

    Findings are consumed in report order; a fingerprint with count N
    absorbs the first N matching findings and any further occurrences
    stay live.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    absorbed: list[Finding] = []
    for finding in findings:
        if remaining[finding.fingerprint] > 0:
            remaining[finding.fingerprint] -= 1
            absorbed.append(finding)
        else:
            fresh.append(finding)
    return fresh, absorbed
