"""The lint runner: collect files, apply rules, render the report.

``run_lint(paths)`` is the library entry (the self-check test and any
programmatic caller), ``lint_source(source)`` lints one in-memory
snippet (the fixture tests), and ``main(argv)`` is the CLI behind
``repro lint`` with the documented exit-code convention:

* **0** — clean (no unsuppressed, non-baselined findings)
* **1** — findings
* **2** — usage error (missing path, unreadable baseline, bad flags)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.lint.base import ParsedModule, Rule
from repro.analysis.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.findings import Finding, LintReport
from repro.analysis.lint.rules import ALL_RULES
from repro.analysis.lint.suppress import collect_suppressions

__all__ = ["LintUsageError", "collect_files", "lint_source", "main", "run_lint"]


class LintUsageError(ValueError):
    """Bad invocation (exit code 2), as opposed to findings (exit 1)."""


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps report order (and baseline consumption
    order) independent of filesystem enumeration — the linter holds
    itself to its own REP104 discipline.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    seen: set[Path] = set()
    unique = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _lint_module(
    module: ParsedModule, rules: tuple[Rule, ...]
) -> tuple[list[Finding], list[Finding]]:
    """(live, suppressed) findings of one parsed module."""
    sup = collect_suppressions(module.rel, module.source)
    live: list[Finding] = list(sup.malformed)
    suppressed: list[Finding] = []
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(module))
    for finding in raw:
        if sup.waives(finding.line, finding.rule):
            suppressed.append(finding)
        else:
            live.append(finding)
    live.sort(key=lambda f: (f.line, f.col, f.rule))
    return live, suppressed


def lint_source(
    source: str,
    filename: str = "<memory>",
    rules: tuple[Rule, ...] = ALL_RULES,
) -> list[Finding]:
    """Lint one in-memory snippet; returns unsuppressed findings."""
    module = ParsedModule.parse(Path(filename), filename, source)
    live, _ = _lint_module(module, rules)
    return live


def run_lint(
    paths: list[str | Path],
    rules: tuple[Rule, ...] = ALL_RULES,
    baseline: str | Path | None = None,
) -> LintReport:
    """Lint files/directories and return the full report."""
    report = LintReport()
    findings: list[Finding] = []
    for path in collect_files(paths):
        try:
            source = path.read_text()
            module = ParsedModule.parse(path, str(path), source)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    rule="REP000",
                    path=str(path),
                    line=1,
                    col=1,
                    message=f"cannot lint file: {exc}",
                )
            )
            report.files_scanned += 1
            continue
        live, suppressed = _lint_module(module, rules)
        findings.extend(live)
        report.suppressed.extend(suppressed)
        report.files_scanned += 1
    if baseline is not None:
        try:
            known = load_baseline(baseline)
        except (OSError, ValueError) as exc:
            raise LintUsageError(f"baseline: {exc}") from exc
        findings, absorbed = apply_baseline(findings, known)
        report.baselined.extend(absorbed)
    report.findings = findings
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static determinism & cross-process-safety checks "
            "(REP101-REP108; see docs/linting.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the machine-readable findings record ('-' = stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="ignore findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors already; normalize --help's 0.
        return int(exc.code or 0)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    try:
        report = run_lint(args.paths, baseline=args.baseline)
    except LintUsageError as exc:
        print(f"lint usage error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"baseline: recorded {len(report.findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0
    if args.json == "-":
        print(report.to_json(), end="")
    else:
        print(report.render_text())
        if args.json:
            Path(args.json).write_text(report.to_json())
    return report.exit_code
