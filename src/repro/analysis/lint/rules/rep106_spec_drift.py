"""REP106: spec drift — ExperimentSpec fields outside validation/hash coverage.

The spec is the unit of provenance: ``spec_hash``/``section_hash``
digest ``to_dict()``, which enumerates ``_SECTIONS``, and ``validate()``
names every bad field eagerly.  Two drift hazards when a field is
added:

* a new **section** on ``ExperimentSpec`` that never lands in
  ``_SECTIONS`` is silently dropped from ``to_dict()`` — two specs
  differing only in that section hash identically, so the session memo
  replays the wrong cached pipeline;
* a new **field** that ``validate()`` never checks ships bad values
  into the run, failing far from the spec boundary with no field name
  (e.g. a negative seed detonating inside ``default_rng``).

Coverage is judged statically: a field is validated when ``validate()``
either reads the attribute or names its dotted path
(``"dataset.seed"``) in a string.  ``bool``-typed fields are exempt —
type coercion at the spec boundary is their full validation — and
nested dataclass fields recurse into their own sections.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule
from repro.analysis.lint.findings import Finding

__all__ = ["SpecDriftRule"]

_SPEC_CLASS = "ExperimentSpec"
_SECTIONS_NAME = "_SECTIONS"
_VALIDATE = "validate"
_BOOL = re.compile(r"\bbool\b")


def _class_fields(cls: ast.ClassDef) -> list[tuple[str, str, int]]:
    """(name, annotation-source, line) of each dataclass field."""
    out = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            out.append(
                (stmt.target.id, ast.unparse(stmt.annotation), stmt.lineno)
            )
    return out


class SpecDriftRule(Rule):
    rule_id = "REP106"
    title = "ExperimentSpec field outside validation or hash coverage"
    rationale = (
        "Spec fields must be enumerated by _SECTIONS (hash/provenance "
        "coverage) and checked in validate() (errors name the field at "
        "the boundary instead of detonating mid-run)."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        spec = classes.get(_SPEC_CLASS)
        if spec is None:
            return
        sections = self._sections_map(module.tree)
        attrs, strings = self._validate_surface(spec)

        # Hash coverage: every section field of ExperimentSpec must be a
        # _SECTIONS key, or to_dict()/spec_hash() silently drops it.
        if sections is not None:
            for name, annotation, lineno in _class_fields(spec):
                if name == "workload" or annotation not in classes:
                    continue
                if name not in sections:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=lineno,
                        col=1,
                        message=(
                            f"section field {name!r} is missing from "
                            f"{_SECTIONS_NAME} — to_dict()/spec_hash() will "
                            "silently drop it and provenance/memo keys go "
                            "blind to it"
                        ),
                    )

        # Validation coverage, recursing through nested sections.
        section_items = (
            sections.items()
            if sections is not None
            else []
        )
        for key, class_name in section_items:
            cls = classes.get(class_name)
            if cls is not None:
                yield from self._check_section(
                    module, classes, cls, key, attrs, strings
                )

    def _check_section(
        self,
        module: ParsedModule,
        classes: dict[str, ast.ClassDef],
        cls: ast.ClassDef,
        path: str,
        attrs: set[str],
        strings: list[str],
    ) -> Iterator[Finding]:
        for name, annotation, lineno in _class_fields(cls):
            dotted = f"{path}.{name}"
            if annotation in classes:
                yield from self._check_section(
                    module, classes, classes[annotation], dotted, attrs,
                    strings,
                )
                continue
            if _BOOL.search(annotation):
                # Type coercion at the spec boundary fully validates a
                # bool; there is no range to check.
                continue
            covered = name in attrs or any(dotted in s for s in strings)
            if not covered:
                yield Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=lineno,
                    col=1,
                    message=(
                        f"spec field {dotted!r} is never checked in "
                        f"{_SPEC_CLASS}.{_VALIDATE}() — bad values will "
                        "fail far from the spec boundary without naming "
                        "the field"
                    ),
                )

    @staticmethod
    def _sections_map(tree: ast.Module) -> dict[str, str] | None:
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == _SECTIONS_NAME
                and isinstance(node.value, ast.Dict)
            ):
                out = {}
                for key, value in zip(node.value.keys, node.value.values):
                    if isinstance(key, ast.Constant) and isinstance(
                        value, ast.Name
                    ):
                        out[str(key.value)] = value.id
                return out
        return None

    @staticmethod
    def _validate_surface(
        spec: ast.ClassDef,
    ) -> tuple[set[str], list[str]]:
        """Attribute names read and strings mentioned in validate()."""
        attrs: set[str] = set()
        strings: list[str] = []
        for stmt in spec.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == _VALIDATE
            ):
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Attribute):
                        attrs.add(node.attr)
                    elif isinstance(node, ast.Constant) and isinstance(
                        node.value, str
                    ):
                        strings.append(node.value)
        return attrs, strings
