"""REP105: mutation of transport-resolved shared-memory payloads.

Worker functions receive their inputs through the transport layer:
``resolve_payload(handle)`` rebuilds a payload around **read-only**
views over shared-memory segments, and ``worker_cached(key, factory)``
returns an object *shared by every later dispatch in the process*.
Writing into either corrupts state that outlives the call — other
shards see the write, or the cached object silently diverges from a
fresh build.  The transport makes shm views raise at runtime (PR 6);
this rule catches the same hazard statically, including the pickle
fallback path where nothing raises.

The analysis is intra-function dataflow: names assigned from a resolve
call (or aliased from one through plain attribute/subscript access) are
tainted; ``+=``, item/slice assignment, ``out=`` arguments and known
in-place methods (``.fill``, ``.sort``, ...) on tainted names are
findings.  Taking an explicit ``.copy()`` produces an untainted value —
that is the sanctioned way to get a writable buffer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule, base_name, resolve_call
from repro.analysis.lint.findings import Finding

__all__ = ["SharedMutationRule"]

#: Call names whose results are shared/read-only (matched on the leaf,
#: so both ``resolve_payload(...)`` and ``transport.resolve_payload``
#: forms hit).
_TAINT_SOURCES = {"resolve_payload", "worker_cached"}
#: ndarray/list methods that mutate their receiver in place.
_MUTATING_METHODS = {
    "fill",
    "sort",
    "put",
    "partition",
    "setfield",
    "setflags",
    "itemset",
    "append",
    "extend",
    "insert",
    "pop",
    "remove",
    "clear",
    "update",
}


def _leaf(call: ast.Call, module: ParsedModule) -> str | None:
    name = resolve_call(call, module.imports)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_taint_source(node: ast.expr, module: ParsedModule) -> bool:
    return (
        isinstance(node, ast.Call)
        and _leaf(node, module) in _TAINT_SOURCES
    )


def _aliases_taint(node: ast.expr, tainted: set[str]) -> bool:
    """Plain Name/Attribute/Subscript access of a tainted name (views
    share the underlying read-only buffer; a Call like ``x.copy()``
    yields a fresh object and is deliberately *not* an alias)."""
    if isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)):
        name = base_name(node)
        return name is not None and name in tainted
    if isinstance(node, ast.Tuple):
        return any(_aliases_taint(el, tainted) for el in node.elts)
    return False


class SharedMutationRule(Rule):
    rule_id = "REP105"
    title = "in-place write to a transport-resolved payload"
    rationale = (
        "resolve_payload views are read-only shared memory and "
        "worker_cached objects are shared across dispatches; mutating "
        "either corrupts state beyond the current call — copy first."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ParsedModule, func: ast.AST
    ) -> Iterator[Finding]:
        tainted: set[str] = set()
        yield from self._walk_body(module, func.body, tainted)

    def _walk_body(
        self, module: ParsedModule, body: list, tainted: set[str]
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._walk_stmt(module, stmt, tainted)

    def _walk_stmt(
        self, module: ParsedModule, stmt: ast.stmt, tainted: set[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            yield from self._check_calls(module, stmt, tainted)
            taints = _is_taint_source(
                stmt.value, module
            ) or _aliases_taint(stmt.value, tainted)
            for target in stmt.targets:
                yield from self._assign_target(module, target, taints, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            yield from self._check_calls(module, stmt, tainted)
            taints = _is_taint_source(
                stmt.value, module
            ) or _aliases_taint(stmt.value, tainted)
            yield from self._assign_target(module, stmt.target, taints, tainted)
        elif isinstance(stmt, ast.AugAssign):
            yield from self._check_calls(module, stmt, tainted)
            name = base_name(stmt.target)
            if name in tainted:
                yield self.finding(
                    module,
                    stmt,
                    f"augmented assignment mutates {name!r}, which came "
                    "from a transport resolve — take .copy() before "
                    "writing",
                )
        else:
            yield from self._check_calls(module, stmt, tainted)
            # Recurse into compound statements in source order; taint
            # added inside a branch conservatively survives it.
            for field_body in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_body, None)
                if inner:
                    yield from self._walk_body(module, inner, tainted)
            for handler in getattr(stmt, "handlers", []):
                yield from self._walk_body(module, handler.body, tainted)

    def _assign_target(
        self,
        module: ParsedModule,
        target: ast.expr,
        taints: bool,
        tainted: set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Name):
            if taints:
                tainted.add(target.id)
            else:
                tainted.discard(target.id)
        elif isinstance(target, ast.Tuple):
            for el in target.elts:
                yield from self._assign_target(module, el, taints, tainted)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            name = base_name(target)
            if name in tainted and isinstance(target, ast.Subscript):
                yield self.finding(
                    module,
                    target,
                    f"item assignment into {name!r}, which came from a "
                    "transport resolve — resolved arrays are read-only "
                    "shared views; take .copy() before writing",
                )

    def _check_calls(
        self, module: ParsedModule, stmt: ast.stmt, tainted: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "out" and _aliases_taint(kw.value, tainted):
                    yield self.finding(
                        module,
                        node,
                        "out= targets a transport-resolved array — "
                        "resolved views are read-only shared memory; "
                        "allocate the output instead",
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                name = base_name(node.func.value)
                if name is not None and name in tainted:
                    yield self.finding(
                        module,
                        node,
                        f"in-place .{node.func.attr}() on {name!r}, which "
                        "came from a transport resolve — copy before "
                        "mutating",
                    )
