"""REP102: wall-clock reads inside deterministic modules.

Everything this repository reports — accuracy, telemetry percentiles,
loss trajectories — is pinned bitwise against a scalar reference, so no
deterministic path may read the host's clock (``time.time``,
``perf_counter``, ``datetime.now``): serve latencies are *virtual*-clock
ticks, schedules are spec-driven, and RNG keys are integers.  The only
sanctioned readers are the timing-measurement seams whose entire job is
measuring wall time (``measure_throughput``'s best-of-N loops, the
engine's per-stage attribution, the serve runtime's ``wall_seconds``) —
each carries an inline ``# repro: allow[REP102] <reason>`` waiver, which
is the rule's whitelist.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule, resolve_call
from repro.analysis.lint.findings import Finding

__all__ = ["WallClockRule"]

_WALL_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    rule_id = "REP102"
    title = "wall-clock read in a deterministic path"
    rationale = (
        "Deterministic outputs are pinned bitwise and may not depend on "
        "the host clock; only timing-measurement seams may read it, each "
        "under an inline reasoned waiver."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.imports)
            if name in _WALL_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {name}() in a deterministic module — "
                    "deterministic outputs may not depend on the host "
                    "clock; timing-measurement seams carry "
                    "`# repro: allow[REP102] <reason>`",
                )
