"""REP104: float reductions over unordered operands.

Float addition does not associate: summing the same values in a
different order changes the low bits, and the low bits are exactly what
this repository pins (PR 4's serving telemetry mandates "all reductions
over sorted operands" so sharded-replica merges summarize
byte-identically).  The rule flags the three shapes that smuggle an
undefined order into a reduction:

* ``sum()``/``math.fsum()``/``functools.reduce()`` over ``set`` values
  or ``dict`` iteration (``.values()``/``.keys()``/``.items()``) —
  fix by reducing over ``sorted(...)``;
* filesystem-order iteration (``glob.glob``, ``Path.glob``/``rglob``,
  ``os.listdir``/``scandir``, ``Path.iterdir``) not wrapped directly in
  ``sorted(...)`` — directory order is host-dependent *anywhere* it
  flows, so this shape is flagged unconditionally;
* accumulation loops (``for x in <unordered>:`` with ``+=``/``-=`` in
  the body) — the spelled-out form of the first shape.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule, resolve_call
from repro.analysis.lint.findings import Finding

__all__ = ["UnorderedReductionRule"]

_DICT_ITER = {"values", "keys", "items"}
_FS_METHODS = {"glob", "rglob", "iterdir", "scandir"}
_FS_CALLS = {"glob.glob", "glob.iglob", "os.listdir", "os.scandir"}
_REDUCERS = {"sum", "math.fsum", "functools.reduce"}


def _is_unordered(node: ast.expr) -> str | None:
    """A short label when ``node`` iterates in undefined/unsorted order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        for comp in node.generators:
            label = _is_unordered(comp.iter)
            if label:
                return label
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "set":
            return "a set"
        if isinstance(func, ast.Attribute) and func.attr in _DICT_ITER:
            return f"dict .{func.attr}()"
        if isinstance(func, ast.Attribute) and func.attr in _FS_METHODS:
            return f".{func.attr}() filesystem order"
    return None


class UnorderedReductionRule(Rule):
    rule_id = "REP104"
    title = "float reduction over unordered operands"
    rationale = (
        "Float sums are order-dependent in the low bits; reductions over "
        "set/dict iteration or filesystem order must run over sorted "
        "operands to stay bitwise-reproducible across merges and hosts."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_reduction(module, node)
                yield from self._check_filesystem(module, node, parents)
            elif isinstance(node, ast.For):
                yield from self._check_loop(module, node)

    def _check_reduction(
        self, module: ParsedModule, call: ast.Call
    ) -> Iterator[Finding]:
        if isinstance(call.func, ast.Name) and call.func.id == "sum":
            reducer, operand_index = "sum", 0
        else:
            name = resolve_call(call, module.imports)
            if name not in _REDUCERS:
                return
            reducer = name
            operand_index = 1 if name == "functools.reduce" else 0
        if len(call.args) <= operand_index:
            return
        label = _is_unordered(call.args[operand_index])
        if label:
            yield self.finding(
                module,
                call,
                f"{reducer}() over {label} reduces floats in undefined "
                "order — reduce over sorted(...) operands",
            )

    def _check_filesystem(
        self,
        module: ParsedModule,
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        name = resolve_call(call, module.imports)
        if name in _FS_CALLS:
            what = name
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FS_METHODS
        ):
            what = f".{call.func.attr}()"
        else:
            return
        parent = parents.get(call)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        ):
            return
        yield self.finding(
            module,
            call,
            f"{what} yields host-dependent filesystem order — wrap it "
            "directly in sorted(...)",
        )

    def _check_loop(
        self, module: ParsedModule, loop: ast.For
    ) -> Iterator[Finding]:
        label = _is_unordered(loop.iter)
        if not label:
            return
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield self.finding(
                    module,
                    loop,
                    f"accumulation loop over {label} reduces in undefined "
                    "order — iterate sorted(...) operands",
                )
                return
