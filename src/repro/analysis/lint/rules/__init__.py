"""The rule registry: one instance of every shipped rule.

Rules are ordered by ID; the runner applies all of them to every file.
Adding a rule = adding a module here and registering its instance, with
a catalog entry in docs/linting.md and fixture tests in
``tests/analysis/``.
"""

from __future__ import annotations

from repro.analysis.lint.rules.rep101_rng import NakedRNGRule
from repro.analysis.lint.rules.rep102_wallclock import WallClockRule
from repro.analysis.lint.rules.rep103_shard_jobs import ShardJobRule
from repro.analysis.lint.rules.rep104_reductions import UnorderedReductionRule
from repro.analysis.lint.rules.rep105_shared_mutation import SharedMutationRule
from repro.analysis.lint.rules.rep106_spec_drift import SpecDriftRule
from repro.analysis.lint.rules.rep107_store_keys import StoreKeyRule
from repro.analysis.lint.rules.rep108_obs_plane import ObsPlaneRule

__all__ = ["ALL_RULES"]

ALL_RULES = (
    NakedRNGRule(),
    WallClockRule(),
    ShardJobRule(),
    UnorderedReductionRule(),
    SharedMutationRule(),
    SpecDriftRule(),
    StoreKeyRule(),
    ObsPlaneRule(),
)
