"""REP103: unpicklable shard jobs at executor dispatch seams.

Every cross-process dispatch in this repository (``executor.submit``,
``pool.map``) must ship a **module-level callable**: lambdas and nested
``def``\\ s do not pickle, and ``self.method`` drags the whole instance
across the pipe.  PR 2 converted the engine's closures to plain classes
for exactly this reason, and every worker entry point since
(``_execute_shard_handles``, ``_epoch_shard_job``, ``_serve_partition``)
is a module-level function by convention.  The failure is especially
treacherous because the in-process ``workers=1`` path never exercises
pickling — the bug only detonates on a sharded host.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule
from repro.analysis.lint.findings import Finding

__all__ = ["ShardJobRule"]

#: Receiver-name fragments that make a ``.map`` call a pool dispatch
#: (``.submit`` is distinctive on its own; ``.map`` is not).
_POOLISH = ("executor", "pool")


def _receiver_text(func: ast.Attribute) -> str:
    node = func.value
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _local_callables(func_node: ast.AST) -> set[str]:
    """Names bound to nested defs/lambdas/classes inside one function."""
    local: set[str] = set()
    for node in ast.walk(func_node):
        if node is func_node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Lambda
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
    return local


class ShardJobRule(Rule):
    rule_id = "REP103"
    title = "unpicklable callable at an executor dispatch seam"
    rationale = (
        "Cross-process jobs must be module-level callables; lambdas, "
        "nested defs and bound methods fail to pickle only when sharding "
        "is actually on, which CI's workers=1 paths never exercise."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for func_node in ast.walk(module.tree):
            if not isinstance(
                func_node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            local = _local_callables(func_node)
            for node in ast.walk(func_node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                if attr == "submit":
                    pass
                elif attr == "map" and any(
                    hint in _receiver_text(node.func) for hint in _POOLISH
                ):
                    pass
                else:
                    continue
                if not node.args:
                    continue
                yield from self._check_job(module, node.args[0], attr, local)

    def _check_job(
        self, module: ParsedModule, job: ast.expr, seam: str, local: set[str]
    ) -> Iterator[Finding]:
        if isinstance(job, ast.Lambda):
            yield self.finding(
                module,
                job,
                f"lambda passed to .{seam}() cannot pickle to a worker "
                "process — move the job to a module-level function",
            )
        elif isinstance(job, ast.Name) and job.id in local:
            yield self.finding(
                module,
                job,
                f"nested callable {job.id!r} passed to .{seam}() cannot "
                "pickle to a worker process — hoist it to module level",
            )
        elif isinstance(job, ast.Attribute):
            base = job.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                yield self.finding(
                    module,
                    job,
                    f"bound method {base.id}.{job.attr} passed to "
                    f".{seam}() ships the whole instance with every "
                    "dispatch — use a module-level function taking "
                    "explicit arguments",
                )
        elif isinstance(job, ast.Call):
            # functools.partial(fn, ...): check the wrapped callable.
            if job.args:
                yield from self._check_job(module, job.args[0], seam, local)
