"""REP108: observability-plane discipline in ``repro.obs``.

The tracing layer promises a *deterministic plane* — span names,
hierarchy, counters — that is byte-identical across runs, with every
wall-clock read confined to the single declared seam
(``repro/obs/wall.py``).  Two hazards quietly break that promise:

1. A wall-clock read anywhere else under ``repro/obs/`` smuggles
   nondeterminism into code that the rest of the stack trusts to be
   replay-stable.  REP102 would accept such a read behind an inline
   waiver; inside the obs package the stricter rule applies — the
   *only* sanctioned site is ``wall.py``, so the read must move there.
2. A shard/worker entry point that grabs the ambient tracer
   (``current_tracer``/``install_tracer``) emits spans into a tracer
   that does not exist in the child process — the spans silently
   vanish, or worse, land on a fork-inherited tracer and double-count.
   Cross-process spans must travel the spooled merge path
   (``repro.obs.spool.capture_job`` in the worker, ``drain_spans`` on
   the submit side), which is what ``_file_queue_worker`` does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule, resolve_call
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.rules.rep102_wallclock import _WALL_CALLS

__all__ = ["ObsPlaneRule"]

#: The one module under ``repro/obs/`` allowed to read the host clock.
_WALL_SEAM = "wall.py"

#: Ambient-tracer accessors that must not appear in worker entry points
#: (canonical dotted paths, covering both the ``repro.obs`` re-exports
#: and the defining module).
_AMBIENT_CALLS = {
    "repro.obs.current_tracer",
    "repro.obs.install_tracer",
    "repro.obs.tracer.current_tracer",
    "repro.obs.tracer.install_tracer",
}

#: Worker/shard entry-point naming conventions (see REP103's catalog of
#: the repository's cross-process seams).
_WORKER_SUFFIXES = ("_worker", "_handles", "_shard_job")
_WORKER_PREFIXES = ("_execute_shard", "_serve_partition", "_epoch_shard")


def _is_obs_module(module: ParsedModule) -> bool:
    rel = module.rel.replace("\\", "/")
    return "repro/obs/" in rel


def _is_worker_entry(name: str) -> bool:
    return name.endswith(_WORKER_SUFFIXES) or name.startswith(
        _WORKER_PREFIXES
    )


class ObsPlaneRule(Rule):
    rule_id = "REP108"
    title = "observability-plane violation (wall seam / ambient tracer)"
    rationale = (
        "The trace's deterministic plane is byte-pinned: wall-clock "
        "reads in repro.obs belong only in wall.py, and worker entry "
        "points must spool spans through capture_job, never touch the "
        "ambient tracer of a process they do not own."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._check_wall_seam(module)
        yield from self._check_worker_ambient(module)

    def _check_wall_seam(self, module: ParsedModule) -> Iterator[Finding]:
        if not _is_obs_module(module):
            return
        rel = module.rel.replace("\\", "/")
        if rel.endswith(f"/{_WALL_SEAM}") or rel == _WALL_SEAM:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.imports)
            if name in _WALL_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {name}() inside repro.obs but "
                    f"outside {_WALL_SEAM} — the wall plane has exactly "
                    "one clock seam; route the read through "
                    "repro.obs.wall",
                )

    def _check_worker_ambient(
        self, module: ParsedModule
    ) -> Iterator[Finding]:
        for func_node in ast.iter_child_nodes(module.tree):
            if not isinstance(
                func_node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not _is_worker_entry(func_node.name):
                continue
            for node in ast.walk(func_node):
                if not isinstance(node, ast.Call):
                    continue
                name = resolve_call(node, module.imports)
                if name in _AMBIENT_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"{name.rsplit('.', 1)[1]}() inside worker entry "
                        f"point {func_node.name!r} bypasses the spooled "
                        "merge path — worker spans must go through "
                        "repro.obs.spool.capture_job so the submit side "
                        "can drain and re-parent them",
                    )
