"""REP101: naked RNG calls outside the keyed-stream convention.

Every random draw in this repository flows from an explicitly-keyed
``numpy.random.default_rng([seed, tag, ...])`` stream (per-sequence
sensor spawns, per-sample training streams, per-client serve streams).
Module-level draws (``np.random.rand``), global seeding
(``np.random.seed``) and the stdlib ``random`` module all read hidden
process-global state — results then depend on call *order*, which every
batched/sharded/serving mode reorders, breaking the bitwise pins.  An
un-keyed ``default_rng()`` seeds from the OS entropy pool: different
bits every run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule, resolve_call
from repro.analysis.lint.findings import Finding

__all__ = ["NakedRNGRule"]

#: numpy.random entry points that *construct keyed streams* — sanctioned
#: when (and only when) given an explicit seed/key argument.
_KEYED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _unkeyed(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return True
    if (
        len(call.args) == 1
        and isinstance(call.args[0], ast.Constant)
        and call.args[0].value is None
    ):
        return True
    return False


class NakedRNGRule(Rule):
    rule_id = "REP101"
    title = "naked RNG call outside the keyed-stream convention"
    rationale = (
        "Hidden global RNG state makes results depend on call order, "
        "which batching/sharding/serving reorder; draws must come from "
        "np.random.default_rng([seed, tag, ...]) streams."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.imports)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                leaf = name.rsplit(".", 1)[1]
                if leaf in _KEYED_CONSTRUCTORS:
                    if _unkeyed(node):
                        yield self.finding(
                            module,
                            node,
                            f"un-keyed numpy.random.{leaf}() seeds from OS "
                            "entropy — key the stream explicitly, e.g. "
                            "default_rng([seed, stream_tag, index])",
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"naked numpy.random.{leaf}() uses hidden global RNG "
                        "state — draw from an explicitly keyed "
                        "default_rng([seed, ...]) stream instead",
                    )
            elif name == "random" or name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"stdlib {name}() uses process-global RNG state outside "
                    "the keyed numpy stream convention — use "
                    "default_rng([seed, ...])",
                )
