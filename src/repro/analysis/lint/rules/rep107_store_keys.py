"""REP107: identity-derived artifact-store keys.

The artifact store's entire resume guarantee is that a *different
process* re-derives the *same* key from the same spec: keys must be
built from content hashes (``spec_hash``/``section_hash``, transport
digests), registry names and plain scalars.  ``repr()``/``str()`` of a
live object bakes in whatever the object's repr happens to include —
often a memory address (``<Pipeline object at 0x7f...>``) and always an
unstable rendering — and ``id()``/``hash()`` are process identity by
definition.  A store keyed that way *works* in the process that wrote
it and silently never hits again after a restart: the cache reports
misses, everything retrains, and the resume pin quietly becomes a
full re-run.  This rule flags identity-derived expressions inside the
key argument of store/key seams (``store.put/get/contains/remove``,
``store_digest``, ``canonical_key``, ``digest_for``) so the bug is a
lint finding, not a mystery cold cache.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.base import ParsedModule, Rule
from repro.analysis.lint.findings import Finding

__all__ = ["StoreKeyRule"]

#: Method names that take a store key as their first argument when
#: called on a store-ish receiver.
_STORE_METHODS = ("put", "get", "contains", "remove", "digest_for")

#: Module-level key functions (matched by name — they are this repo's
#: own ``repro.store`` seams, imported directly).
_KEY_FUNCTIONS = ("store_digest", "canonical_key")

#: Receiver-name fragments that make a method call a store seam
#: (mirrors REP103's ``executor``/``pool`` convention).
_STOREISH = ("store",)

#: Identity-deriving builtins: never valid inside a store key.
_IDENTITY_CALLS = ("repr", "id", "hash")


def _receiver_text(func: ast.Attribute) -> str:
    node = func.value
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _key_argument(node: ast.Call) -> ast.expr | None:
    """The key expression of a store-seam call, positional or ``key=``."""
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "key":
            return kw.value
    return None


class StoreKeyRule(Rule):
    rule_id = "REP107"
    title = "identity-derived artifact-store key"
    rationale = (
        "Store keys must be re-derivable by a restarted process: build "
        "them from spec_hash/section_hash/transport digests, registry "
        "names and scalars — repr()/str() of live objects and "
        "id()/hash() encode process identity and turn every resume "
        "into a silent cold cache."
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr not in _STORE_METHODS:
                    continue
                receiver = _receiver_text(func)
                if not any(hint in receiver for hint in _STOREISH):
                    continue
            elif isinstance(func, ast.Name):
                if func.id not in _KEY_FUNCTIONS:
                    continue
            else:
                continue
            key = _key_argument(node)
            if key is not None:
                yield from self._check_key(module, key)

    def _check_key(
        self, module: ParsedModule, key: ast.expr
    ) -> Iterator[Finding]:
        for node in ast.walk(key):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                name = node.func.id
                if name in _IDENTITY_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"store key built from {name}() — {name}() encodes "
                        "process identity; derive the key from "
                        "spec_hash/section_hash/transport digests instead",
                    )
                elif name == "str" and node.args and not isinstance(
                    node.args[0], ast.Constant
                ):
                    yield self.finding(
                        module,
                        node,
                        "store key built from str(<object>) — object "
                        "renderings are not stable across processes; use "
                        "the object's content hash (spec_hash/"
                        "section_hash/transport digest) or a registry "
                        "name instead",
                    )
            elif (
                isinstance(node, ast.FormattedValue)
                and node.conversion == ord("r")
            ):
                yield self.finding(
                    module,
                    node,
                    "store key built from an f-string !r conversion — "
                    "repr() encodes process identity; derive the key "
                    "from content hashes or registry names instead",
                )
