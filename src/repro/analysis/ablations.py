"""Ablation studies of BlissCam's design choices (DESIGN.md §4 extras).

Each function is a self-contained experiment runner returning plain
records, shared between the ablation benchmarks and interactive use:

* :func:`sigma_sensitivity` — the eventification threshold (the paper
  fixes sigma = 15/255 "empirically"; this sweep shows the trade-off it
  sits on: low sigma fires on shot noise, high sigma misses slow motion);
* :func:`normalization_ablation` — plain |dF| thresholding vs the
  event-camera normalized dF/F (Sec. VII: normalization complicates the
  analog hardware without accuracy benefit for eye tracking);
* :func:`joint_vs_separate` — the Sec. III-C joint training vs training
  the ROI predictor and segmenter in isolation;
* :func:`sampling_rate_sweep` — accuracy vs in-ROI sampling rate (the
  knob behind the paper's 20 % operating point).

The experiments that run the live system (:func:`joint_vs_separate`,
:func:`sampling_rate_sweep`) are thin configurations over the shared
:mod:`repro.engine` stage runtime — the same graphs the CLI and figure
benchmarks execute.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.config import SystemConfig
from repro.core.pipeline import BlissCamPipeline
from repro.core.variants import evaluate_strategy, train_for_strategy
from repro.sampling.eventification import (
    event_precision,
    event_recall,
    eventify,
    eventify_normalized,
)
from repro.sampling.strategies import ROIRandom
from repro.segmentation.vit import ViTSegmenter
from repro.synth.dataset import SyntheticEyeDataset
from repro.synth.eye_model import SEG_CLASSES

__all__ = [
    "sigma_sensitivity",
    "normalization_ablation",
    "joint_vs_separate",
    "sampling_rate_sweep",
]


def _foreground_union(seq, t: int) -> np.ndarray:
    """Union of foregrounds at t-1 and t — the region events may honestly cover."""
    prev_fg = seq.segmentations[t - 1] != SEG_CLASSES["background"]
    cur_fg = seq.segmentations[t] != SEG_CLASSES["background"]
    return prev_fg | cur_fg


def sigma_sensitivity(
    dataset: SyntheticEyeDataset, sigmas: list[float]
) -> list[dict]:
    """Event density / box recall / precision per threshold, dataset-wide."""
    rows = []
    for sigma in sigmas:
        densities, recalls, precisions = [], [], []
        for seq in dataset:
            for t in range(1, len(seq)):
                events = eventify(seq.frames[t - 1], seq.frames[t], sigma=sigma)
                fg = _foreground_union(seq, t)
                densities.append(events.mean())
                recalls.append(event_recall(events, fg))
                precisions.append(event_precision(events, fg))
        rows.append(
            {
                "sigma": sigma,
                "density": float(np.mean(densities)),
                "recall": float(np.mean(recalls)),
                "precision": float(np.mean(precisions)),
            }
        )
    return rows


def normalization_ablation(dataset: SyntheticEyeDataset) -> dict[str, dict]:
    """Plain vs normalized eventification at their nominal thresholds."""
    results = {}
    for name, fn in (
        ("plain |dF| > sigma (ours)", lambda a, b: eventify(a, b)),
        ("normalized dF/F (event camera)", lambda a, b: eventify_normalized(a, b)),
    ):
        recalls, precisions, densities = [], [], []
        for seq in dataset:
            for t in range(1, len(seq)):
                events = fn(seq.frames[t - 1], seq.frames[t])
                fg = _foreground_union(seq, t)
                recalls.append(event_recall(events, fg))
                precisions.append(event_precision(events, fg))
                densities.append(events.mean())
        results[name] = {
            "recall": float(np.mean(recalls)),
            "precision": float(np.mean(precisions)),
            "density": float(np.mean(densities)),
        }
    return results


def joint_vs_separate(
    config: SystemConfig, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Compare Sec. III-C joint training against isolated training.

    *Joint*: the full pipeline (segmentation gradients flow into the ROI
    predictor through the soft-sampling relaxation).
    *Separate*: the same architectures, but the ROI predictor sees only
    its MSE loss (``seg_to_roi_weight = 0``) and the segmenter trains on
    ground-truth-ROI samples.
    """
    out = {}
    for mode in ("joint", "separate"):
        rng = np.random.default_rng(seed)
        if mode == "joint":
            pipeline = BlissCamPipeline(config, rng=rng)
        else:
            sep_config = replace(
                config, joint=replace(config.joint, seg_to_roi_weight=0.0)
            )
            pipeline = BlissCamPipeline(sep_config, rng=rng)
        pipeline.train()
        result = pipeline.evaluate()
        out[mode] = {
            "horizontal": result.horizontal.mean,
            "vertical": result.vertical.mean,
            "roi_iou": result.stats.mean_roi_iou,
        }
    return out


def sampling_rate_sweep(
    dataset: SyntheticEyeDataset,
    segmenter_factory,
    rates: list[float],
    epochs: int,
    seed: int = 0,
) -> list[dict]:
    """Gaze error vs in-ROI sampling rate with ground-truth ROIs.

    ``segmenter_factory(rng)`` builds a fresh segmenter per point.  The
    rate is converted to the strategy's frame-level compression using the
    dataset's typical ROI fraction.  Each point is one strategy-graph run
    on the shared :mod:`repro.engine` runtime (via
    :func:`~repro.core.variants.evaluate_strategy`).
    """
    train_idx, eval_idx = dataset.split()
    roi_fraction = dataset.typical_roi_fraction(0)
    if roi_fraction is None:
        raise ValueError("dataset's first sequence has no foreground boxes")
    rows = []
    for rate in rates:
        rng = np.random.default_rng([seed, int(rate * 1e6)])
        compression = max(1.0, 1.0 / (rate * roi_fraction))
        segmenter: ViTSegmenter = segmenter_factory(rng)
        strategy = ROIRandom(compression)
        train_for_strategy(segmenter, strategy, dataset, train_idx, epochs, rng)
        result = evaluate_strategy(strategy, segmenter, dataset, eval_idx, rng)
        rows.append(
            {
                "rate": rate,
                "compression": compression,
                "horizontal": result.horizontal.mean,
                "vertical": result.vertical.mean,
            }
        )
    return rows
