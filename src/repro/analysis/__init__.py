"""Ablation and sensitivity studies beyond the paper's headline figures."""

from repro.analysis.ablations import (
    joint_vs_separate,
    normalization_ablation,
    sampling_rate_sweep,
    sigma_sensitivity,
)

__all__ = [
    "sigma_sensitivity",
    "normalization_ablation",
    "joint_vs_separate",
    "sampling_rate_sweep",
]
