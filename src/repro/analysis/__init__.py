"""Analysis tools: ablation studies and the static determinism linter.

``repro.analysis.ablations`` holds the sensitivity studies beyond the
paper's headline figures; ``repro.analysis.lint`` is the AST-based
determinism & cross-process-safety checker behind ``repro lint``
(imported on demand — ``from repro.analysis import lint`` — so the
numeric ablation path stays import-light)."""

from repro.analysis.ablations import (
    joint_vs_separate,
    normalization_ablation,
    sampling_rate_sweep,
    sigma_sensitivity,
)

__all__ = [
    "sigma_sensitivity",
    "normalization_ablation",
    "joint_vs_separate",
    "sampling_rate_sweep",
]
