"""Concrete stages: the BlissCam frame dataflow, one paper stage per class.

Tracking graph (Sec. III/IV, extracted from the old monolithic
``BlissCamPipeline.evaluate`` loop):

``EventifyStage``       analog eventification against the AZ-held frame
``ROIPredictStage``     in-sensor ROI DNN (margin-expanded box)
``ROIReuseStage``       Table-I reuse policy as a first-class wrapper —
                        replaces the old predictor monkeypatch
``SampleStage``         SRAM power-up RNG sampling inside the ROI
``ReadoutStage``        If-Skip ADC + column-major sparse readout + RLE,
                        then the host-side decode
``SegmentStage``        packed sparse-ViT segmentation (batched mode
                        groups frames by token count — bitwise identical)
``GazeRegressStage``    calibrated centroid -> gaze regression
``StatsCollectorStage`` per-frame workload statistics (Figs. 13/14 inputs)

Strategy graph (Fig. 12/15 harness, extracted from
``core/variants.evaluate_strategy``):

``EventifyPairStage``   digital frame-pair eventification
``StrategySampleStage`` one of the seven Fig. 15 sampling strategies
``SegmentOrReuseStage`` segmentation with SKIP-style reuse of the
                        previous map

Scalar ``process`` paths are faithful transcriptions of the original
loops; vectorized ``process_batch`` overrides must stay bitwise identical
(enforced by the engine equivalence tests).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.context import FrameContext, SequenceState
from repro.engine.stage import Stage
from repro.gaze.estimation import pupil_centroid_batch
from repro.sampling import random_sampling as rs
from repro.sampling.eventification import eventify
from repro.sampling.roi import ROIReusePolicy, box_iou, box_to_pixels, order_box

__all__ = [
    "EventifyStage",
    "ROIPredictStage",
    "ROIReuseStage",
    "SampleStage",
    "ReadoutStage",
    "SegmentStage",
    "GazeRegressStage",
    "StatsCollectorStage",
    "EventifyPairStage",
    "StrategySampleStage",
    "SegmentOrReuseStage",
]


# -- tracking stages ---------------------------------------------------------


class EventifyStage(Stage):
    """Analog eventification via the per-sequence sensor's held frame."""

    name = "eventify"

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        event_map = seq.sensor.eventify_step(ctx.frame)
        if event_map is None:
            ctx.skipped = True  # bootstrap frame: nothing to difference yet
        else:
            ctx.event_map = event_map

    def process_batch(self, ctxs, seqs) -> None:
        # Per-sensor noise streams must be drawn from each sequence's own
        # generator (that's what makes lockstep == sequential bitwise);
        # the pure comparator decision vectorizes across the rank.
        live: list[tuple[FrameContext, np.ndarray, np.ndarray, float]] = []
        for ctx, seq in zip(ctxs, seqs):
            inputs = seq.sensor.eventify_inputs(ctx.frame)
            if inputs is None:
                ctx.skipped = True
                continue
            live.append((ctx, *inputs, seq.sensor.sigma))
        if not live:
            return
        diffs = np.stack([d for _, d, _, _ in live])
        noises = np.stack([n for _, _, n, _ in live])
        sigmas = np.array([s for _, _, _, s in live])[:, None, None]
        events = type(seqs[0].sensor).comparator_decide(diffs, noises, sigmas)
        for i, (ctx, _, _, _) in enumerate(live):
            ctx.event_map = events[i]


class ROIPredictStage(Stage):
    """The in-sensor ROI DNN mapping (events, previous seg) -> pixel box."""

    name = "roi_predict"

    def __init__(
        self,
        predictor: Callable[[np.ndarray, np.ndarray | None], np.ndarray],
        height: int,
        width: int,
    ):
        self.predictor = predictor
        self.height = height
        self.width = width

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        box_norm = order_box(
            np.asarray(self.predictor(ctx.event_map, seq.prev_seg_pred))
        )
        ctx.roi_box_norm = box_norm
        ctx.roi_box = box_to_pixels(box_norm, self.height, self.width)

    def process_batch(self, ctxs, seqs) -> None:
        # Predictors exposing ``predict_batch`` guarantee row-independent
        # forwards (the conv is a per-sample GEMM, the FC tail runs
        # per-row), so stacking the rank is bitwise-identical to the
        # per-frame loop.  Plain callables fall back to that loop.
        batch = getattr(self.predictor, "predict_batch", None)
        if batch is None:
            for ctx, seq in zip(ctxs, seqs):
                self.process(ctx, seq)
            return
        boxes = batch(
            [ctx.event_map for ctx in ctxs],
            [seq.prev_seg_pred for seq in seqs],
        )
        for ctx, box in zip(ctxs, boxes):
            box_norm = order_box(np.asarray(box))
            ctx.roi_box_norm = box_norm
            ctx.roi_box = box_to_pixels(box_norm, self.height, self.width)


class ROIReuseStage(Stage):
    """Table-I ROI reuse as a wrapper around any ROI-producing stage.

    Replaces the old hack of temporarily monkeypatching
    ``sensor.roi_predictor`` with a lambda pinning the cached box (which
    also leaked the pinned predictor if ``capture`` raised).  With
    ``window == 1`` the policy predicts every frame — the paper's default.
    """

    name = "roi"

    def __init__(self, inner: Stage, window: int = 1):
        if window < 1:
            raise ValueError(f"reuse window must be >= 1: {window}")
        self.inner = inner
        self.window = window

    def start_sequence(self, seq: SequenceState) -> None:
        self.inner.start_sequence(seq)
        seq.slots[self.name] = ROIReusePolicy(window=self.window)

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        policy: ROIReusePolicy = seq.slots[self.name]
        if self.window > 1 and not policy.should_predict():
            box_norm = order_box(np.asarray(policy.current()))
            ctx.roi_box_norm = box_norm
            ctx.roi_box = box_to_pixels(box_norm, *ctx.frame.shape)
            ctx.roi_reused = True
            policy.tick()
        else:
            self.inner.process(ctx, seq)
            policy.update(ctx.roi_box_norm)

    def process_batch(self, ctxs, seqs) -> None:
        if self.window == 1:
            # Every lane predicts every frame, so the whole rank can go to
            # the inner stage's batched path in one call.
            self.inner.process_batch(ctxs, seqs)
            for ctx, seq in zip(ctxs, seqs):
                seq.slots[self.name].update(ctx.roi_box_norm)
        else:
            # Lanes disagree on predict-vs-reuse; the per-frame state
            # machine is cheap, so fall back to the scalar loop.
            for ctx, seq in zip(ctxs, seqs):
                self.process(ctx, seq)


class SampleStage(Stage):
    """SRAM power-up RNG sampling decisions restricted to the ROI."""

    name = "sample"

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        ctx.sample_mask = seq.sensor.sampling_step(ctx.roi_box)

    def process_batch(self, ctxs, seqs) -> None:
        # Power-up bits must come from each sequence's own stream, but the
        # popcount reduction and threshold compare stack across the rank
        # (integer/boolean ops: exact under any batching).
        bits = np.stack([seq.sensor.sram_rng.power_up_bits() for seq in seqs])
        pops = bits.sum(axis=-1)  # (B, num_pixels)
        for i, (ctx, seq) in enumerate(zip(ctxs, seqs)):
            ctx.sample_mask = seq.sensor.mask_from_popcounts(
                pops[i], ctx.roi_box
            )


class ReadoutStage(Stage):
    """ADC + sparse readout + RLE, then the host-side reconstruction."""

    name = "readout"

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        sensor = seq.sensor
        codes, readout, tokens, stats = sensor.readout_step(
            ctx.frame, ctx.sample_mask, ctx.roi_box
        )
        ctx.readout = readout
        ctx.rle_stats = stats
        # Host side: the faithful transmission round-trip, via the
        # sensor's one decode implementation.
        ctx.sparse_frame, ctx.mask = sensor.host_decode_tokens(
            tokens, ctx.roi_box
        )

    def process_batch(self, ctxs, seqs) -> None:
        # The RLE round-trip is lossless by construction (tested), so the
        # batched host skips the per-token python scan: the sensor's
        # direct readout provides vectorized run-length accounting and
        # the sparse frame is rebuilt from the codes it already holds —
        # bitwise identical to decoding the token stream.  The readout
        # itself stays per-row (held frame, noise and SRAM streams are
        # per-sequence sensor state); the host-side rebuild stacks: the
        # int64->float64 cast is exact and the divide/multiply are
        # elementwise, so each row matches the scalar rebuild.
        code_rows = []
        for ctx, seq in zip(ctxs, seqs):
            codes, readout, stats = seq.sensor.readout_step_direct(
                ctx.frame, ctx.sample_mask, ctx.roi_box
            )
            ctx.readout = readout
            ctx.rle_stats = stats
            code_rows.append(codes)
        codes = np.stack(code_rows).astype(np.float64)
        levels = np.array(
            [float(seq.sensor.adc.levels - 1) for seq in seqs]
        )[:, None, None]
        masks = np.stack([ctx.sample_mask for ctx in ctxs])
        sparse_frames = (codes / levels) * masks
        for i, ctx in enumerate(ctxs):
            ctx.sparse_frame = sparse_frames[i]
            ctx.mask = masks[i]


class SegmentStage(Stage):
    """Packed sparse-ViT segmentation; feeds the ROI predictor back."""

    name = "segment"

    def __init__(self, segmenter):
        self.segmenter = segmenter

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        seg = self.segmenter.predict_packed(ctx.sparse_frame, ctx.mask)
        ctx.seg_pred = seg
        seq.prev_seg_pred = seg

    def process_batch(self, ctxs, seqs) -> None:
        frames = np.stack([c.sparse_frame for c in ctxs])
        masks = np.stack([c.mask for c in ctxs])
        segs = self.segmenter.predict_packed_batch(frames, masks)
        for i, (ctx, seq) in enumerate(zip(ctxs, seqs)):
            ctx.seg_pred = segs[i]
            seq.prev_seg_pred = segs[i]


class GazeRegressStage(Stage):
    """Calibrated gaze regression on the predicted segmentation map.

    The fitted estimator keeps a last-prediction fallback for frames where
    the pupil is occluded; with ``per_sequence_state`` the fallback is
    tracked per sequence (required for lockstep == sequential equality),
    otherwise the estimator's own cross-sequence state is used (the
    historical behaviour of the strategy harness).
    """

    name = "gaze"

    def __init__(self, estimator, per_sequence_state: bool = True):
        self.estimator = estimator
        self.per_sequence_state = per_sequence_state

    def start_sequence(self, seq: SequenceState) -> None:
        if self.per_sequence_state:
            seq.slots[self.name] = self.estimator.INITIAL_FALLBACK

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        est = self.estimator
        if self.per_sequence_state:
            est.fallback_state = seq.slots[self.name]
            ctx.gaze_pred = est.predict(ctx.seg_pred)
            seq.slots[self.name] = est.fallback_state
        else:
            ctx.gaze_pred = est.predict(ctx.seg_pred)

    def process_batch(self, ctxs, seqs) -> None:
        # The O(B*H*W) centroid extraction stacks across the rank
        # (integer index sums — exact, see pupil_centroid_batch); the
        # tiny per-row regression tail runs in rank order, which also
        # threads the fallback state exactly as the scalar loop does —
        # both per-sequence slots and the shared-estimator regime.
        est = self.estimator
        from_centroid = getattr(est, "predict_from_centroid", None)
        if from_centroid is None:
            for ctx, seq in zip(ctxs, seqs):
                self.process(ctx, seq)
            return
        centroids = pupil_centroid_batch(
            np.stack([ctx.seg_pred for ctx in ctxs])
        )
        for ctx, seq, centroid in zip(ctxs, seqs, centroids):
            if self.per_sequence_state:
                est.fallback_state = seq.slots[self.name]
                ctx.gaze_pred = from_centroid(centroid)
                seq.slots[self.name] = est.fallback_state
            else:
                ctx.gaze_pred = from_centroid(centroid)


class StatsCollectorStage(Stage):
    """Per-frame workload statistics parameterizing the hardware models."""

    name = "stats"

    def __init__(self, tokens_total: int, patch: int):
        self.tokens_total = tokens_total
        self.patch = patch

    def _record(self, ctx: FrameContext, token_count: int) -> None:
        n = ctx.sparse_frame.size
        r0, c0, r1, c1 = ctx.roi_box
        ctx.stats = {
            "roi_fraction": (r1 - r0) * (c1 - c0) / n,
            "sampled_fraction": ctx.readout.converted_pixels / n,
            "token_fraction": token_count / self.tokens_total,
            "tx_bytes": ctx.rle_stats.encoded_bytes,
            "rle_ratio": ctx.rle_stats.compression_ratio,
            "roi_iou": (
                box_iou(ctx.roi_box, ctx.gt_box)
                if ctx.gt_box is not None
                else None
            ),
        }

    def _token_counts(self, masks: np.ndarray) -> np.ndarray:
        p = self.patch
        b, h, w = masks.shape
        token_mask = masks.reshape(b, h // p, p, w // p, p).any(axis=(2, 4))
        return token_mask.sum(axis=(1, 2))

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        counts = self._token_counts(ctx.mask[None])
        self._record(ctx, int(counts[0]))

    def process_batch(self, ctxs, seqs) -> None:
        counts = self._token_counts(np.stack([c.mask for c in ctxs]))
        for ctx, count in zip(ctxs, counts):
            self._record(ctx, int(count))


# -- strategy-harness stages -------------------------------------------------


class EventifyPairStage(Stage):
    """Digital eventification of consecutive dataset frames."""

    name = "eventify"

    def __init__(self, sigma: float | None = None):
        self.sigma = sigma

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        if ctx.prev_frame is None:
            ctx.skipped = True  # no pair at t = 0
            return
        if self.sigma is None:
            ctx.event_map = eventify(ctx.prev_frame, ctx.frame)
        else:
            ctx.event_map = eventify(ctx.prev_frame, ctx.frame, sigma=self.sigma)

    def process_batch(self, ctxs, seqs) -> None:
        # eventify is purely elementwise, so one stacked call over the
        # rows that have a frame pair is bitwise row-equal; rows at
        # t = 0 mark themselves skipped exactly like the scalar path.
        live: list[FrameContext] = []
        for ctx in ctxs:
            if ctx.prev_frame is None:
                ctx.skipped = True  # no pair at t = 0
            else:
                live.append(ctx)
        if not live:
            return
        prevs = np.stack([ctx.prev_frame for ctx in live])
        frames = np.stack([ctx.frame for ctx in live])
        if self.sigma is None:
            events = eventify(prevs, frames)
        else:
            events = eventify(prevs, frames, sigma=self.sigma)
        for i, ctx in enumerate(live):
            ctx.event_map = events[i]


class StrategySampleStage(Stage):
    """Apply one Fig. 15 sampling strategy to the eventified frame.

    The stage holds a *template* strategy plus a base seed; every
    sequence gets its own ``strategy.spawn([seed, seq_index])`` — a clone
    with fresh per-sequence adaptive state and an RNG stream keyed by
    sequence index (mirroring the sensor's spawn design).  Keying by
    index rather than execution order is what makes sequential, lockstep
    and sharded runs draw identical randomness.
    """

    name = "strategy_sample"

    def __init__(self, strategy, seed: int, use_gt_roi: bool = True):
        self.strategy = strategy
        self.seed = seed
        self.use_gt_roi = use_gt_roi

    def start_sequence(self, seq: SequenceState) -> None:
        seq.slots[self.name] = self.strategy.spawn([self.seed, seq.seq_index])

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        strategy = seq.slots[self.name]
        roi_box = ctx.gt_box if self.use_gt_roi else None
        decision = strategy.sample(
            ctx.frame, ctx.event_map, roi_box, strategy.rng
        )
        ctx.mask = decision.mask
        ctx.sparse_frame = decision.sparse_frame
        ctx.roi_box = decision.roi_box
        ctx.reuse_previous = decision.reuse_previous
        ctx.stats["compression"] = decision.compression

    def process_batch(self, ctxs, seqs) -> None:
        # One template-level sample_batch call: the per-strategy kernels
        # vectorize the mask/sparse-frame math while drawing per-row
        # from each spawn's own stream in rank order, and the
        # compression accounting stacks into one popcount.
        strategies = [seq.slots[self.name] for seq in seqs]
        frames = [ctx.frame for ctx in ctxs]
        event_maps = [ctx.event_map for ctx in ctxs]
        roi_boxes = [ctx.gt_box if self.use_gt_roi else None for ctx in ctxs]
        decisions = self.strategy.sample_batch(
            strategies, frames, event_maps, roi_boxes
        )
        compressions = rs.effective_compression_batch(
            np.stack([decision.mask for decision in decisions])
        )
        for ctx, decision, compression in zip(ctxs, decisions, compressions):
            ctx.mask = decision.mask
            ctx.sparse_frame = decision.sparse_frame
            ctx.roi_box = decision.roi_box
            ctx.reuse_previous = decision.reuse_previous
            ctx.stats["compression"] = compression


class SegmentOrReuseStage(Stage):
    """Segmentation with SKIP-style reuse of the previous predicted map."""

    name = "segment"

    def __init__(self, segmenter):
        self.segmenter = segmenter

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        if ctx.reuse_previous and seq.prev_seg_pred is not None:
            ctx.seg_pred = seq.prev_seg_pred
            ctx.seg_reused = True
        else:
            ctx.seg_pred = self.segmenter.predict(ctx.sparse_frame, ctx.mask)
        seq.prev_seg_pred = ctx.seg_pred

    def process_batch(self, ctxs, seqs) -> None:
        # Split the rank: reuse rows copy their sequence's previous map,
        # compute rows run one stacked dense forward.  The scalar
        # reference is the *dense* predict (not the packed ViT path), so
        # the batched side goes through each backend's dense
        # predict_batch — row-independent for the ViT (fixed token
        # grid) and for the conv nets in eval mode.  Segmenters without
        # a batched forward, or still in training mode (where batch norm
        # couples rows through batch statistics), take the scalar loop.
        compute: list[tuple[FrameContext, SequenceState]] = []
        for ctx, seq in zip(ctxs, seqs):
            if ctx.reuse_previous and seq.prev_seg_pred is not None:
                ctx.seg_pred = seq.prev_seg_pred
                ctx.seg_reused = True
                seq.prev_seg_pred = ctx.seg_pred
            else:
                compute.append((ctx, seq))
        if not compute:
            return
        batch = getattr(self.segmenter, "predict_batch", None)
        requires_eval = getattr(self.segmenter, "predict_batch_requires_eval", True)
        if batch is None or (
            requires_eval and getattr(self.segmenter, "training", False)
        ):
            for ctx, seq in compute:
                ctx.seg_pred = self.segmenter.predict(ctx.sparse_frame, ctx.mask)
                seq.prev_seg_pred = ctx.seg_pred
            return
        frames = np.stack([ctx.sparse_frame for ctx, _ in compute])
        masks = np.stack([ctx.mask for ctx, _ in compute])
        segs = batch(frames, masks)
        for i, (ctx, seq) in enumerate(compute):
            ctx.seg_pred = segs[i]
            seq.prev_seg_pred = segs[i]
