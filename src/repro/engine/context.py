"""Per-frame and per-sequence state flowing through the staged engine.

A :class:`FrameContext` is the unit of work: one exposure travelling
through the stage graph, accumulating intermediate products (event map,
ROI box, sample mask, sparse frame, segmentation, gaze) plus per-stage
timing and the measured statistics the hardware models consume.  A
:class:`SequenceState` carries everything that persists *across* frames of
one sequence — the spawned sensor, the previous segmentation fed back to
the ROI predictor (Fig. 8's cross-frame dependency), and arbitrary
per-sequence stage slots (ROI-reuse policy, gaze fallback state).

Keeping all cross-frame state in ``SequenceState`` (never on the stages
themselves) is what lets the runner execute many sequences in lockstep:
stages are shared, state is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["FrameContext", "SequenceState"]


@dataclass
class FrameContext:
    """One frame's journey through the stage graph."""

    seq_index: int
    t: int
    frame: np.ndarray
    prev_frame: np.ndarray | None = None
    # Ground truth (when available from the dataset).
    gaze_true: np.ndarray | None = None
    seg_true: np.ndarray | None = None
    gt_box: tuple[int, int, int, int] | None = None
    # Stage products.
    event_map: np.ndarray | None = None
    roi_box_norm: np.ndarray | None = None
    roi_box: tuple[int, int, int, int] | None = None
    roi_reused: bool = False
    sample_mask: np.ndarray | None = None
    readout: Any = None
    rle_stats: Any = None
    sparse_frame: np.ndarray | None = None
    mask: np.ndarray | None = None
    seg_pred: np.ndarray | None = None
    seg_reused: bool = False
    gaze_pred: tuple[float, float] | None = None
    #: SKIP-style strategies: host should reuse the previous segmentation.
    reuse_previous: bool = False
    #: True when this frame produced no sensor output (bootstrap frame);
    #: the runner short-circuits the remaining stages.
    skipped: bool = False
    #: Per-frame measured statistics (stats collector output).
    stats: dict[str, Any] = field(default_factory=dict)
    #: Seconds spent per stage on this frame (batch time split evenly
    #: across the lockstep batch in batched mode).
    stage_times: dict[str, float] = field(default_factory=dict)

    def release_intermediates(self) -> None:
        """Drop the bulky per-frame products, keeping scalars.

        Called by the runner (``retain_intermediates=False``) once every
        stage has consumed the frame: evaluation collectors only need
        ``gaze_pred``/``gaze_true``/``stats``/``stage_times``, while the
        arrays here are O(frame size) each and would otherwise keep the
        whole run resident — and, in sharded mode, be pickled back from
        the worker process for nothing.  The input ``frame`` is released
        too: no stage touches it after the frame's own timestep.
        """
        self.frame = None
        self.event_map = None
        self.sample_mask = None
        self.readout = None
        self.sparse_frame = None
        self.mask = None
        self.seg_pred = None
        self.seg_true = None
        self.prev_frame = None

    def validate(self) -> None:
        """Check the invariants a completed (non-skipped) context obeys.

        Used by the engine tests; cheap enough to call ad hoc while
        debugging a new stage graph.
        """
        if self.skipped:
            return
        if self.event_map is not None and self.event_map.dtype != np.bool_:
            raise AssertionError("event map must be boolean")
        if self.mask is not None:
            if self.mask.dtype != np.bool_:
                raise AssertionError("sampling mask must be boolean")
            if self.sparse_frame is None:
                raise AssertionError("mask without sparse frame")
            if self.sparse_frame.shape != self.mask.shape:
                raise AssertionError("sparse frame / mask shape mismatch")
            if np.any(self.sparse_frame[~self.mask] != 0.0):
                raise AssertionError("sparse frame non-zero outside the mask")
        if self.roi_box is not None:
            r0, c0, r1, c1 = self.roi_box
            if not (r0 < r1 and c0 < c1):
                raise AssertionError(f"degenerate ROI box {self.roi_box}")
        if self.seg_pred is not None and self.seg_pred.shape != self.frame.shape:
            raise AssertionError("segmentation shape mismatch")


@dataclass
class SequenceState:
    """Cross-frame state of one sequence being executed."""

    seq_index: int
    #: The per-sequence spawned sensor (tracking graphs only).
    sensor: Any = None
    #: Previous frame's *predicted* segmentation, fed back to the ROI
    #: predictor and reused by SKIP-style strategies.
    prev_seg_pred: np.ndarray | None = None
    #: Free-form per-sequence stage state keyed by stage name.
    slots: dict[str, Any] = field(default_factory=dict)
