"""``repro.engine`` — the staged frame-dataflow execution runtime.

The paper's system is a staged dataflow (eventification -> ROI prediction
-> in-ROI sampling -> RLE/MIPI readout -> packed sparse-ViT segmentation
-> gaze regression).  This package makes that structure executable: a
:class:`Stage` protocol, a :class:`FrameContext` carrying one frame's
intermediate products and timings, and a :class:`SequenceRunner` that
executes stage graphs over batches of sequences — sequentially, in
vectorized lockstep, or sharded over worker processes, all
bitwise-identical.

``BlissCamPipeline.evaluate``, ``core.variants.evaluate_strategy``, the
ablation runners, the CLI, and the figure benchmarks are all thin
configurations over this one runtime (see ``docs/architecture.md``).
"""

from repro.engine.context import FrameContext, SequenceState
from repro.engine.graphs import (
    SensorSpawnFactory,
    build_strategy_graph,
    build_tracking_graph,
    strategy_runner,
    tracking_runner,
)
from repro.engine.runner import (
    EngineRun,
    SequenceRunner,
    StageTiming,
    contiguous_shards,
    shard_executor,
)
from repro.engine.executors import (
    EXECUTOR_BACKENDS,
    ExecutorBackend,
    FileQueueBackend,
    InProcessExecutor,
    ProcessPoolBackend,
    ThreadBackend,
    make_executor,
)
from repro.engine.stage import Stage, StageGraph
from repro.engine.transport import (
    ObjectHandle,
    TransportChannel,
    TransportError,
    resolve_payload,
    shm_available,
    worker_cached,
)
from repro.engine.stages import (
    EventifyPairStage,
    EventifyStage,
    GazeRegressStage,
    ROIPredictStage,
    ROIReuseStage,
    ReadoutStage,
    SampleStage,
    SegmentOrReuseStage,
    SegmentStage,
    StatsCollectorStage,
    StrategySampleStage,
)

__all__ = [
    "FrameContext",
    "SequenceState",
    "Stage",
    "StageGraph",
    "SequenceRunner",
    "EngineRun",
    "StageTiming",
    "contiguous_shards",
    "shard_executor",
    "ExecutorBackend",
    "InProcessExecutor",
    "ProcessPoolBackend",
    "ThreadBackend",
    "FileQueueBackend",
    "EXECUTOR_BACKENDS",
    "make_executor",
    "TransportChannel",
    "TransportError",
    "ObjectHandle",
    "resolve_payload",
    "worker_cached",
    "shm_available",
    "EventifyStage",
    "ROIPredictStage",
    "ROIReuseStage",
    "SampleStage",
    "ReadoutStage",
    "SegmentStage",
    "GazeRegressStage",
    "StatsCollectorStage",
    "EventifyPairStage",
    "StrategySampleStage",
    "SegmentOrReuseStage",
    "build_tracking_graph",
    "build_strategy_graph",
    "tracking_runner",
    "strategy_runner",
    "SensorSpawnFactory",
]
