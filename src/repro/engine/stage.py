"""The stage protocol and the stage-graph container.

A :class:`Stage` is one node of the per-frame dataflow (eventification,
ROI prediction, sampling, readout, segmentation, gaze regression, stats).
Stages are *shared* across sequences: all cross-frame state lives in the
:class:`~repro.engine.context.SequenceState` handed to every call, so a
single stage instance can serve many sequences in lockstep.

``process`` handles one frame; ``process_batch`` handles the frames of
several sequences at the same timestep and defaults to a per-frame loop —
stages override it only when they have a genuinely vectorized
implementation (which must stay *bitwise identical* to the scalar path;
the engine test suite enforces this end-to-end).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.context import FrameContext, SequenceState

__all__ = ["Stage", "StageGraph"]


class Stage:
    """One node of the per-frame dataflow."""

    #: Stable identifier used for timing attribution and per-sequence slots.
    name: str = "stage"

    def start_sequence(self, seq: SequenceState) -> None:
        """Reset/initialize per-sequence state before frame 0."""

    def process(self, ctx: FrameContext, seq: SequenceState) -> None:
        """Process one frame.  Never called with ``ctx.skipped`` set."""
        raise NotImplementedError

    def process_batch(
        self,
        ctxs: Sequence[FrameContext],
        seqs: Sequence[SequenceState],
    ) -> None:
        """Process one lockstep timestep across several sequences.

        The default simply loops; override with a vectorized
        implementation that produces bitwise-identical contexts.
        """
        for ctx, seq in zip(ctxs, seqs):
            self.process(ctx, seq)


class StageGraph:
    """An ordered, validated pipeline of stages.

    The graph is linear — the paper's dataflow is a chain with one feedback
    edge (previous segmentation -> ROI predictor) which is carried through
    ``SequenceState`` rather than a graph edge, keeping execution order
    trivial.  Validation catches the common configuration mistakes early:
    empty graphs, duplicate stage names (which would collide in timing
    attribution and sequence slots), and non-stage objects.
    """

    def __init__(self, stages: Sequence[Stage]):
        stages = list(stages)
        if not stages:
            raise ValueError("a stage graph needs at least one stage")
        names = []
        for stage in stages:
            if not isinstance(stage, Stage):
                raise TypeError(f"not a Stage: {stage!r}")
            names.append(stage.name)
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate stage names: {sorted(dupes)}")
        self.stages = stages

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]
