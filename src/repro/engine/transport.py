"""Zero-copy shard transport: ship bytes once, hand out handles after.

The sharded execution paths (engine runner, training runtime, serve
replicas) historically pickled their whole payload — frame stacks, model
weights, sensor templates — into every worker dispatch.  At CI scale
that serialization *dominates* the kernels: ``BENCH_engine.json``
recorded the process pool losing to single-process execution.  This
module attacks the bytes, not the kernels:

* **Content-addressed shared-memory segments.**  A dispatcher-side
  :class:`TransportChannel` pickles each payload once with an extracting
  pickler that hoists large ndarrays into
  ``multiprocessing.shared_memory`` segments, stores the residual pickle
  blob in a segment of its own, and returns a tiny :class:`ObjectHandle`
  (a content digest plus a segment name).  Re-publishing identical
  content — the common case: the same runner, the same dataset
  sequences, dispatch after dispatch — reuses the existing segments, so
  a steady-state dispatch crosses the process boundary as a few hundred
  bytes of handle instead of megabytes of payload.
* **Worker-resident caches.**  Workers map segments read-only (one
  attach per segment per process) and memoize the *resolved object* by
  its content digest, so repeated dispatches of the same payload skip
  deserialization entirely.  :func:`worker_cached` generalizes the
  training runtime's historical single-slot dataset cache into a keyed
  cache any worker-side rebuild path can use.
* **Explicit lifecycle.**  Segments are created by the dispatcher and
  unlinked deterministically: per-run channels unlink on run teardown,
  the persistent channel owned by ``repro.api.Session`` unlinks on
  ``Session.close()``.  Blob handles refcount the array segments they
  reference; slot-keyed publishes (``publish(obj, slot=...)``) release
  the slot's previous generation — how per-epoch training weights avoid
  accumulating one segment per epoch.
* **Plain-pickle fallback.**  When shared memory is unavailable (or
  explicitly disabled via ``REPRO_DISABLE_SHM=1`` /
  ``TransportChannel(use_shm=False)``) the blob ships inline inside the
  handle.  Resolution is bit-for-bit the same unpickle either way, so
  results are bitwise-identical in both modes — the engine, training and
  serve parity suites pin this.

Mutation safety: segments are content-addressed by a BLAKE2 fingerprint
of the array bytes, never by object identity, so mutating an array in
place (the optimizer stepping epoch-start weights) and re-publishing
yields a *new* segment — stale-cache bugs are structurally impossible.
Worker-side views are read-only; a kernel that tried to write a shipped
array would raise instead of silently diverging from the in-process
modes.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import secrets
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs.tracer import current_tracer

try:  # pragma: no cover - shared_memory ships with CPython >= 3.8
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = [
    "TransportChannel",
    "TransportError",
    "ObjectHandle",
    "ArrayRef",
    "resolve_payload",
    "worker_cached",
    "shm_available",
    "payload_stats",
    "MIN_SHM_ARRAY_BYTES",
    "SEGMENT_PREFIX",
]

#: Arrays at or above this many bytes are hoisted out of the pickle
#: stream into their own shared-memory segment; smaller ones ride inline
#: in the blob (a segment per tiny weight matrix would cost more in
#: mmap/fd churn than it saves in bytes).
MIN_SHM_ARRAY_BYTES = 16 * 1024

#: Every segment this module creates carries this name prefix, so leak
#: checks (CI asserts ``/dev/shm`` is clean after a ``Session`` closes)
#: can tell our segments from unrelated ``psm_*`` ones.
SEGMENT_PREFIX = "reproshm_"

#: Kill switch: set ``REPRO_DISABLE_SHM=1`` to force the plain-pickle
#: fallback everywhere (results are bitwise-identical either way).
DISABLE_ENV = "REPRO_DISABLE_SHM"


class TransportError(RuntimeError):
    """A handle could not be resolved (segment gone or channel closed)."""


_SHM_PROBE: bool | None = None


def shm_available() -> bool:
    """Whether shared-memory transport is usable in this environment.

    Probes once per process: creates, maps and unlinks a tiny segment.
    Containers without ``/dev/shm`` (or with it mounted noexec/0-sized)
    fail the probe and every channel falls back to inline pickling.
    """
    global _SHM_PROBE
    if os.environ.get(DISABLE_ENV, "").strip() not in ("", "0"):
        return False
    if _SHM_PROBE is None:
        if _shm is None:
            _SHM_PROBE = False
        else:
            try:
                seg = _shm.SharedMemory(
                    name=_new_segment_name(), create=True, size=16
                )
                seg.buf[:2] = b"ok"
                seg.close()
                seg.unlink()
                _SHM_PROBE = True
            except Exception:  # pragma: no cover - degraded environments
                _SHM_PROBE = False
    return _SHM_PROBE


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"


# -- wire format --------------------------------------------------------------
@dataclass(frozen=True)
class ArrayRef:
    """A picklable pointer to one ndarray living in a segment."""

    segment: str
    dtype: str
    shape: tuple

    @property
    def nbytes(self) -> int:
        n = int(np.prod(self.shape)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ObjectHandle:
    """What actually crosses the pipe for one published payload.

    ``segment`` names the blob's segment (shared-memory mode) or is
    ``None`` with the blob carried inline (``blob``, fallback mode).
    ``digest`` content-addresses the payload — the worker-side object
    cache key — and ``wire_bytes`` is the handle's own pickled size, the
    number the benchmarks report as per-dispatch transport bytes.
    """

    digest: str
    nbytes: int
    segment: str | None = None
    blob: bytes | None = field(default=None, repr=False)
    wire_bytes: int = 0


# -- process-wide segment + object caches (both sides) ------------------------
#: Mapped segments by name.  On the dispatcher this holds every segment
#: the process created (forked throwaway-pool workers inherit these
#: mappings for free); on a pool worker it accumulates one attach per
#: segment ever resolved.
_SEGMENTS: "OrderedDict[str, Any]" = OrderedDict()
#: Names this process *created* (and therefore owns unlinking of).
_OWNED: set[str] = set()
#: Resolved payloads by content digest (worker-side memo: repeated
#: dispatches of an identical payload skip deserialization entirely).
_OBJECTS: "OrderedDict[str, Any]" = OrderedDict()
_OBJECTS_MAX = 32
#: The keyed worker cache behind :func:`worker_cached`.
_KEYED: "OrderedDict[Any, Any]" = OrderedDict()
_KEYED_MAX = 16


def _attach(name: str):
    seg = _SEGMENTS.get(name)
    if seg is None:
        if _shm is None:  # pragma: no cover - guarded by shm_available
            raise TransportError("shared memory is unavailable")
        try:
            seg = _shm.SharedMemory(name=name)
        except FileNotFoundError:
            raise TransportError(
                f"shared-memory segment {name!r} is gone — it was released "
                "(channel closed or slot superseded) while a handle to it "
                "was still in flight"
            ) from None
        _SEGMENTS[name] = seg
    return seg


def _load_array(ref: ArrayRef) -> np.ndarray:
    """Reconstruct one hoisted ndarray (the pickle-side of ``ArrayRef``).

    Returns a *read-only* view over the mapped segment: zero copies, and
    any kernel that tried to mutate shipped data raises instead of
    silently diverging from the in-process execution modes.
    """
    seg = _attach(ref.segment)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return view


def resolve_payload(handle: ObjectHandle) -> Any:
    """Materialize a published payload (worker-side entry point).

    Digest-memoized: the unpickle runs once per payload per process,
    every later dispatch of the same content returns the cached object.
    The cache is an LRU — bounded, so long sessions cycling through many
    distinct payloads (per-epoch training weights) do not grow without
    limit.
    """
    obj = _OBJECTS.get(handle.digest)
    if obj is not None or handle.digest in _OBJECTS:
        _OBJECTS.move_to_end(handle.digest)
        return _OBJECTS[handle.digest]
    if handle.blob is not None:
        blob: Any = handle.blob
    else:
        seg = _attach(handle.segment)
        blob = seg.buf[: handle.nbytes]
    obj = pickle.loads(blob)
    _OBJECTS[handle.digest] = obj
    while len(_OBJECTS) > _OBJECTS_MAX:
        _OBJECTS.popitem(last=False)
    return obj


def worker_cached(key: Any, factory: Callable[[], Any]) -> Any:
    """A worker-resident keyed cache for rebuild-style payloads.

    The generalization of the training runtime's historical single-slot
    dataset cache: any worker-side path that *re-derives* an expensive
    object from a small spec (datasets from configs, sensor templates
    from seeds) caches it here keyed by that spec's hash, so a persistent
    pool re-derives once per worker instead of once per dispatch.  The
    factory only runs on a miss; a failing factory caches nothing.
    """
    if key in _KEYED:
        _KEYED.move_to_end(key)
        return _KEYED[key]
    value = factory()
    _KEYED[key] = value
    while len(_KEYED) > _KEYED_MAX:
        _KEYED.popitem(last=False)
    return value


def payload_stats() -> dict:
    """Observability: this process's transport-cache occupancy."""
    return {
        "segments_mapped": len(_SEGMENTS),
        "segments_owned": len(_OWNED),
        "objects_cached": len(_OBJECTS),
        "keyed_cached": len(_KEYED),
    }


# -- dispatcher side ----------------------------------------------------------
class _ExtractingPickler(pickle.Pickler):
    """Pickler that hoists big plain ndarrays into channel segments."""

    def __init__(self, file, channel: "TransportChannel"):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._channel = channel
        #: Segment names of every array this blob references (for the
        #: channel's blob -> array refcounting).
        self.array_segments: list[str] = []

    def reducer_override(self, obj):
        if type(obj) is np.ndarray:
            ref = self._channel._put_array(obj)
            if ref is not None:
                self.array_segments.append(ref.segment)
                return (_load_array, (ref,))
        return NotImplemented


class TransportChannel:
    """Dispatcher-owned transport state: segments, dedup maps, stats.

    One channel per dispatch scope: the engine runner creates a per-run
    channel for throwaway pools (closed — segments unlinked — on run
    teardown), while ``repro.api.Session`` owns one persistent channel
    whose segments live until ``Session.close()``.  ``use_shm=None``
    auto-detects; ``use_shm=False`` forces the inline-pickle fallback
    (the mode benchmarks time as the "pickle path") with identical
    semantics and results.
    """

    def __init__(self, use_shm: bool | None = None):
        self.use_shm = (
            shm_available() if use_shm is None else bool(use_shm) and shm_available()
        )
        self._closed = False
        #: Array dedup: content fingerprint -> (ArrayRef, refcount).
        self._arrays: dict[str, list] = {}
        #: Blob dedup: digest -> (ObjectHandle, [array segment names]).
        self._blobs: dict[str, tuple[ObjectHandle, list[str]]] = {}
        #: Slot -> digest of the slot's current generation.
        self._slots: dict[Any, str] = {}
        self.stats = {
            "objects_published": 0,
            "publish_reuses": 0,
            "arrays_hoisted": 0,
            "array_reuses": 0,
            "segments_created": 0,
            "segment_bytes": 0,
            "segments_released": 0,
            "handle_bytes": 0,
        }

    # -- segments -------------------------------------------------------------
    def _create_segment(self, nbytes: int):
        name = _new_segment_name()
        seg = _shm.SharedMemory(name=name, create=True, size=max(nbytes, 1))
        _SEGMENTS[name] = seg
        _OWNED.add(name)
        self.stats["segments_created"] += 1
        self.stats["segment_bytes"] += nbytes
        return seg

    def _release_segment(self, name: str) -> None:
        seg = _SEGMENTS.pop(name, None)
        _OWNED.discard(name)
        if seg is not None:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - live local views
                # Something in this process still views the buffer; give
                # the name back and unlink anyway (POSIX keeps existing
                # mappings alive after unlink).
                _SEGMENTS[name] = seg
                _OWNED.add(name)
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self.stats["segments_released"] += 1

    # -- arrays ---------------------------------------------------------------
    def _put_array(self, arr: np.ndarray) -> ArrayRef | None:
        """Hoist one ndarray into a segment; ``None`` keeps it inline.

        Content-addressed: the fingerprint covers the actual bytes, so
        in-place mutation (optimizer steps between training epochs)
        naturally produces a fresh segment instead of a stale cache hit.
        """
        if not self.use_shm:
            return None
        if arr.nbytes < MIN_SHM_ARRAY_BYTES or arr.dtype.kind not in "biufc":
            return None
        data = np.ascontiguousarray(arr)
        fingerprint = hashlib.blake2b(
            data.view(np.uint8).reshape(-1).data, digest_size=16
        ).hexdigest()
        entry = self._arrays.get(fingerprint)
        if entry is not None:
            self.stats["array_reuses"] += 1
            return entry[0]
        seg = self._create_segment(data.nbytes)
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
        ref = ArrayRef(seg.name, data.dtype.str, data.shape)
        self._arrays[fingerprint] = [ref, 0]
        self.stats["arrays_hoisted"] += 1
        return ref

    def _retain_arrays(self, segments: list[str], delta: int) -> None:
        by_segment = {
            entry[0].segment: (fp, entry) for fp, entry in self._arrays.items()
        }
        for name in segments:
            found = by_segment.get(name)
            if found is None:
                continue
            fingerprint, entry = found
            entry[1] += delta
            if entry[1] <= 0:
                del self._arrays[fingerprint]
                self._release_segment(name)

    # -- publishing -----------------------------------------------------------
    def publish(self, obj: Any, slot: Any = None) -> ObjectHandle:
        """Ship ``obj`` once; return the handle every dispatch sends.

        Identical content (by digest of the extracted pickle, which in
        turn content-addresses the hoisted arrays) reuses the existing
        segments — the steady-state dispatch cost is the handle itself.
        ``slot`` names a logical mutable payload (e.g. one training
        run's epoch-start weights): publishing a *different* digest into
        an occupied slot releases the previous generation's segments, so
        evolving payloads occupy one generation of storage, not one per
        step.  Callers must not resolve a superseded generation's handle
        afterwards; dispatch/await cycles (the only users) never do.
        """
        self._check_open()
        buf = io.BytesIO()
        pickler = _ExtractingPickler(buf, self)
        pickler.dump(obj)
        blob = buf.getvalue()
        digest = hashlib.blake2b(blob, digest_size=16).hexdigest()
        cached = self._blobs.get(digest)
        if cached is not None:
            handle = cached[0]
            self.stats["publish_reuses"] += 1
            # The new pickling pass bumped no refcounts (same arrays,
            # dedup hits); nothing to retain.
        else:
            if self.use_shm:
                seg = self._create_segment(len(blob))
                seg.buf[: len(blob)] = blob
                handle = ObjectHandle(
                    digest=digest, nbytes=len(blob), segment=seg.name
                )
            else:
                handle = ObjectHandle(digest=digest, nbytes=len(blob), blob=blob)
            handle = ObjectHandle(
                digest=handle.digest,
                nbytes=handle.nbytes,
                segment=handle.segment,
                blob=handle.blob,
                wire_bytes=len(pickle.dumps(handle, pickle.HIGHEST_PROTOCOL)),
            )
            self._blobs[digest] = (handle, list(pickler.array_segments))
            self._retain_arrays(pickler.array_segments, +1)
            self.stats["objects_published"] += 1
        self.stats["handle_bytes"] += handle.wire_bytes
        tracer = current_tracer()
        if tracer is not None:
            reused = cached is not None
            tracer.count("transport.publishes")
            tracer.count("transport.publish_bytes", len(blob))
            if reused:
                tracer.count("transport.publish_reuses")
            if tracer.detail == "full":
                # Per-publish spans are high-volume; summary detail keeps
                # only the counters above.
                tracer.point(
                    "transport.publish", nbytes=len(blob), reused=reused
                )
        if slot is not None:
            previous = self._slots.get(slot)
            if previous is not None and previous != digest:
                self._release_blob(previous)
            self._slots[slot] = digest
        return handle

    def _release_blob(self, digest: str) -> None:
        cached = self._blobs.pop(digest, None)
        if cached is None:
            return
        handle, array_segments = cached
        if handle.segment is not None:
            self._release_segment(handle.segment)
        self._retain_arrays(array_segments, -1)
        _OBJECTS.pop(digest, None)

    # -- lifecycle ------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise TransportError(
                "transport channel is closed; its segments are unlinked"
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of every live segment this channel created (leak checks)."""
        names = [
            h.segment for h, _ in self._blobs.values() if h.segment is not None
        ]
        names.extend(entry[0].segment for entry in self._arrays.values())
        return names

    def close(self) -> None:
        """Unlink every segment this channel created.  Idempotent.

        Called on run teardown (per-run channels) or ``Session.close()``
        (the persistent channel).  Workers that already mapped a segment
        keep their mapping — POSIX shared memory outlives its name for
        existing maps — so in-flight results are never corrupted; only
        *new* attaches become impossible, and no names leak in
        ``/dev/shm``.
        """
        if self._closed:
            return
        for digest in list(self._blobs):
            self._release_blob(digest)
        for fingerprint in list(self._arrays):
            ref, _ = self._arrays.pop(fingerprint)
            self._release_segment(ref.segment)
        self._slots.clear()
        self._closed = True

    def __enter__(self) -> "TransportChannel":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort backstop
        try:
            self.close()
        except Exception:
            pass
