"""Pluggable executor backends behind one ``submit``-shaped protocol.

Every sharded path in the repository (engine sequence-rank sharding,
strategy-sweep fan-out, data-parallel training epochs, serve scheduler
replicas) dispatches module-level jobs through a single seam:
``executor.submit(job, *args)`` with results collected in fixed futures
order.  This module formalizes the seam the runtime has used implicitly
since PR 2 into an explicit :class:`ExecutorBackend` protocol —
``submit`` / ``map`` / ``shutdown`` / ``max_workers`` — with four
interchangeable backends:

* :class:`InProcessExecutor` — runs every job synchronously at submit
  time.  The *deterministic reference*: zero concurrency, zero
  processes, exactly the semantics every other backend is pinned
  bitwise against.
* :class:`ProcessPoolBackend` — today's production backend: a
  :func:`~repro.engine.runner.shard_executor` process pool (fork
  context), composed with the shared-memory transport channel by the
  callers that own one.
* :class:`ThreadBackend` — a thread pool, for the GIL-light BLAS-heavy
  kernels (the attention matmuls, vectorized eventification): no
  process boundary, no pickling, shared address space.
* :class:`FileQueueBackend` — jobs round-trip through *spooled files*:
  ``submit`` pickles ``(fn, args, kwargs, traced)`` to a job file in a
  spool directory, detached worker processes claim job files by atomic
  rename, execute, and publish result files the future polls for.  The
  minimal "external cluster" stand-in: nothing crosses except bytes on
  a filesystem, which *proves* every shard job is self-contained — and
  its claim/execute/publish loop is exactly the seam a real scheduler
  backend (SLURM/SGE submit scripts, a distributed queue) plugs into
  later.

Determinism: all backends execute the same module-level job functions
on the same payloads and results are consumed in submission order, so
any job set whose jobs are independent (the repository's invariant —
per-sequence RNG streams, no cross-shard state) produces bitwise
identical merged results on every backend.  ``tests/engine/
test_executors.py`` pins all four against the in-process reference.

Backends are selected declaratively via the spec field
``execution.backend`` (see ``docs/api.md``); ``repro.api.Session``
caches one live backend per kind with the same grow-only contract the
historical process pool had.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
import traceback
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.obs.tracer import SpanRecord, current_tracer, finish_wall

__all__ = [
    "ExecutorBackend",
    "InProcessExecutor",
    "ProcessPoolBackend",
    "ThreadBackend",
    "FileQueueBackend",
    "FileQueueJobError",
    "EXECUTOR_BACKENDS",
    "make_executor",
    "SPOOL_PREFIX",
]

#: File-queue spool directories carry this prefix (leak checks mirror
#: the transport layer's ``/dev/shm`` convention).
SPOOL_PREFIX = "reproq_"


def _job_name(fn: Callable) -> str:
    """Deterministic display name of a submitted job function."""
    return getattr(fn, "__qualname__", None) or getattr(
        fn, "__name__", type(fn).__name__
    )


def _open_job_span(backend: str, seq: int, fn: Callable) -> SpanRecord | None:
    """Emit the submit-side ``executor.job`` span (all backends).

    The deterministic plane (backend, sequence number, job name) is
    complete at submit; wall completion arrives later — a done-callback
    :func:`finish_wall` for pool backends, the worker capture's own root
    span for file-queue jobs.
    """
    tracer = current_tracer()
    if tracer is None:
        return None
    tracer.count("executor.jobs")
    return tracer.point(
        "executor.job", backend=backend, seq=seq, job=_job_name(fn)
    )


@runtime_checkable
class ExecutorBackend(Protocol):
    """The executor seam every sharded path dispatches through.

    ``max_workers`` is the parallelism the backend was built for (the
    shard-cut width callers size against); ``submit`` returns a future
    whose ``result()`` blocks; ``map`` applies a function over iterables
    in order; ``shutdown(wait=True)`` drains in-flight work before
    releasing resources.  After ``shutdown`` every ``submit`` raises
    ``RuntimeError`` — callers holding a stale backend fail loudly
    instead of silently re-forking.
    """

    max_workers: int

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any): ...

    def map(self, fn: Callable, *iterables: Iterable) -> Iterable: ...

    def shutdown(self, wait: bool = True) -> None: ...


# -- in-process reference ------------------------------------------------------
class InProcessExecutor:
    """Serial, synchronous execution: the deterministic reference.

    ``submit`` runs the job *immediately* in the calling process and
    returns an already-completed future.  ``max_workers`` records the
    parallelism the caller sized its shard cut for — the cut happens
    either way and shard boundaries never affect results, so the output
    is bitwise identical to every concurrent backend.
    """

    name = "in_process"

    def __init__(self, max_workers: int = 1):
        self.max_workers = max(1, int(max_workers))
        self._seq = 0
        self._closed = False

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any) -> Future:
        if self._closed:
            raise RuntimeError("cannot schedule new futures after shutdown")
        self._seq += 1
        tracer = current_tracer()
        future: Future = Future()
        # Synchronous execution nests the job's own spans (engine runs,
        # training epochs) under the job span naturally, so the job span
        # is a real context here rather than a submit-time point.
        ctx = (
            tracer.span(
                "executor.job",
                backend=self.name,
                seq=self._seq,
                job=_job_name(fn),
            )
            if tracer is not None
            else nullcontext()
        )
        if tracer is not None:
            tracer.count("executor.jobs")
        with ctx:
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                future.set_exception(exc)
        return future

    def map(self, fn: Callable, *iterables: Iterable) -> Iterable:
        return [self.submit(fn, *args).result() for args in zip(*iterables)]

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True


# -- pool-wrapping backends ----------------------------------------------------
class ProcessPoolBackend:
    """The production backend: a fork-context process pool.

    Wraps :func:`repro.engine.runner.shard_executor` (the canonical
    pool constructor) behind the protocol; callers that own a
    :class:`~repro.engine.transport.TransportChannel` compose it with
    this backend so shard payloads cross as shared-memory handles.
    """

    name = "process_pool"

    def __init__(self, max_workers: int):
        from repro.engine.runner import shard_executor

        self.max_workers = int(max_workers)
        self._seq = 0
        self._pool = shard_executor(self.max_workers)

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any):
        self._seq += 1
        span = _open_job_span(self.name, self._seq, fn)
        future = self._pool.submit(fn, *args, **kwargs)
        if span is not None:
            # Wall-only completion: the callback thread touches nothing
            # in the deterministic plane (see finish_wall).
            future.add_done_callback(lambda _f: finish_wall(span))
        return future

    def map(self, fn: Callable, *iterables: Iterable) -> Iterable:
        return self._pool.map(fn, *iterables)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


class ThreadBackend:
    """A thread pool for GIL-light kernels: no pickling, shared memory.

    The repository's numeric kernels spend their time inside BLAS and
    vectorized numpy, which release the GIL; shard jobs keep all
    cross-frame state in per-sequence ``SequenceState`` objects, so
    threads sharing one resolved payload race on nothing.  Bitwise
    identical to the in-process reference (pinned).
    """

    name = "thread"

    def __init__(self, max_workers: int):
        self.max_workers = int(max_workers)
        self._seq = 0
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-shard",
        )

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any):
        self._seq += 1
        span = _open_job_span(self.name, self._seq, fn)
        future = self._pool.submit(fn, *args, **kwargs)
        if span is not None:
            future.add_done_callback(lambda _f: finish_wall(span))
        return future

    def map(self, fn: Callable, *iterables: Iterable) -> Iterable:
        return self._pool.map(fn, *iterables)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


# -- file-queue backend --------------------------------------------------------
class FileQueueJobError(RuntimeError):
    """A file-queue job raised in its worker; carries the traceback."""


def _file_queue_worker(
    jobs_dir: str, results_dir: str, stop_path: str, poll_s: float
) -> None:
    """Worker loop: claim job files by atomic rename, execute, publish.

    Module-level so the fork-spawned worker process has a clean entry
    point.  Claiming is ``os.rename(name.job -> name.claimed)`` — atomic
    on POSIX, so exactly one worker wins each job.  Results publish the
    same way jobs do: write-then-rename, so the dispatcher never reads a
    torn result.
    """
    jobs = Path(jobs_dir)
    results = Path(results_dir)
    stop = Path(stop_path)
    while True:
        claimed = None
        # Sorted glob (REP104): claim in submission order so a single
        # worker drains the queue FIFO.
        for job_path in sorted(jobs.glob("*.job")):
            target = job_path.with_suffix(".claimed")
            try:
                os.rename(job_path, target)
            except OSError:
                continue  # another worker won the claim
            claimed = target
            break
        if claimed is None:
            if stop.exists():
                return
            time.sleep(poll_s)  # repro: allow[REP102] queue poll backoff, not a data path
            continue
        name = claimed.stem
        try:
            fn, args, kwargs, traced = pickle.loads(claimed.read_bytes())
            if traced:
                # Spool this job's spans next to its result; the
                # dispatcher merges them on drain.  capture_job writes
                # the spool before we publish the result below, so a
                # resolved future implies its spans exist.
                from repro.obs.spool import capture_job

                result = capture_job(
                    results / f"{name}.spans", fn, args, kwargs
                )
            else:
                result = fn(*args, **kwargs)
            payload: tuple = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 - shipped to dispatcher
            payload = (
                "error",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        tmp = results / f".tmp-{name}"
        tmp.write_bytes(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, results / f"{name}.result")
        claimed.unlink()


class _FileQueueFuture:
    """A future backed by a result file the worker will publish."""

    def __init__(self, path: Path, poll_s: float):
        self._path = path
        self._poll_s = poll_s
        self._payload: tuple | None = None

    def done(self) -> bool:
        return self._payload is not None or self._path.exists()

    def _load(self) -> tuple:
        if self._payload is None:
            self._payload = pickle.loads(self._path.read_bytes())
        return self._payload

    def result(self, timeout: float | None = None) -> Any:
        deadline = (
            None
            if timeout is None
            else time.monotonic() + timeout  # repro: allow[REP102] future timeout bookkeeping
        )
        while not self._path.exists():
            if deadline is not None and time.monotonic() > deadline:  # repro: allow[REP102] future timeout bookkeeping
                raise TimeoutError(f"file-queue result {self._path.name}")
            time.sleep(self._poll_s)  # repro: allow[REP102] result poll backoff, not a data path
        payload = self._load()
        if payload[0] == "ok":
            return payload[1]
        raise FileQueueJobError(f"{payload[1]}\n{payload[2]}")

    def exception(self, timeout: float | None = None):
        try:
            self.result(timeout)
        except FileQueueJobError as exc:
            return exc
        return None


class FileQueueBackend:
    """Jobs round-trip through spooled files: the external-queue stand-in.

    ``submit`` pickles the whole job to ``spool/jobs/<seq>.job`` (write
    to a temp name, atomic rename); detached fork-context worker
    processes claim jobs by rename, execute them, and publish
    ``spool/results/<seq>.result`` files the returned future polls for.
    Nothing else crosses: no inherited queue objects, no pipes — which
    is the point.  A job that runs here is *provably self-contained*
    and would run the same under any external scheduler that can move a
    file and invoke Python.

    Workers fork lazily on first submit.  ``shutdown(wait=True)`` drops
    a stop marker, lets workers drain the queue, joins them and removes
    the spool directory (``wait=False`` terminates instead).  Spool
    directories live under ``$TMPDIR`` with the :data:`SPOOL_PREFIX`
    prefix so leak checks can spot orphans, mirroring the transport
    layer's ``/dev/shm`` convention.
    """

    name = "file_queue"

    def __init__(
        self,
        max_workers: int = 1,
        root: str | Path | None = None,
        poll_s: float = 0.002,
    ):
        self.max_workers = max(1, int(max_workers))
        self._own_root = root is None
        self.root = Path(
            tempfile.mkdtemp(prefix=SPOOL_PREFIX) if root is None else root
        )
        self._jobs = self.root / "jobs"
        self._results = self.root / "results"
        self._stop = self.root / "stop"
        for path in (self._jobs, self._results):
            path.mkdir(parents=True, exist_ok=True)
        self._poll_s = poll_s
        self._procs: list = []
        self._seq = 0
        #: submit-side executor.job span per job name, for drain_spans
        #: to re-parent worker captures under.
        self._job_spans: dict[str, SpanRecord] = {}
        self._closed = False

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            ctx = multiprocessing.get_context()
        for _ in range(self.max_workers):
            proc = ctx.Process(
                target=_file_queue_worker,
                args=(
                    str(self._jobs),
                    str(self._results),
                    str(self._stop),
                    self._poll_s,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any):
        if self._closed:
            raise RuntimeError("cannot schedule new futures after shutdown")
        self._ensure_workers()
        self._seq += 1
        name = f"{self._seq:08d}"
        span = _open_job_span(self.name, self._seq, fn)
        if span is not None:
            self._job_spans[name] = span
        tmp = self._jobs / f".tmp-{name}"
        tmp.write_bytes(
            pickle.dumps(
                (fn, args, kwargs, span is not None),
                pickle.HIGHEST_PROTOCOL,
            )
        )
        os.replace(tmp, self._jobs / f"{name}.job")
        return _FileQueueFuture(
            self._results / f"{name}.result", self._poll_s
        )

    def map(self, fn: Callable, *iterables: Iterable) -> Iterable:
        futures = [self.submit(fn, *args) for args in zip(*iterables)]
        return [future.result() for future in futures]

    def drain_spans(self, tracer) -> int:
        """Merge spooled worker captures into ``tracer``; returns spans.

        Spools are consumed in job-sequence order (sorted names — the
        claim/race order workers ran in is irrelevant), each capture
        re-parented under its submit-side ``executor.job`` span, so the
        merged trace is deterministic however the workers interleaved.
        """
        from repro.obs.spool import read_spool

        merged = 0
        for spool in sorted(self._results.glob("*.spans")):
            name = spool.stem
            merged += tracer.merge_records(
                read_spool(spool), parent=self._job_spans.get(name)
            )
            spool.unlink()
        if merged:
            tracer.count("executor.worker_spans_merged", merged)
        return merged

    def shutdown(self, wait: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.touch()
        for proc in self._procs:
            if wait:
                proc.join()
            else:
                proc.terminate()
                proc.join()
        self._procs.clear()
        if self._own_root:
            shutil.rmtree(self.root, ignore_errors=True)

    def __del__(self):  # pragma: no cover - best-effort backstop
        try:
            self.shutdown(wait=False)
        except Exception:
            pass


#: Backend registry: the ``execution.backend`` spec values.
EXECUTOR_BACKENDS: dict[str, type] = {
    "in_process": InProcessExecutor,
    "process_pool": ProcessPoolBackend,
    "thread": ThreadBackend,
    "file_queue": FileQueueBackend,
}


def make_executor(backend: str, max_workers: int):
    """Build a backend by registry name (the ``execution.backend`` seam)."""
    cls = EXECUTOR_BACKENDS.get(backend)
    if cls is None:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"choose from {sorted(EXECUTOR_BACKENDS)}"
        )
    return cls(max_workers)
