"""Canonical stage-graph configurations.

The tracking graph is the full in-sensor/host dataflow of Fig. 8 — what
``BlissCamPipeline.evaluate`` runs.  The strategy graph is the Fig. 12/15
harness — what ``core.variants.evaluate_strategy`` runs.  Both are plain
:class:`~repro.engine.stage.StageGraph` instances over the same runner, so
every figure benchmark and the CLI exercise one code path.

Everything a graph closes over (predictors, state factories) is kept as a
plain picklable class rather than a closure: the sharded execution mode
ships the runner — graph, stages and state factory included — to worker
processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.engine.context import SequenceState
from repro.engine.runner import SequenceRunner
from repro.engine.stage import StageGraph
from repro.engine.stages import (
    EventifyPairStage,
    EventifyStage,
    GazeRegressStage,
    ROIPredictStage,
    ROIReuseStage,
    ReadoutStage,
    SampleStage,
    SegmentOrReuseStage,
    SegmentStage,
    StatsCollectorStage,
    StrategySampleStage,
)

__all__ = [
    "build_tracking_graph",
    "build_strategy_graph",
    "tracking_runner",
    "strategy_runner",
    "SensorSpawnFactory",
]


def build_tracking_graph(
    *,
    predictor: Callable[[np.ndarray, np.ndarray | None], np.ndarray],
    segmenter,
    gaze_estimator,
    height: int,
    width: int,
    reuse_window: int = 1,
) -> StageGraph:
    """The full BlissCam dataflow as a stage graph.

    ``predictor`` is the (margin-expanded) ROI predictor callable; the
    reuse policy wraps it as a first-class stage — no sensor internals are
    touched.
    """
    tokens_total = segmenter.config.tokens
    return StageGraph(
        [
            EventifyStage(),
            ROIReuseStage(
                ROIPredictStage(predictor, height, width), window=reuse_window
            ),
            SampleStage(),
            ReadoutStage(),
            SegmentStage(segmenter),
            GazeRegressStage(gaze_estimator, per_sequence_state=True),
            StatsCollectorStage(tokens_total, segmenter.config.patch),
        ]
    )


@dataclass
class SensorSpawnFactory:
    """``seq_index -> SequenceState`` with a per-sequence sensor spawn.

    A plain class (not a closure) so sharded runners can pickle it to
    worker processes.  Runtime noise streams are keyed by
    ``(sensor_seed, seq_index)`` — order- and process-insensitive, so
    sequential, lockstep and sharded execution draw identical randomness.
    """

    sensor_template: Any
    sensor_seed: int

    def __call__(self, seq_index: int) -> SequenceState:
        state = SequenceState(seq_index=seq_index)
        state.sensor = self.sensor_template.spawn(
            [self.sensor_seed, seq_index]
        )
        return state


def tracking_runner(
    *,
    sensor_template,
    sensor_seed: int,
    graph: StageGraph,
    batch_size: int | None = None,
    retain_intermediates: bool = True,
) -> SequenceRunner:
    """A runner that spawns one sensor stream per evaluated sequence.

    Each sequence gets a clone of the calibrated template chip whose
    runtime noise streams are keyed by ``(sensor_seed, seq_index)`` —
    order-insensitive, so sequential, lockstep and sharded execution draw
    identical randomness.
    """
    return SequenceRunner(
        graph,
        SensorSpawnFactory(sensor_template, sensor_seed),
        batch_size=batch_size,
        retain_intermediates=retain_intermediates,
    )


def build_strategy_graph(
    *,
    strategy,
    segmenter,
    gaze_estimator,
    rng: np.random.Generator,
    use_gt_roi: bool = True,
    sigma: float | None = None,
) -> StageGraph:
    """The Fig. 12/15 strategy-evaluation dataflow as a stage graph.

    ``rng`` seeds the *per-sequence* strategy spawns: one draw derives a
    base seed and every sequence samples from its own
    ``strategy.spawn([base_seed, seq_index])`` stream (mirroring the
    sensor's spawn design).  Streams are keyed by sequence index, never
    by execution order, so strategy graphs run sequentially, in lockstep,
    or sharded with bitwise-identical results.
    """
    strategy_seed = int(rng.integers(2**32))
    return StageGraph(
        [
            EventifyPairStage(sigma=sigma),
            StrategySampleStage(strategy, strategy_seed, use_gt_roi=use_gt_roi),
            SegmentOrReuseStage(segmenter),
            # Per-sequence fallback state, like the tracking graph: the
            # estimator's last-gaze fallback must not cross sequence
            # boundaries or batched/sharded runs would diverge from the
            # sequential reference.
            GazeRegressStage(gaze_estimator, per_sequence_state=True),
        ]
    )


def strategy_runner(
    graph: StageGraph,
    batch_size: int | None = None,
    retain_intermediates: bool = True,
) -> SequenceRunner:
    """A runner for strategy graphs.

    Per-sequence strategy spawns (see :func:`build_strategy_graph`) make
    sequences independent, so all three execution modes — sequential,
    batched lockstep, and sharded — are available and bitwise-equivalent.
    Pass ``retain_intermediates=False`` when only the per-frame scalars
    (gaze, stats) are consumed, e.g. ``evaluate_strategy``.
    """
    return SequenceRunner(
        graph, batch_size=batch_size, retain_intermediates=retain_intermediates
    )
