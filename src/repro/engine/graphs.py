"""Canonical stage-graph configurations.

The tracking graph is the full in-sensor/host dataflow of Fig. 8 — what
``BlissCamPipeline.evaluate`` runs.  The strategy graph is the Fig. 12/15
harness — what ``core.variants.evaluate_strategy`` runs.  Both are plain
:class:`~repro.engine.stage.StageGraph` instances over the same runner, so
every figure benchmark and the CLI exercise one code path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.context import SequenceState
from repro.engine.runner import SequenceRunner
from repro.engine.stage import StageGraph
from repro.engine.stages import (
    EventifyPairStage,
    EventifyStage,
    GazeRegressStage,
    ROIPredictStage,
    ROIReuseStage,
    ReadoutStage,
    SampleStage,
    SegmentOrReuseStage,
    SegmentStage,
    StatsCollectorStage,
    StrategySampleStage,
)

__all__ = [
    "build_tracking_graph",
    "build_strategy_graph",
    "tracking_runner",
    "strategy_runner",
]


def build_tracking_graph(
    *,
    predictor: Callable[[np.ndarray, np.ndarray | None], np.ndarray],
    segmenter,
    gaze_estimator,
    height: int,
    width: int,
    reuse_window: int = 1,
) -> StageGraph:
    """The full BlissCam dataflow as a stage graph.

    ``predictor`` is the (margin-expanded) ROI predictor callable; the
    reuse policy wraps it as a first-class stage — no sensor internals are
    touched.
    """
    tokens_total = segmenter.config.tokens
    return StageGraph(
        [
            EventifyStage(),
            ROIReuseStage(
                ROIPredictStage(predictor, height, width), window=reuse_window
            ),
            SampleStage(),
            ReadoutStage(),
            SegmentStage(segmenter),
            GazeRegressStage(gaze_estimator, per_sequence_state=True),
            StatsCollectorStage(tokens_total, segmenter.config.patch),
        ]
    )


def tracking_runner(
    *,
    sensor_template,
    sensor_seed: int,
    graph: StageGraph,
    batch_size: int | None = None,
    retain_intermediates: bool = True,
) -> SequenceRunner:
    """A runner that spawns one sensor stream per evaluated sequence.

    Each sequence gets a clone of the calibrated template chip whose
    runtime noise streams are keyed by ``(sensor_seed, seq_index)`` —
    order-insensitive, so sequential and lockstep execution draw
    identical randomness.
    """

    def state_factory(seq_index: int) -> SequenceState:
        state = SequenceState(seq_index=seq_index)
        state.sensor = sensor_template.spawn([sensor_seed, seq_index])
        return state

    return SequenceRunner(
        graph,
        state_factory,
        batch_size=batch_size,
        retain_intermediates=retain_intermediates,
    )


def build_strategy_graph(
    *,
    strategy,
    segmenter,
    gaze_estimator,
    rng: np.random.Generator,
    use_gt_roi: bool = True,
    sigma: float | None = None,
) -> StageGraph:
    """The Fig. 12/15 strategy-evaluation dataflow as a stage graph."""
    return StageGraph(
        [
            EventifyPairStage(sigma=sigma),
            StrategySampleStage(strategy, rng, use_gt_roi=use_gt_roi),
            SegmentOrReuseStage(segmenter),
            # Historical harness behaviour: the estimator's fallback state
            # crosses sequence boundaries (and the shared strategy RNG
            # already serializes execution), so no per-sequence state.
            GazeRegressStage(gaze_estimator, per_sequence_state=False),
        ]
    )


def strategy_runner(graph: StageGraph) -> SequenceRunner:
    """Strategy graphs share one RNG across frames: sequential only."""
    return SequenceRunner(graph)
