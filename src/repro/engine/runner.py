"""The sequence runner: executes a stage graph over batches of sequences.

Three execution modes share one stage graph and one set of numeric
kernels:

* **sequential** — the reference mode: sequences one after another, frames
  in order, each stage's ``process`` per frame.  This is the staged
  transcription of the original monolithic evaluation loops.
* **batched** — runs up to ``batch_size`` sequences in *lockstep*: at each
  timestep every live sequence contributes one frame and each stage's
  ``process_batch`` handles the whole rank at once (vectorized
  eventification, grouped packed ViT inference, vectorized RLE
  accounting).  Because every sequence owns its own sensor spawn (and all
  cross-frame state lives in its ``SequenceState``), the two modes draw
  identical random streams and produce bitwise-identical contexts — the
  engine test suite asserts this end-to-end.
* **sharded** — ``workers >= 2`` partitions the sequence rank into
  contiguous shards and executes each shard in a worker *process* using
  the sequential or batched kernels above.  Sequences share no mutable
  state (per-sequence random streams are keyed by sequence index, never
  by execution order), so a shard's results do not depend on which
  process runs it: merged ``EngineRun``s are bitwise-identical to the
  single-process modes.  Requires the graph, the state factory and the
  sequences to be picklable — the canonical graphs keep their callables
  as plain classes for exactly this reason.

Results come back as an :class:`EngineRun`: the completed frame contexts
in *sequence-major* order (identical ordering in all modes, so
downstream accuracy statistics are reduction-order independent) plus
per-stage wall-clock timings for throughput/attribution reporting.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.context import FrameContext, SequenceState
from repro.engine.stage import StageGraph
from repro.engine.transport import ObjectHandle, TransportChannel, resolve_payload
from repro.obs.tracer import current_tracer

__all__ = [
    "SequenceRunner",
    "EngineRun",
    "StageTiming",
    "shard_executor",
    "contiguous_shards",
]

#: Shard oversubscription when an external (persistent) executor runs the
#: shards: cutting the rank into ``workers * STEAL_FACTOR`` pieces lets an
#: idle worker steal the next pending shard, so unequal sequence lengths
#: no longer leave workers stalled behind one long contiguous shard.
STEAL_FACTOR = 4


@dataclass
class StageTiming:
    """Accumulated wall-clock cost of one stage over a run."""

    seconds: float = 0.0
    frames: int = 0
    calls: int = 0

    @property
    def seconds_per_frame(self) -> float:
        return self.seconds / self.frames if self.frames else 0.0


@dataclass
class EngineRun:
    """Everything one :meth:`SequenceRunner.run` produced."""

    contexts: list[FrameContext]
    stage_timings: dict[str, StageTiming]
    wall_seconds: float
    batched: bool
    #: Worker processes the run was sharded over (1 = in-process).
    workers: int = 1
    #: Transport accounting for sharded runs (``None`` in-process):
    #: mode ("shm"/"pickle"), dispatches, per-dispatch payload bytes
    #: (what actually crossed the pipe), and segment bytes written/reused
    #: — the evidence behind the benchmark's transport columns.
    transport: dict | None = None

    @property
    def evaluated(self) -> list[FrameContext]:
        """Contexts that made it through the full graph (non-bootstrap)."""
        return [c for c in self.contexts if not c.skipped]

    @property
    def frames_per_second(self) -> float:
        n = len(self.evaluated)
        return n / self.wall_seconds if self.wall_seconds > 0 else float("inf")


def _default_state_factory(seq_index: int) -> SequenceState:
    return SequenceState(seq_index=seq_index)


def _execute_shard(
    runner: "SequenceRunner",
    shard: list[tuple[int, Any]],
    batched: bool,
) -> tuple[list[FrameContext], dict[str, StageTiming]]:
    """Run one shard with the in-process kernels (worker-side entry point).

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; the runner (graph + state factory) travels with the task.
    """
    timings = {name: StageTiming() for name in runner.graph.stage_names}
    if batched:
        contexts = runner._run_batched(shard, timings)
    else:
        contexts = runner._run_sequential(shard, timings)
    return contexts, timings


def _execute_shard_handles(
    runner_handle: ObjectHandle,
    shard_handle: ObjectHandle,
    batched: bool,
) -> tuple[list[FrameContext], dict[str, StageTiming]]:
    """Transport-mode worker entry: resolve handles, then run the shard.

    The runner and the shard's sequences arrive as content-addressed
    :class:`~repro.engine.transport.ObjectHandle`\\ s: big arrays map
    read-only from shared memory and repeated dispatches of identical
    payloads hit the worker's digest cache instead of re-deserializing.
    Stages keep all cross-frame state in ``SequenceState`` (never on
    themselves), so executing a cached runner object repeatedly is
    exactly as stateless as unpickling a fresh copy per task — the
    sharded parity suites pin this.
    """
    runner = resolve_payload(runner_handle)
    shard = resolve_payload(shard_handle)
    return _execute_shard(runner, shard, batched)


def _pool_context():
    """Prefer fork (inherits the warm interpreter; cheap at CI scale)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return multiprocessing.get_context()


def contiguous_shards(items: list, n_shards: int) -> list[list]:
    """Cut ``items`` into up to ``n_shards`` contiguous balanced pieces.

    Empty pieces are dropped; concatenating the shards in order
    reproduces ``items`` exactly — the property every fixed-order merge
    in the repository relies on (the engine's sequence-rank sharding
    below, the training runtime's per-sequence gradient reduction, and
    the serve runtime's replica partitioning).  ``n_shards <= 0`` is a
    caller bug and raises instead of silently dropping every item.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    bounds = np.linspace(0, len(items), n_shards + 1).astype(int)
    return [
        items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def shard_executor(max_workers: int) -> ProcessPoolExecutor:
    """A process pool suitable for sharded runs.

    The canonical constructor for *persistent* pools (``repro.api``'s
    :class:`Session` owns one and reuses it across runs); standalone
    ``run(workers=N)`` calls without an injected executor still build a
    throwaway pool per call from the same context.
    """
    return ProcessPoolExecutor(
        max_workers=max_workers, mp_context=_pool_context()
    )


class SequenceRunner:
    """Execute a :class:`StageGraph` over sequences of frames.

    Parameters
    ----------
    graph:
        The stage graph (or a plain list of stages).
    state_factory:
        ``seq_index -> SequenceState``; builds the per-sequence state
        (e.g. spawning a per-sequence sensor from a calibrated template).
    batch_size:
        Lockstep width in batched mode; ``None`` runs all sequences in
        one rank.
    """

    def __init__(
        self,
        graph: StageGraph | Sequence,
        state_factory: Callable[[int], SequenceState] | None = None,
        batch_size: int | None = None,
        retain_intermediates: bool = True,
    ):
        self.graph = graph if isinstance(graph, StageGraph) else StageGraph(graph)
        self.state_factory = state_factory or _default_state_factory
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        self.batch_size = batch_size
        #: When False, each context's bulky per-frame products (event map,
        #: masks, sparse frame, seg map, readout) are dropped as soon as
        #: the last stage has consumed them, so run memory stays O(frames
        #: x scalars) instead of O(frames x frame size) — the evaluation
        #: collectors only need gaze + stats.
        self.retain_intermediates = retain_intermediates

    # -- context construction ------------------------------------------------
    @staticmethod
    def _contexts_for(seq_index: int, seq: Any) -> list[FrameContext]:
        """Build the frame contexts of one sequence.

        ``seq`` needs ``frames`` (T, H, W); ground-truth attributes
        (``gazes``, ``segmentations``, ``roi_boxes``) are optional.
        """
        frames = seq.frames
        gazes = getattr(seq, "gazes", None)
        segs = getattr(seq, "segmentations", None)
        boxes = getattr(seq, "roi_boxes", None)
        out = []
        for t in range(frames.shape[0]):
            out.append(
                FrameContext(
                    seq_index=seq_index,
                    t=t,
                    frame=frames[t],
                    prev_frame=frames[t - 1] if t > 0 else None,
                    gaze_true=gazes[t] if gazes is not None else None,
                    seg_true=segs[t] if segs is not None else None,
                    gt_box=boxes[t] if boxes is not None else None,
                )
            )
        return out

    # -- execution ----------------------------------------------------------
    def run(
        self,
        sequences: Sequence[tuple[int, Any]],
        batched: bool = False,
        workers: int | None = None,
        executor: Executor | None = None,
        transport: TransportChannel | bool | None = None,
    ) -> EngineRun:
        """Run the graph over ``[(seq_index, sequence), ...]``.

        ``workers >= 2`` shards the sequence rank across that many worker
        processes; each shard runs the sequential or batched kernels
        (per ``batched``) and the merged result is bitwise-identical to
        the single-process modes.  ``None``/``1`` runs in-process.

        ``executor`` injects an existing pool for the sharded mode instead
        of forking a fresh one per call (the historical per-call cost):
        a persistent :func:`shard_executor` — e.g. the one owned by
        ``repro.api.Session`` — can then be shared across runs, tests and
        benches.  With an injected executor the rank is cut into
        ``workers * STEAL_FACTOR`` contiguous shards so idle workers
        steal pending shards when sequence lengths are unequal; shard
        boundaries never affect results, only scheduling.

        ``transport`` controls how shard payloads reach the workers:

        * ``None`` (default) — a per-run
          :class:`~repro.engine.transport.TransportChannel` ships the
          runner and the sequences as content-addressed shared-memory
          handles (plain pickle where shared memory is unavailable) and
          unlinks its segments on run teardown;
        * a channel instance — a *persistent* channel (e.g. the one
          ``repro.api.Session`` owns) whose segments outlive this run,
          so repeated runs ship each payload's bytes once;
        * ``False`` — force the inline-pickle path (what the benchmarks
          time as the pre-transport baseline).

        All transport modes are bitwise-identical; the run's
        :attr:`EngineRun.transport` records what actually moved.
        """
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if executor is not None and (workers or 1) < 2:
            raise ValueError(
                "executor was injected but workers < 2 would run in-process "
                "and silently ignore it; pass workers >= 2 to shard"
            )
        sequences = list(sequences)
        n_workers = min(workers or 1, len(sequences))
        start = time.perf_counter()  # repro: allow[REP102] run wall-time metric
        transport_info = None
        if n_workers >= 2:
            contexts, timings, transport_info = self._run_sharded(
                sequences, batched, n_workers, executor, transport
            )
        else:
            n_workers = 1
            timings = {name: StageTiming() for name in self.graph.stage_names}
            if batched:
                contexts = self._run_batched(sequences, timings)
            else:
                contexts = self._run_sequential(sequences, timings)
        wall = time.perf_counter() - start  # repro: allow[REP102] run wall-time metric
        tracer = current_tracer()
        if tracer is not None:
            # Span view of the run: the merged StageTiming table becomes
            # one engine.run span with per-stage children.  Point spans —
            # the measurements already exist; stage order is graph order
            # (deterministic), wall durations ride the wall plane.
            run_span = tracer.point(
                "engine.run",
                wall_dur=wall,
                sequences=len(sequences),
                frames=len(contexts),
                batched=batched,
                workers=n_workers,
            )
            for name, timing in timings.items():
                tracer.point(
                    "engine.stage",
                    parent=run_span,
                    wall_dur=timing.seconds,
                    stage=name,
                    frames=timing.frames,
                    calls=timing.calls,
                )
            tracer.count("engine.runs")
            tracer.count("engine.frames", len(contexts))
        return EngineRun(
            contexts=contexts,
            stage_timings=timings,
            wall_seconds=wall,
            batched=batched,
            workers=n_workers,
            transport=transport_info,
        )

    def _run_sharded(
        self,
        sequences: list[tuple[int, Any]],
        batched: bool,
        workers: int,
        executor: Executor | None = None,
        transport: TransportChannel | bool | None = None,
    ) -> tuple[list[FrameContext], dict[str, StageTiming], dict]:
        # Contiguous balanced shards: concatenating shard outputs in shard
        # order reproduces the sequence-major ordering of the in-process
        # modes exactly.  An injected executor gets an oversubscribed cut
        # (work stealing); a throwaway pool gets one shard per worker.
        n_shards = (
            min(len(sequences), workers * STEAL_FACTOR) if executor else workers
        )
        shards = contiguous_shards(sequences, n_shards)
        if isinstance(transport, TransportChannel):
            channel, own_channel = transport, False
        else:
            # Per-run channel: ``None`` auto-detects shared memory,
            # ``False`` forces the inline-pickle fallback.  Either way
            # the channel (and its segments) dies with this run.
            channel = TransportChannel(use_shm=None if transport is None else False)
            own_channel = True
        try:
            before = dict(channel.stats)
            # Publish the payloads *before* forking a throwaway pool:
            # fork-inherited mappings make the workers' segment attaches
            # free.  The runner ships once per run; each shard ships as
            # its own handle so the work-stealing dispatch stays per-shard.
            runner_handle = channel.publish(self)
            shard_handles = [channel.publish(shard) for shard in shards]
            tasks = [
                (runner_handle, handle, batched) for handle in shard_handles
            ]
            if executor is not None:
                # submit() preserves shard order through the futures list
                # while letting the pool hand the next pending shard to
                # whichever worker frees up first.
                futures = [
                    executor.submit(_execute_shard_handles, *task)
                    for task in tasks
                ]
                results = [f.result() for f in futures]
            else:
                with ProcessPoolExecutor(
                    max_workers=len(shards), mp_context=_pool_context()
                ) as pool:
                    # map() preserves shard order; sequences within a shard
                    # keep their relative order inside the worker.
                    results = list(
                        pool.map(_execute_shard_handles, *zip(*tasks))
                    )
            dispatch_bytes = sum(
                runner_handle.wire_bytes + handle.wire_bytes
                for handle in shard_handles
            )
            transport_info = {
                "mode": "shm" if channel.use_shm else "pickle",
                "persistent_channel": not own_channel,
                "dispatches": len(shards),
                "payload_bytes": dispatch_bytes,
                "payload_bytes_per_dispatch": dispatch_bytes / len(shards),
                "segment_bytes_written": (
                    channel.stats["segment_bytes"] - before["segment_bytes"]
                ),
                "segments_created": (
                    channel.stats["segments_created"]
                    - before["segments_created"]
                ),
                "publish_reuses": (
                    channel.stats["publish_reuses"] - before["publish_reuses"]
                ),
            }
        finally:
            if own_channel:
                channel.close()
        contexts: list[FrameContext] = []
        timings: dict[str, StageTiming] = {
            name: StageTiming() for name in self.graph.stage_names
        }
        # Summed timings are CPU seconds across *concurrent* workers —
        # attribution shares stay meaningful, but they are not wall clock
        # (the run's wall_seconds is measured by the caller).
        for shard_contexts, shard_timings in results:
            contexts.extend(shard_contexts)
            # Sorted operands (REP104): the merged float totals must not
            # depend on the per-shard dict insertion order.
            for name, timing in sorted(shard_timings.items()):
                total = timings[name]
                total.seconds += timing.seconds
                total.frames += timing.frames
                total.calls += timing.calls
        return contexts, timings, transport_info

    def _run_sequential(self, sequences, timings) -> list[FrameContext]:
        contexts: list[FrameContext] = []
        for seq_index, seq in sequences:
            state = self.state_factory(seq_index)
            for stage in self.graph:
                stage.start_sequence(state)
            for ctx in self._contexts_for(seq_index, seq):
                for stage in self.graph:
                    if ctx.skipped:
                        break
                    t0 = time.perf_counter()  # repro: allow[REP102] stage timing attribution
                    stage.process(ctx, state)
                    dt = time.perf_counter() - t0  # repro: allow[REP102] stage timing attribution
                    timing = timings[stage.name]
                    timing.seconds += dt
                    timing.frames += 1
                    timing.calls += 1
                    ctx.stage_times[stage.name] = dt
                if not self.retain_intermediates:
                    ctx.release_intermediates()
                contexts.append(ctx)
        return contexts

    def _run_batched(self, sequences, timings) -> list[FrameContext]:
        # Lanes are keyed by *position* in ``sequences``, not by sequence
        # index — a repeated index is two independent lanes (exactly as
        # the sequential mode treats it).
        if not sequences:
            return []
        lanes: dict[int, list[FrameContext]] = {}
        width = self.batch_size or len(sequences)
        for chunk_start in range(0, len(sequences), width):
            positions = range(
                chunk_start, min(chunk_start + width, len(sequences))
            )
            states = {}
            for pos in positions:
                seq_index, seq = sequences[pos]
                state = self.state_factory(seq_index)
                for stage in self.graph:
                    stage.start_sequence(state)
                states[pos] = state
                lanes[pos] = self._contexts_for(seq_index, seq)
            horizon = max(len(lanes[pos]) for pos in positions)
            for t in range(horizon):
                rank = [
                    (lanes[pos][t], states[pos])
                    for pos in positions
                    if t < len(lanes[pos])
                ]
                for stage in self.graph:
                    live = [(c, s) for c, s in rank if not c.skipped]
                    if not live:
                        break
                    ctxs = [c for c, _ in live]
                    seqs = [s for _, s in live]
                    t0 = time.perf_counter()  # repro: allow[REP102] stage timing attribution
                    stage.process_batch(ctxs, seqs)
                    dt = time.perf_counter() - t0  # repro: allow[REP102] stage timing attribution
                    timing = timings[stage.name]
                    timing.seconds += dt
                    timing.frames += len(ctxs)
                    timing.calls += 1
                    share = dt / len(ctxs)
                    for c in ctxs:
                        c.stage_times[stage.name] = share
                if not self.retain_intermediates:
                    for ctx, _ in rank:
                        ctx.release_intermediates()
        # Sequence-major order, exactly as the sequential mode emits.
        return [ctx for pos in range(len(sequences)) for ctx in lanes[pos]]
