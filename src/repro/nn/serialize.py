"""Checkpoint save/load for Module state dicts via ``numpy.savez``."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Write the module's state dict to ``path`` (.npz appended if absent)."""
    state = module.state_dict()
    # npz keys cannot be empty; dotted parameter names are fine.
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Load a state dict written by :func:`save_checkpoint` into ``module``."""
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"
    with np.load(path) as data:
        module.load_state_dict({k: data[k] for k in data.files})
