"""Core module/parameter abstractions of the numpy DNN framework.

The framework follows the classic layer-wise backpropagation design: every
:class:`Module` implements a ``forward`` pass that caches whatever it needs,
and a ``backward`` pass that receives the gradient of the loss with respect
to the module output and returns the gradient with respect to the module
input, accumulating parameter gradients along the way.

This is deliberately simpler than a full autograd tape: the networks in this
repository (ViT segmentation, ROI prediction CNN, RITnet/EdGaze baselines)
are all feed-forward chains with a small number of residual connections,
which the layer classes model explicitly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor: the value plus its accumulated gradient.

    Parameters
    ----------
    data:
        Initial value. Stored as ``float64`` for numerically robust
        small-scale training (the default numpy dtype).
    name:
        Optional human-readable identifier used in state dicts.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __getstate__(self) -> dict:
        """Pickle without the gradient buffer.

        Parameters travel across process boundaries constantly — the
        engine ships whole stage graphs to shard workers, the training
        runtime ships epoch-start weights every epoch — and no consumer
        reads a *shipped* gradient (workers zero or overwrite it, and
        gradient results return as plain arrays).  Dropping ``grad``
        halves every such payload.
        """
        return {"data": self.data, "name": self.name}

    def __setstate__(self, state: dict) -> None:
        self.data = state["data"]
        self.name = state["name"]
        self.grad = np.zeros_like(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and networks.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Parameters
    and sub-modules assigned as attributes are discovered automatically, so
    ``parameters()``/``state_dict()`` work without manual registration.
    """

    def __init__(self):
        self.training = True

    # -- attribute discovery ------------------------------------------------
    def _children(self) -> Iterator[tuple[str, "Module"]]:
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{key}.{i}", item

    def _own_parameters(self) -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                yield key, value

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for key, param in self._own_parameters():
            yield (f"{prefix}{key}", param)
        for key, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train / eval mode ---------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for _, child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for _, child in self._children():
            child.eval()
        return self

    # -- serialization --------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]

    # -- compute -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> np.ndarray:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """A chain of modules applied in order; backward runs in reverse."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def append(self, module: Module) -> None:
        self.modules.append(module)

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad
