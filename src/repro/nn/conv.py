"""Convolutional layers implemented with im2col, plus pooling and upsampling.

These back the ROI prediction network (3 conv + 2 FC per the paper) and the
RITnet/EdGaze CNN baselines.  All layers operate on ``(B, C, H, W)`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Conv2d", "DepthwiseConv2d", "MaxPool2d", "AvgPool2d", "UpsampleNearest2d"]


class Conv2d(Module):
    """2-D convolution (cross-correlation) with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        cols, oh, ow = F.im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols  # (B, C*K*K, OH*OW)
        w = self.weight.data.reshape(self.out_channels, -1)  # (O, C*K*K)
        # Row-independent GEMM: one (O, K) @ (K, P) product per sample.
        # Each sample's GEMM has a batch-size-independent shape, so the
        # result is bitwise-invariant under stacking (a batched einsum /
        # batched BLAS call is not — kernel selection and accumulation
        # order can depend on the stacked batch size).  The staged
        # engine's batched ROI-predict path relies on this contract.
        out = np.stack([w @ cols[b] for b in range(cols.shape[0])])
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        return out.reshape(x.shape[0], self.out_channels, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        batch = grad.shape[0]
        grad2 = grad.reshape(batch, self.out_channels, -1)  # (B, O, P)
        w = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += np.einsum("bop,bkp->ok", grad2, self._cols).reshape(
            self.weight.data.shape
        )
        if self.bias is not None:
            self.bias.grad += grad2.sum(axis=(0, 2))
        grad_cols = np.einsum("ok,bop->bkp", w, grad2)
        return F.col2im(
            grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding
        )

    def mac_count(self, height: int, width: int) -> int:
        """MACs for one input frame of the given spatial size."""
        oh = F.conv_output_size(height, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (
            oh * ow * self.out_channels * self.in_channels * self.kernel_size**2
        )


class DepthwiseConv2d(Module):
    """Depthwise convolution (one filter per channel), as used by EdGaze."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((channels, 1, kernel_size, kernel_size), rng),
            name="weight",
        )
        self.bias = Parameter(init.zeros((channels,)), name="bias") if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        cols, oh, ow = F.im2col(x, self.kernel_size, self.stride, self.padding)
        batch = x.shape[0]
        k2 = self.kernel_size**2
        cols = cols.reshape(batch, self.channels, k2, oh * ow)
        self._cols = cols
        w = self.weight.data.reshape(self.channels, k2)
        out = np.einsum("ck,bckp->bcp", w, cols)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        return out.reshape(batch, self.channels, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        batch = grad.shape[0]
        k2 = self.kernel_size**2
        grad2 = grad.reshape(batch, self.channels, -1)
        self.weight.grad += np.einsum("bcp,bckp->ck", grad2, self._cols).reshape(
            self.weight.data.shape
        )
        if self.bias is not None:
            self.bias.grad += grad2.sum(axis=(0, 2))
        w = self.weight.data.reshape(self.channels, k2)
        grad_cols = np.einsum("ck,bcp->bckp", w, grad2)
        grad_cols = grad_cols.reshape(batch, self.channels * k2, -1)
        return F.col2im(
            grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding
        )

    def mac_count(self, height: int, width: int) -> int:
        oh = F.conv_output_size(height, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return oh * ow * self.channels * self.kernel_size**2


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(f"input {height}x{width} not divisible by pool {k}")
        self._input_shape = x.shape
        windows = x.reshape(batch, channels, height // k, k, width // k, k)
        windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // k, width // k, k * k
        )
        self._argmax = windows.argmax(axis=-1)
        return windows.max(axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        batch, channels, oh, ow = grad.shape
        k = self.kernel_size
        out = np.zeros((batch, channels, oh, ow, k * k), dtype=grad.dtype)
        b, c, i, j = np.ogrid[:batch, :channels, :oh, :ow]
        out[b, c, i, j, self._argmax] = grad
        out = out.reshape(batch, channels, oh, ow, k, k).transpose(0, 1, 2, 4, 3, 5)
        return out.reshape(self._input_shape)


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(f"input {height}x{width} not divisible by pool {k}")
        self._input_shape = x.shape
        windows = x.reshape(batch, channels, height // k, k, width // k, k)
        return windows.mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        out = np.repeat(np.repeat(grad, k, axis=2), k, axis=3) / (k * k)
        return out.reshape(self._input_shape)


class UpsampleNearest2d(Module):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    def __init__(self, scale: int):
        super().__init__()
        self.scale = scale

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = self.scale
        return np.repeat(np.repeat(x, s, axis=2), s, axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        s = self.scale
        batch, channels, height, width = grad.shape
        windows = grad.reshape(batch, channels, height // s, s, width // s, s)
        return windows.sum(axis=(3, 5))
