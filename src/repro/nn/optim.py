"""Optimizers (SGD with momentum, Adam) and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm", "cosine_schedule", "step_schedule"]


class Optimizer:
    """Shared bookkeeping for parameter-list optimizers."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            vel *= self.momentum
            vel += grad
            p.data -= self.lr * vel


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


def cosine_schedule(base_lr: float, epoch: int, total_epochs: int) -> float:
    """Cosine decay from ``base_lr`` to zero over ``total_epochs``."""
    if total_epochs <= 0:
        raise ValueError("total_epochs must be positive")
    frac = min(epoch, total_epochs) / total_epochs
    return 0.5 * base_lr * (1.0 + np.cos(np.pi * frac))


def step_schedule(
    base_lr: float, epoch: int, milestones: list[int], gamma: float = 0.1
) -> float:
    """Multiply the learning rate by ``gamma`` at each milestone."""
    lr = base_lr
    for milestone in milestones:
        if epoch >= milestone:
            lr *= gamma
    return lr
