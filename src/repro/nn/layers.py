"""Dense and utility layers: Linear, Flatten, Dropout, Residual wrapper."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Linear", "Flatten", "Dropout", "Residual"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` over the trailing axis.

    Accepts inputs of any rank >= 2; leading axes are treated as batch.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        flat_x = self._x.reshape(-1, self.in_features)
        flat_g = grad.reshape(-1, self.out_features)
        self.weight.grad += flat_x.T @ flat_g
        if self.bias is not None:
            self.bias.grad += flat_g.sum(axis=0)
        return grad @ self.weight.data.T

    def mac_count(self, batch_tokens: int) -> int:
        """Multiply-accumulate count for ``batch_tokens`` input rows."""
        return batch_tokens * self.in_features * self.out_features


class Flatten(Module):
    """Collapse all axes after the batch axis."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Residual(Module):
    """``y = x + inner(x)`` with the matching backward pass."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.inner(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad + self.inner.backward(grad)
