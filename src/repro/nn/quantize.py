"""Post-training 8-bit quantization of network weights.

The hardware model assumes 8-bit datapaths on both NPUs (Sec. V's
systolic arrays); this module provides the corresponding software-side
check: symmetric per-tensor int8 quantization of every parameter, so the
accuracy claims can be validated under the precision the energy numbers
assume.

``quantize_module`` is reversible (it returns the saved originals), so a
test can measure the quantized/full-precision accuracy gap directly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["quantize_tensor", "dequantize_tensor", "quantize_module", "QuantStats"]


def quantize_tensor(
    values: np.ndarray, bits: int = 8
) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor quantization; returns (int codes, scale)."""
    if bits < 2:
        raise ValueError(f"need at least 2 bits: {bits}")
    max_code = 2 ** (bits - 1) - 1
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    if peak == 0.0:
        return np.zeros_like(values, dtype=np.int32), 1.0
    scale = peak / max_code
    codes = np.clip(np.round(values / scale), -max_code - 1, max_code)
    return codes.astype(np.int32), scale


def dequantize_tensor(codes: np.ndarray, scale: float) -> np.ndarray:
    return codes.astype(np.float64) * scale


class QuantStats:
    """Aggregate quantization error over a module."""

    def __init__(self):
        self.max_abs_error = 0.0
        self.tensors = 0

    def update(self, original: np.ndarray, reconstructed: np.ndarray) -> None:
        if original.size:
            self.max_abs_error = max(
                self.max_abs_error, float(np.max(np.abs(original - reconstructed)))
            )
        self.tensors += 1


def quantize_module(
    module: Module, bits: int = 8
) -> tuple[dict[str, np.ndarray], QuantStats]:
    """Quantize every parameter of ``module`` in place.

    Returns ``(originals, stats)``; restore with ``load_state_dict``
    (the originals dict is a valid state dict).
    """
    originals: dict[str, np.ndarray] = {}
    stats = QuantStats()
    for name, param in module.named_parameters():
        originals[name] = param.data.copy()
        codes, scale = quantize_tensor(param.data, bits)
        param.data[...] = dequantize_tensor(codes, scale)
        stats.update(originals[name], param.data)
    return originals, stats
