"""Normalization layers: LayerNorm (transformers) and BatchNorm2d (CNNs)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["LayerNorm", "BatchNorm2d"]


class LayerNorm(Module):
    """Layer normalization over the trailing feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self._inv_std = 1.0 / np.sqrt(var + self.eps)
        self._x_hat = (x - mean) * self._inv_std
        return self.gamma.data * self._x_hat + self.beta.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._x_hat, self._inv_std
        flat_g = grad.reshape(-1, self.dim)
        flat_xh = x_hat.reshape(-1, self.dim)
        self.gamma.grad += (flat_g * flat_xh).sum(axis=0)
        self.beta.grad += flat_g.sum(axis=0)
        g = grad * self.gamma.data
        # d/dx of (x - mean) / std with mean/var both functions of x.
        mean_g = g.mean(axis=-1, keepdims=True)
        mean_gx = (g * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (g - mean_g - x_hat * mean_gx)


class BatchNorm2d(Module):
    """Batch normalization over ``(B, H, W)`` per channel with running stats."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels), name="gamma")
        self.beta = Parameter(np.zeros(channels), name="beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        self._inv_std = inv_std
        self._x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._n = x.shape[0] * x.shape[2] * x.shape[3]
        return (
            self.gamma.data[None, :, None, None] * self._x_hat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat = self._x_hat
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        g = grad * self.gamma.data[None, :, None, None]
        if not self.training:
            return g * self._inv_std[None, :, None, None]
        n = self._n
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            self._inv_std[None, :, None, None]
            * (g - sum_g / n - x_hat * sum_gx / n)
        )
