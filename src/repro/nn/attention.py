"""Multi-head self-attention and the transformer ("MHA module") block.

The paper's ViT segmentation network (Sec. III-B, Fig. 6) is built from
"MHA modules": pre-LayerNorm multi-head attention followed by a token-wise
MLP, both with residual connections — the standard ViT encoder block of
Strudel et al. (Segmenter).  Sparse inputs are handled with a key-padding
mask so empty tokens neither attend nor contribute.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.activations import GELU
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.norm import LayerNorm

__all__ = ["MultiHeadAttention", "MLP", "TransformerBlock"]

_NEG_INF = -1e9


class MultiHeadAttention(Module):
    """Self-attention with ``heads`` heads over ``(B, T, D)`` tokens.

    ``D`` must be divisible by ``heads``.  An optional boolean key mask of
    shape ``(B, T)`` marks *valid* tokens; invalid tokens receive a large
    negative score before the softmax so they are never attended to.
    """

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, tokens, _ = x.shape
        return x.reshape(batch, tokens, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, tokens, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, tokens, self.dim)

    def forward(self, x: np.ndarray, key_mask: np.ndarray | None = None) -> np.ndarray:
        # All four attention contractions run as stacked matmuls (BLAS
        # dgemm per (batch, head) slice) rather than einsum: c_einsum is
        # an order of magnitude slower on these shapes and this is the
        # hottest kernel of ViT training *and* inference.  Stacked matmul
        # is per-slice row-independent for a fixed inner shape — the same
        # BLAS property the packed batched inference and the ROI conv
        # GEMM already rely on — so the engine's batched == sequential
        # bitwise guarantee carries through (pinned end-to-end by the
        # engine equivalence tests).
        qkv = self.qkv(x)  # (B, T, 3D)
        q, k, v = np.split(qkv, 3, axis=-1)
        q, k, v = self._split_heads(q), self._split_heads(k), self._split_heads(v)
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * self.scale
        if key_mask is not None:
            scores = scores + np.where(key_mask, 0.0, _NEG_INF)[:, None, None, :]
        attn = F.softmax(scores, axis=-1)
        out = np.matmul(attn, v)
        self._q, self._k, self._v, self._attn = q, k, v, attn
        return self.proj(self._merge_heads(out))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad_merged = self.proj.backward(grad)
        grad_out = self._split_heads(grad_merged)
        attn, q, k, v = self._attn, self._q, self._k, self._v
        grad_v = np.matmul(attn.transpose(0, 1, 3, 2), grad_out)
        grad_attn = np.matmul(grad_out, v.transpose(0, 1, 3, 2))
        # Softmax backward: dS = A * (dA - sum_k(dA * A)).
        grad_scores = attn * (
            grad_attn - np.sum(grad_attn * attn, axis=-1, keepdims=True)
        )
        grad_scores = grad_scores * self.scale
        grad_q = np.matmul(grad_scores, k)
        grad_k = np.matmul(grad_scores.transpose(0, 1, 3, 2), q)
        grad_qkv = np.concatenate(
            [self._merge_heads(g) for g in (grad_q, grad_k, grad_v)], axis=-1
        )
        return self.qkv.backward(grad_qkv)

    def mac_count(self, tokens: int) -> int:
        """MACs for one sequence of the given length (batch size 1)."""
        proj_macs = tokens * self.dim * 4 * self.dim  # qkv + output proj
        attn_macs = 2 * self.heads * tokens * tokens * self.head_dim
        return proj_macs + attn_macs


class MLP(Module):
    """Token-wise two-layer MLP with GELU, as in ViT blocks."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))

    def mac_count(self, tokens: int) -> int:
        return tokens * (
            self.fc1.in_features * self.fc1.out_features
            + self.fc2.in_features * self.fc2.out_features
        )


class TransformerBlock(Module):
    """Pre-LN transformer block: ``x + MHA(LN(x))`` then ``y + MLP(LN(y))``."""

    def __init__(
        self, dim: int, heads: int, mlp_ratio: float, rng: np.random.Generator
    ):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, heads, rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng)

    def forward(self, x: np.ndarray, key_mask: np.ndarray | None = None) -> np.ndarray:
        y = x + self.attn(self.norm1(x), key_mask=key_mask)
        return y + self.mlp(self.norm2(y))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad_y = grad + self.norm2.backward(self.mlp.backward(grad))
        return grad_y + self.norm1.backward(self.attn.backward(grad_y))

    def mac_count(self, tokens: int) -> int:
        return self.attn.mac_count(tokens) + self.mlp.mac_count(tokens)
