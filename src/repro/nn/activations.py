"""Element-wise activation layers with cached backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "GELU", "Sigmoid", "Tanh", "Identity"]


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad, self.negative_slope * grad)


class GELU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * F.gelu_grad(self._x)


class Sigmoid(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = F.sigmoid(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._out * (1.0 - self._out)


class Tanh(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._out**2)


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad
