"""Loss functions used by the joint training procedure (Sec. III-C).

* :class:`CrossEntropyLoss` — segmentation loss over per-pixel class logits,
  with an optional validity mask so only *sampled* pixels contribute (the
  gradient masking the paper applies before back-propagating into the ROI
  predictor).
* :class:`MSELoss` — the ROI regression loss.

Both expose ``forward(pred, target, mask=None) -> float`` and ``backward()``
returning the gradient with respect to the prediction.

The ``mask`` parameter is the reduction seam the batched training
runtime (:mod:`repro.training.runtime`) builds on: a per-row weight
broadcast over the prediction restricts both the loss and the gradient
to chosen positions — per-pixel sampling masks for the segmentation
term, per-*sample* supervision flags for the ROI term (blink frames get
zero-weight rows, so one batched ``forward`` handles mixed
supervised/unsupervised minibatches exactly as the per-frame loop did).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Mean cross entropy over logits ``(..., num_classes)`` vs int labels.

    ``mask`` (same shape as ``target``) restricts the loss (and therefore
    the gradient) to valid positions; positions outside the mask receive
    exactly zero gradient — this is the "explicitly mask the gradients
    belonging to the pixels that are not selected" rule of Sec. III-C.
    """

    def forward(
        self,
        logits: np.ndarray,
        target: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> float:
        num_classes = logits.shape[-1]
        if target.shape != logits.shape[:-1]:
            raise ValueError(
                f"target shape {target.shape} does not match logits "
                f"{logits.shape[:-1]}"
            )
        log_probs = F.log_softmax(logits, axis=-1)
        onehot = F.one_hot(target, num_classes)
        per_item = -(onehot * log_probs).sum(axis=-1)
        if mask is None:
            weight = np.ones_like(per_item)
        else:
            weight = mask.astype(np.float64)
        total = weight.sum()
        self._count = max(total, 1.0)
        self._probs = np.exp(log_probs)
        self._onehot = onehot
        self._weight = weight
        return float((per_item * weight).sum() / self._count)

    def backward(self) -> np.ndarray:
        grad = (self._probs - self._onehot) * self._weight[..., None]
        return grad / self._count


class MSELoss:
    """Mean squared error, optionally masked."""

    def forward(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> float:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        diff = pred - target
        if mask is None:
            weight = np.ones_like(diff)
        else:
            weight = np.broadcast_to(mask, diff.shape).astype(np.float64)
        total = weight.sum()
        self._count = max(total, 1.0)
        self._diff = diff
        self._weight = weight
        return float((weight * diff**2).sum() / self._count)

    def backward(self) -> np.ndarray:
        return 2.0 * self._weight * self._diff / self._count
