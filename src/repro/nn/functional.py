"""Stateless numerical kernels shared by the layer implementations.

Everything here is a plain function over numpy arrays: im2col/col2im for
convolution, numerically-stable softmax/log-softmax, GELU and its exact
derivative, and small helpers (one-hot, patchify) used across the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "conv_output_size",
    "softmax",
    "log_softmax",
    "gelu",
    "gelu_grad",
    "sigmoid",
    "one_hot",
    "patchify",
    "unpatchify",
    "grey_dilation",
    "grey_erosion",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(B, C, H, W)`` into convolution columns.

    Returns
    -------
    cols:
        Array of shape ``(B, C * kernel * kernel, OH * OW)``.
    oh, ow:
        Output spatial dimensions.
    """
    batch, channels, height, width = x.shape
    oh = conv_output_size(height, kernel, stride, padding)
    ow = conv_output_size(width, kernel, stride, padding)
    if padding:
        # Zeros + assign: bitwise-equal to np.pad(constant) at a fraction
        # of its dispatch cost — this runs per conv call on the hot path.
        padded = np.zeros(
            (batch, channels, height + 2 * padding, width + 2 * padding),
            dtype=x.dtype,
        )
        padded[:, :, padding : padding + height, padding : padding + width] = x
        x = padded
    # Strided sliding-window view: (B, C, K, K, OH, OW)
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, kernel, kernel, oh, ow),
        strides=(s[0], s[1], s[2], s[3], s[2] * stride, s[3] * stride),
        writeable=False,
    )
    cols = windows.reshape(batch, channels * kernel * kernel, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image.

    ``cols`` has shape ``(B, C * K * K, OH * OW)``; the result has
    ``input_shape`` = ``(B, C, H, W)``.
    """
    batch, channels, height, width = input_shape
    oh = conv_output_size(height, kernel, stride, padding)
    ow = conv_output_size(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    cols = cols.reshape(batch, channels, kernel, kernel, oh, ow)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[
                :,
                :,
                ki : ki + stride * oh : stride,
                kj : kj + stride * ow : stride,
            ] += cols[:, :, ki, kj]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


_GELU_C = np.sqrt(2.0 / np.pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (as used in ViT MLP blocks).

    Cubes are spelled as explicit multiplies: ``np.power`` with an
    integer exponent runs ~40x slower than two multiplications and this
    is the single hottest elementwise op in ViT training and inference.
    """
    x2 = x * x
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * (x2 * x))))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """Exact derivative of the tanh-approximated GELU."""
    x2 = x * x
    inner = _GELU_C * (x + 0.044715 * (x2 * x))
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner * tanh_inner
    d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x2)
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels along a new trailing axis."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    flat = labels.reshape(-1)
    out = np.zeros((flat.size, num_classes), dtype=np.float64)
    out[np.arange(flat.size), flat] = 1.0
    return out.reshape(*labels.shape, num_classes)


def _morphology_windows(x: np.ndarray, size: int) -> np.ndarray:
    """Sliding ``size x size`` windows of a 2-D array, edge-padded.

    Shared plumbing of :func:`grey_dilation` / :func:`grey_erosion`.
    Edge replication keeps border maxima/minima inside the value range of
    the input (a reflect pad would too; the choice only affects a
    ``size // 2`` border band).
    """
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {x.shape}")
    if size < 1 or size % 2 == 0:
        raise ValueError(f"window size must be a positive odd integer: {size}")
    pad = size // 2
    padded = np.pad(x, pad, mode="edge")
    return np.lib.stride_tricks.sliding_window_view(padded, (size, size))


def grey_dilation(x: np.ndarray, size: int) -> np.ndarray:
    """Greyscale dilation: moving maximum over a ``size x size`` window.

    A minimal numpy replacement for ``scipy.ndimage.grey_dilation`` with a
    flat square structuring element — used by the joint-training cue
    augmentation so the training hot path carries no scipy dependency
    (scipy remains an *optional* extra for the offline noise analysis).
    """
    return _morphology_windows(x, size).max(axis=(-2, -1))


def grey_erosion(x: np.ndarray, size: int) -> np.ndarray:
    """Greyscale erosion: moving minimum over a ``size x size`` window."""
    return _morphology_windows(x, size).min(axis=(-2, -1))


def patchify(x: np.ndarray, patch: int) -> np.ndarray:
    """Split ``(B, C, H, W)`` into non-overlapping patch tokens.

    Returns ``(B, T, C * patch * patch)`` with ``T = (H // patch) * (W // patch)``.
    H and W must be divisible by ``patch``.
    """
    batch, channels, height, width = x.shape
    if height % patch or width % patch:
        raise ValueError(f"image {height}x{width} not divisible by patch {patch}")
    gh, gw = height // patch, width // patch
    x = x.reshape(batch, channels, gh, patch, gw, patch)
    x = x.transpose(0, 2, 4, 1, 3, 5)  # B, gh, gw, C, p, p
    return x.reshape(batch, gh * gw, channels * patch * patch)


def unpatchify(
    tokens: np.ndarray, patch: int, channels: int, height: int, width: int
) -> np.ndarray:
    """Inverse of :func:`patchify`."""
    batch, num_tokens, dim = tokens.shape
    gh, gw = height // patch, width // patch
    if num_tokens != gh * gw or dim != channels * patch * patch:
        raise ValueError("token grid does not match the target image shape")
    x = tokens.reshape(batch, gh, gw, channels, patch, patch)
    x = x.transpose(0, 3, 1, 4, 2, 5)
    return x.reshape(batch, channels, height, width)
