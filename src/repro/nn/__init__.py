"""A from-scratch numpy deep-learning framework.

This subpackage substitutes for PyTorch in the BlissCam reproduction: it
provides every building block the paper's networks need (convolutions,
multi-head attention, layer/batch norm, GELU, cross-entropy/MSE losses,
Adam/SGD) with full backpropagation, implemented purely in numpy.
"""

from repro.nn.activations import GELU, Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.attention import MLP, MultiHeadAttention, TransformerBlock
from repro.nn.conv import (
    AvgPool2d,
    Conv2d,
    DepthwiseConv2d,
    MaxPool2d,
    UpsampleNearest2d,
)
from repro.nn.layers import Dropout, Flatten, Linear, Residual
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.optim import SGD, Adam, clip_grad_norm, cosine_schedule, step_schedule
from repro.nn.quantize import dequantize_tensor, quantize_module, quantize_tensor
from repro.nn.serialize import load_checkpoint, save_checkpoint

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Flatten",
    "Dropout",
    "Residual",
    "Conv2d",
    "DepthwiseConv2d",
    "MaxPool2d",
    "AvgPool2d",
    "UpsampleNearest2d",
    "LayerNorm",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "GELU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "MultiHeadAttention",
    "MLP",
    "TransformerBlock",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "cosine_schedule",
    "step_schedule",
    "save_checkpoint",
    "load_checkpoint",
    "quantize_tensor",
    "quantize_module",
    "dequantize_tensor",
]
