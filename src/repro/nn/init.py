"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so every
network in the library is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_normal", "zeros", "truncated_normal"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform init; fan computed from the first two axes."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal init for ReLU-family activations."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def truncated_normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02
) -> np.ndarray:
    """ViT-style truncated normal (resampled beyond 2 std)."""
    out = rng.normal(0.0, std, size=shape)
    bad = np.abs(out) > 2 * std
    while bad.any():
        out[bad] = rng.normal(0.0, std, size=int(bad.sum()))
        bad = np.abs(out) > 2 * std
    return out


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[float, float]:
    if len(shape) == 1:
        return float(shape[0]), float(shape[0])
    if len(shape) == 2:
        return float(shape[0]), float(shape[1])
    # Conv weights (out, in, k, k): receptive field multiplies the fans.
    receptive = float(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
