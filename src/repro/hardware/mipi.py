"""MIPI CSI-2 sensor-host link: energy and latency model.

Calibration anchors from the paper:

* transmitting one byte costs ~100 pJ (Liu et al., ISSCC'22) — Sec. II-C;
* at 4K resolution the per-frame transfer latency alone is ~22 ms and
  exceeds the 15 ms end-to-end budget (Fig. 3).

The bandwidth is modelled as a standard 4-lane D-PHY link; the effective
byte rate is chosen so the 4K point reproduces the paper's 22 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MipiLink", "STANDARD_RESOLUTIONS", "LATENCY_REQUIREMENT_S"]

#: Named resolutions of Fig. 3 -> (height, width).
STANDARD_RESOLUTIONS: dict[str, tuple[int, int]] = {
    "720P": (720, 1280),
    "1080P": (1080, 1920),
    "2K": (1440, 2560),
    "4K": (2160, 3840),
    "8K": (4320, 7680),
}

#: The 15 ms eye-tracking latency requirement line in Fig. 3.
LATENCY_REQUIREMENT_S = 15e-3


@dataclass(frozen=True)
class MipiLink:
    """A MIPI CSI-2 interface with fixed energy/byte and bandwidth."""

    #: Energy to move one byte across the link (paper: ~100 pJ/byte).
    energy_per_byte_j: float = 100e-12
    #: Effective payload bandwidth.  Four D-PHY lanes at 1.0 Gbps with
    #: ~95 % packing efficiency gives ~475 MB/s, which puts a 10-bit 4K
    #: frame at ~22 ms — the paper's Fig. 3 anchor.
    bandwidth_bytes_per_s: float = 475e6
    #: Bits per transmitted pixel (the DPS quantizes to 10 bits).
    bits_per_pixel: int = 10

    def frame_bytes(self, num_pixels: int) -> int:
        """Payload bytes for ``num_pixels`` quantized pixels."""
        if num_pixels < 0:
            raise ValueError(f"negative pixel count: {num_pixels}")
        return (num_pixels * self.bits_per_pixel + 7) // 8

    def transfer_energy(self, num_bytes: int) -> float:
        """Joules to transfer ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count: {num_bytes}")
        return num_bytes * self.energy_per_byte_j

    def transfer_latency(self, num_bytes: int) -> float:
        """Seconds to transfer ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count: {num_bytes}")
        return num_bytes / self.bandwidth_bytes_per_s

    def frame_latency(self, height: int, width: int) -> float:
        """Per-frame transfer latency at a given resolution (Fig. 3)."""
        return self.transfer_latency(self.frame_bytes(height * width))

    def frame_energy(self, height: int, width: int) -> float:
        return self.transfer_energy(self.frame_bytes(height * width))
