"""Systolic-array NPU model: compute latency and energy for DNN workloads.

The paper assumes (and claims no novelty for) two systolic arrays:

* **host NPU** — 32x32 MACs at 1 GHz, 2 MB global buffer banked at
  128 KB, in a 7 nm node;
* **in-sensor NPU** — 8x8 MACs at 0.5 GHz with 512 KB SRAM, in the
  sensor's 22 nm logic layer.

Latency = MACs / (array throughput x utilization); energy = MACs x
energy/MAC (node-scaled) + buffer traffic x energy/byte (node-scaled) +
leakage power x active time.  The per-MAC and per-byte energies at the
16 nm synthesis reference are standard published figures for 8-10-bit
datapaths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import scaling

__all__ = ["SystolicNPU", "host_npu", "in_sensor_npu"]

# Reference costs at the 16 nm synthesis node.
_MAC_ENERGY_16NM_J = 0.05e-12  # 8-bit MAC with high weight reuse
_SRAM_ENERGY_16NM_J_PER_BYTE = 1.1e-12  # global-buffer access
_LEAKAGE_16NM_W_PER_KB = 6e-6  # SRAM leakage per KB


@dataclass(frozen=True)
class SystolicNPU:
    """A weight-stationary systolic array with a scratchpad buffer."""

    rows: int
    cols: int
    clock_hz: float
    buffer_kb: float
    process_node_nm: float
    #: Sustained fraction of peak MACs (dataflow + memory stalls).
    utilization: float = 0.55
    name: str = "npu"

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if not 0 < self.utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1]: {self.utilization}")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")

    @property
    def peak_macs_per_s(self) -> float:
        return self.rows * self.cols * self.clock_hz

    @property
    def sustained_macs_per_s(self) -> float:
        return self.peak_macs_per_s * self.utilization

    def compute_latency(self, macs: int) -> float:
        """Seconds to execute ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError(f"negative MAC count: {macs}")
        return macs / self.sustained_macs_per_s

    def mac_energy(self, macs: int) -> float:
        """Dynamic energy of the MAC array."""
        if macs < 0:
            raise ValueError(f"negative MAC count: {macs}")
        return macs * scaling.scale_energy(_MAC_ENERGY_16NM_J, self.process_node_nm)

    def buffer_energy(self, num_bytes: int) -> float:
        """Dynamic energy of scratchpad traffic."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count: {num_bytes}")
        return num_bytes * scaling.scale_energy(
            _SRAM_ENERGY_16NM_J_PER_BYTE, self.process_node_nm
        )

    def leakage_power(self) -> float:
        """Static power of the scratchpad (watts)."""
        return self.buffer_kb * scaling.scale_leakage(
            _LEAKAGE_16NM_W_PER_KB, self.process_node_nm
        )

    def workload_energy(
        self, macs: int, buffer_bytes: int, active_time_s: float
    ) -> float:
        """Total energy of one workload invocation.

        ``active_time_s`` is the window over which the scratchpad must stay
        powered (usually the frame period for a pipelined accelerator).
        """
        if active_time_s < 0:
            raise ValueError("active time must be non-negative")
        return (
            self.mac_energy(macs)
            + self.buffer_energy(buffer_bytes)
            + self.leakage_power() * active_time_s
        )


def host_npu(process_node_nm: float = 7.0) -> SystolicNPU:
    """The paper's host accelerator: 32x32 @ 1 GHz, 2 MB buffer."""
    return SystolicNPU(
        rows=32,
        cols=32,
        clock_hz=1e9,
        buffer_kb=2048.0,
        process_node_nm=process_node_nm,
        name="host-npu",
    )


def in_sensor_npu(process_node_nm: float = 22.0) -> SystolicNPU:
    """The paper's in-sensor accelerator: 8x8 @ 0.5 GHz, 512 KB SRAM."""
    return SystolicNPU(
        rows=8,
        cols=8,
        clock_hz=0.5e9,
        buffer_kb=512.0,
        process_node_nm=process_node_nm,
        name="in-sensor-npu",
    )
