"""System-level energy model: the four sensor-SoC designs of Fig. 13.

Variants (Sec. V, "System Variants"):

* ``NPU-Full`` — conventional pipeline: the sensor digitizes and transmits
  the full frame; the host segments the full frame.
* ``NPU-ROI`` — same sensor; the host runs eventification + the ROI DNN
  and segments only the ROI.
* ``S+NPU``   — sparse sampling inside the sensor but in the *digital*
  domain: the full frame is still digitized into an in-sensor SRAM frame
  buffer (whose leakage cannot be power-gated, because it must retain the
  previous frame for eventification), the ROI DNN runs on the in-sensor
  NPU, and only sampled pixels cross MIPI.
* ``BlissCam`` — the proposed design: analog frame memory + analog
  eventification, so only *sampled* pixels are ever digitized; the ROI DNN
  runs in-sensor; RLE-compressed sampled pixels cross MIPI; the host
  receives ~5 % of the pixels.

Every term is built from component models (ADC, pixel circuit, MIPI, NPU,
DRAM, process scaling), so the sensitivity studies (frame rate, Fig. 16;
process node, Fig. 17) fall out of the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.dram import LPDDR3Model
from repro.hardware.mipi import MipiLink
from repro.hardware.npu import SystolicNPU, host_npu, in_sensor_npu
from repro.hardware.scaling import scale_leakage
from repro.hardware.sensor.adc import SingleSlopeADC
from repro.hardware.sensor.pixel import BLISSCAM_DPS, PixelCircuit
from repro.synth.noise import exposure_for_fps

__all__ = [
    "WorkloadProfile",
    "ProcessNodes",
    "EnergyBreakdown",
    "SystemEnergyModel",
    "VARIANTS",
]

VARIANTS = ("NPU-Full", "NPU-ROI", "S+NPU", "BlissCam")

#: SRAM leakage per KB at the 16 nm reference (frame buffer, un-gateable).
_FRAME_BUFFER_LEAKAGE_16NM_W_PER_KB = 9.5e-6
#: Sensor housekeeping static power: row drivers, bias DACs, PLL (all variants).
_SENSOR_MISC_POWER_W = 1e-3
#: Host-system background power attributable to the eye-tracking service
#: (SoC rails kept up, DRAM standby share, interconnect).  Scales with the
#: variant's working set: full-frame pipelines keep more memory powered.
_HOST_IDLE_POWER_W = {
    "NPU-Full": 12e-3,
    "NPU-ROI": 6e-3,
    "S+NPU": 6.5e-3,
    "BlissCam": 3.5e-3,
}
#: Digital eventification cost per pixel (subtract+compare) at 16 nm.
_DIGITAL_EVENT_16NM_J_PER_PIXEL = 0.35e-12
#: RLE encoder energy per ROI pixel streamed through it, at 16 nm.
_RLE_16NM_J_PER_PIXEL = 0.05e-12
#: SRAM RNG power-up energy per pixel (10 cells) at 22 nm-equivalent.
_RNG_J_PER_PIXEL = 0.02e-12


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-frame statistics that drive the energy/latency models.

    Defaults correspond to the paper's operating point: a 640x400 sensor,
    ROI of ~34 k pixels (13.4 % of the frame), ~20 % in-ROI sampling for a
    20.6x compression (4.85 % of pixels transmitted, 10.8 % of ViT tokens
    valid).  The benchmark harness can overwrite any field with *measured*
    statistics from the functional pipeline.
    """

    height: int = 400
    width: int = 640
    #: Fraction of the frame inside the predicted ROI.
    roi_fraction: float = 0.134
    #: Fraction of frame pixels actually sampled (read out + transmitted).
    sampled_fraction: float = 0.0485
    #: Fraction of ViT tokens containing at least one sampled pixel.
    valid_token_fraction: float = 0.108
    #: Segmentation MACs on a dense full frame.
    seg_macs_dense: int = 3_000_000_000
    #: ROI prediction DNN MACs (paper: 2.1e7).
    roi_macs: int = 21_000_000
    #: Host DRAM traffic for dense-frame segmentation (weights + activations).
    dram_bytes_dense: int = 1_500_000
    #: RLE encoded size relative to raw sampled bytes.  At the operating
    #: point's ~36 % in-ROI density the runs are short, so the encoded
    #: stream is ~1.9x the raw sampled payload (verified against the
    #: actual codec in tests/hardware/test_cross_model_consistency.py);
    #: still ~5x smaller than transmitting the whole ROI.
    rle_overhead: float = 1.9
    #: Bytes of the fed-back segmentation map (2-bit classes, RLE'd).
    seg_map_bytes: int = 12_000
    #: Gaze regression cost on the host (tiny relative to segmentation).
    gaze_macs: int = 2_000_000

    @property
    def num_pixels(self) -> int:
        return self.height * self.width

    def seg_macs(self, variant: str) -> int:
        """Segmentation MACs under each variant's input reduction."""
        if variant == "NPU-Full":
            return self.seg_macs_dense
        if variant == "NPU-ROI":
            return int(self.seg_macs_dense * self.roi_fraction)
        if variant in ("S+NPU", "BlissCam"):
            return int(self.seg_macs_dense * self.valid_token_fraction)
        raise ValueError(f"unknown variant: {variant}")

    def dram_bytes(self, variant: str) -> int:
        """DRAM traffic scales with the segmentation working set."""
        return int(
            self.dram_bytes_dense
            * self.seg_macs(variant)
            / self.seg_macs_dense
        )


@dataclass(frozen=True)
class ProcessNodes:
    """Technology nodes of the three dies (Fig. 13/14 annotations)."""

    sensor_top_nm: float = 65.0
    sensor_logic_nm: float = 22.0
    host_nm: float = 7.0


@dataclass
class EnergyBreakdown:
    """Per-frame energy (joules) dissected by component (Fig. 13 stacks)."""

    variant: str
    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        # Sorted operands (REP104): the total must not depend on the
        # order components were inserted by the model that built them.
        return sum(v for _, v in sorted(self.components.items()))

    @property
    def sensor_side(self) -> float:
        """Everything dissipated on the sensor die (incl. in-sensor NPU)."""
        keys = (
            "exposure",
            "sensor_misc",
            "readout",
            "eventification",
            "analog_memory",
            "frame_buffer",
            "roi_dnn_sensor",
            "rng",
            "rle",
        )
        return sum(self.components.get(k, 0.0) for k in keys)

    @property
    def off_sensor(self) -> float:
        keys = (
            "seg_npu",
            "host_buffer",
            "dram",
            "roi_dnn_host",
            "gaze",
            "host_idle",
        )
        return sum(self.components.get(k, 0.0) for k in keys)

    @property
    def communication(self) -> float:
        return self.components.get("mipi", 0.0) + self.components.get(
            "seg_map_backhaul", 0.0
        )

    def fraction(self, key: str) -> float:
        return self.components.get(key, 0.0) / self.total


class SystemEnergyModel:
    """Composes component models into per-variant, per-frame energy."""

    def __init__(
        self,
        nodes: ProcessNodes | None = None,
        mipi: MipiLink | None = None,
        dram: LPDDR3Model | None = None,
        adc: SingleSlopeADC | None = None,
        pixel: PixelCircuit = BLISSCAM_DPS,
    ):
        self.nodes = nodes or ProcessNodes()
        self.mipi = mipi or MipiLink()
        self.dram = dram or LPDDR3Model()
        self.adc = adc or SingleSlopeADC()
        self.pixel = pixel
        self.host = host_npu(self.nodes.host_nm)
        self.sensor_npu = in_sensor_npu(self.nodes.sensor_logic_nm)

    # -- shared sub-terms -----------------------------------------------------
    def _host_seg_terms(
        self, variant: str, profile: WorkloadProfile
    ) -> dict[str, float]:
        """Segmentation + gaze on the host NPU, buffer gated to active time."""
        macs = profile.seg_macs(variant)
        seg_time = self.host.compute_latency(macs)
        buffer_bytes = macs // 64  # ~64 MACs per scratchpad byte touched
        return {
            "seg_npu": self.host.mac_energy(macs)
            + self.host.leakage_power() * seg_time,
            "host_buffer": self.host.buffer_energy(buffer_bytes),
            "gaze": self.host.mac_energy(profile.gaze_macs),
            "dram": self.dram.traffic_energy(profile.dram_bytes(variant)),
        }

    def _frame_buffer_leakage(self, profile: WorkloadProfile, fps: float) -> float:
        """S+NPU's digital frame buffer: 10 bits/pixel, never power-gated."""
        size_kb = profile.num_pixels * 10 / 8 / 1024
        power = size_kb * scale_leakage(
            _FRAME_BUFFER_LEAKAGE_16NM_W_PER_KB, self.nodes.sensor_logic_nm
        )
        return power / fps

    def _roi_dnn_energy(self, npu: SystolicNPU, profile: WorkloadProfile) -> float:
        """ROI DNN on the given NPU, SRAM gated to the DNN's runtime."""
        time = npu.compute_latency(profile.roi_macs)
        return npu.workload_energy(
            profile.roi_macs, profile.roi_macs // 64, active_time_s=time
        )

    # -- variants ------------------------------------------------------------
    def frame_energy(
        self, variant: str, profile: WorkloadProfile, fps: float
    ) -> EnergyBreakdown:
        """Per-frame energy breakdown for one variant at one frame rate."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        n = profile.num_pixels
        exposure = exposure_for_fps(fps)
        frame_period = 1.0 / fps
        parts: dict[str, float] = {
            "exposure": self.pixel.exposure_energy(n, exposure),
            "sensor_misc": _SENSOR_MISC_POWER_W * frame_period,
            "host_idle": _HOST_IDLE_POWER_W[variant] * frame_period,
        }

        if variant == "NPU-Full":
            parts["readout"] = self.adc.readout_energy(n)
            parts["mipi"] = self.mipi.transfer_energy(self.mipi.frame_bytes(n))
            parts.update(self._host_seg_terms(variant, profile))

        elif variant == "NPU-ROI":
            parts["readout"] = self.adc.readout_energy(n)
            parts["mipi"] = self.mipi.transfer_energy(self.mipi.frame_bytes(n))
            # Host-side eventification (digital diff) + ROI DNN at 7 nm.
            parts["roi_dnn_host"] = (
                self._roi_dnn_energy(self.host, profile)
                + n * _DIGITAL_EVENT_16NM_J_PER_PIXEL * 0.44  # 7 nm factor
            )
            parts.update(self._host_seg_terms(variant, profile))

        elif variant == "S+NPU":
            # Full digitization is still required for digital eventification.
            parts["readout"] = self.adc.readout_energy(n)
            parts["frame_buffer"] = self._frame_buffer_leakage(profile, fps)
            parts["eventification"] = (
                n
                * _DIGITAL_EVENT_16NM_J_PER_PIXEL
                * scale_leakage(1.0, self.nodes.sensor_logic_nm)
            )
            parts["roi_dnn_sensor"] = self._roi_dnn_energy(self.sensor_npu, profile)
            parts["rng"] = n * _RNG_J_PER_PIXEL
            sampled_bytes = self.mipi.frame_bytes(
                int(n * profile.sampled_fraction)
            )
            parts["mipi"] = self.mipi.transfer_energy(
                int(sampled_bytes * profile.rle_overhead)
            )
            parts["rle"] = int(n * profile.roi_fraction) * _RLE_16NM_J_PER_PIXEL
            parts["seg_map_backhaul"] = self.mipi.transfer_energy(
                profile.seg_map_bytes
            )
            parts.update(self._host_seg_terms(variant, profile))

        else:  # BlissCam
            sampled = int(n * profile.sampled_fraction)
            in_roi_skipped = int(n * profile.roi_fraction) - sampled
            parts["readout"] = self.adc.readout_energy(
                sampled, max(0, in_roi_skipped)
            )
            parts["eventification"] = self.pixel.eventification_energy(n)
            parts["analog_memory"] = self.pixel.analog_memory_energy(n, exposure)
            parts["roi_dnn_sensor"] = self._roi_dnn_energy(self.sensor_npu, profile)
            parts["rng"] = n * _RNG_J_PER_PIXEL
            sampled_bytes = self.mipi.frame_bytes(sampled)
            parts["mipi"] = self.mipi.transfer_energy(
                int(sampled_bytes * profile.rle_overhead)
            )
            parts["rle"] = int(n * profile.roi_fraction) * _RLE_16NM_J_PER_PIXEL
            parts["seg_map_backhaul"] = self.mipi.transfer_energy(
                profile.seg_map_bytes
            )
            parts.update(self._host_seg_terms(variant, profile))

        return EnergyBreakdown(variant=variant, components=parts)

    def savings_over(
        self,
        baseline: str,
        variant: str,
        profile: WorkloadProfile,
        fps: float,
    ) -> float:
        """Energy-reduction factor of ``variant`` relative to ``baseline``."""
        base = self.frame_energy(baseline, profile, fps).total
        ours = self.frame_energy(variant, profile, fps).total
        return base / ours

    def with_nodes(self, nodes: ProcessNodes) -> "SystemEnergyModel":
        """A copy of this model under different process nodes (Fig. 17)."""
        return SystemEnergyModel(
            nodes=nodes,
            mipi=self.mipi,
            dram=self.dram,
            adc=self.adc,
            pixel=self.pixel,
        )
