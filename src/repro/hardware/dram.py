"""Host DRAM energy model (Micron LPDDR3-1600 substitute).

The paper computes DRAM energy from Micron's system power calculator for a
16 Gb LPDDR3-1600 part (4 channels), driven by the memory traffic of the
segmentation ViT's kernels and activations.  The calculator's outputs
reduce to an access energy per byte plus a background (standby/refresh)
power; published LPDDR3 figures put the IO+core access cost at roughly
40 pJ/byte and the 4-channel background power in the tens of milliwatts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LPDDR3Model"]


@dataclass(frozen=True)
class LPDDR3Model:
    """Energy model for the host's LPDDR3 memory system."""

    #: Read/write access energy (core + IO) per byte.
    access_energy_per_byte_j: float = 40e-12
    #: Background power: self-refresh + standby across 4 channels.
    background_power_w: float = 30e-3

    def traffic_energy(self, num_bytes: int) -> float:
        """Dynamic energy for ``num_bytes`` of DRAM traffic."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count: {num_bytes}")
        return num_bytes * self.access_energy_per_byte_j

    def background_energy(self, duration_s: float) -> float:
        """Standby energy over a time window."""
        if duration_s < 0:
            raise ValueError(f"negative duration: {duration_s}")
        return self.background_power_w * duration_s

    def frame_energy(self, traffic_bytes: int, frame_period_s: float) -> float:
        """Total DRAM energy attributable to one frame."""
        return self.traffic_energy(traffic_bytes) + self.background_energy(
            frame_period_s
        )
