"""Bit-accurate MIPI CSI-2 packet framing for the sensor-host link.

The energy/latency models count payload bytes; this module provides the
actual framing a CSI-2 transmitter applies, so transmitted-size accounting
includes protocol overhead and the host-side depacketizer can verify
integrity the way a real receiver does:

* **long packets**: 4-byte header (data ID, 16-bit word count, 6-bit ECC)
  + payload + 16-bit checksum (CRC-16/X25 per the CSI-2 spec family);
* **short packets** (frame start/end): header only.

The ECC protects the header (single-error correct / double-error detect
over the 24 header bits — modelled as the standard Hamming(30, 24)
syndrome); the CRC detects payload corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsiPacketizer", "LongPacket", "crc16_x25", "header_ecc"]

#: CSI-2 data-type ID we use for RAW10-equivalent sparse payloads.
DATA_TYPE_RAW10 = 0x2B
DATA_TYPE_FRAME_START = 0x00
DATA_TYPE_FRAME_END = 0x01

_ECC_MASKS = (
    0b111100010010110010110111,
    0b111100100101010101011011,
    0b011101001001101001101101,
    0b101110001110001110001110,
    0b110111110000001111110000,
    0b111011111111110000000000,
)


def crc16_x25(data: bytes) -> int:
    """CRC-16 with polynomial 0x8408 (reflected 0x1021), init 0xFFFF."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0x8408
            else:
                crc >>= 1
    return crc ^ 0xFFFF


def header_ecc(header24: int) -> int:
    """6-bit ECC over the 24 header bits (parity-mask construction)."""
    if not 0 <= header24 < (1 << 24):
        raise ValueError("header must be a 24-bit value")
    ecc = 0
    for i, mask in enumerate(_ECC_MASKS):
        parity = bin(header24 & mask).count("1") & 1
        ecc |= parity << i
    return ecc


@dataclass(frozen=True)
class LongPacket:
    """One framed CSI-2 long packet."""

    data_id: int
    payload: bytes
    ecc: int
    checksum: int

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire: 4 header + payload + 2 CRC."""
        return 4 + len(self.payload) + 2

    @property
    def overhead_fraction(self) -> float:
        if not self.payload:
            return float("inf")
        return (self.wire_bytes - len(self.payload)) / len(self.payload)


class CsiPacketizer:
    """Packs pixel streams into CSI-2 packets and unpacks/verifies them."""

    def __init__(self, max_payload_bytes: int = 8192):
        if max_payload_bytes < 1:
            raise ValueError("max payload must be positive")
        self.max_payload_bytes = max_payload_bytes

    # -- transmit ----------------------------------------------------------
    def pack_bytes(self, data: bytes) -> list[LongPacket]:
        """Split a byte stream into framed long packets."""
        packets = []
        for start in range(0, max(len(data), 1), self.max_payload_bytes):
            chunk = data[start : start + self.max_payload_bytes]
            if not chunk and packets:
                break
            word_count = len(chunk)
            header = DATA_TYPE_RAW10 | (word_count & 0xFFFF) << 8
            packets.append(
                LongPacket(
                    data_id=DATA_TYPE_RAW10,
                    payload=bytes(chunk),
                    ecc=header_ecc(header),
                    checksum=crc16_x25(bytes(chunk)),
                )
            )
        return packets

    def pack_codes(self, codes: np.ndarray) -> list[LongPacket]:
        """Pack 10-bit pixel codes (RAW10: 4 pixels -> 5 bytes)."""
        codes = np.asarray(codes, dtype=np.int64).ravel()
        if codes.size and (codes.min() < 0 or codes.max() > 1023):
            raise ValueError("codes must fit in 10 bits")
        # Pad to a multiple of 4 pixels.
        pad = (-codes.size) % 4
        padded = np.concatenate([codes, np.zeros(pad, dtype=np.int64)])
        groups = padded.reshape(-1, 4)
        out = bytearray()
        for a, b, c, d in groups:
            out.append(int(a) >> 2)
            out.append(int(b) >> 2)
            out.append(int(c) >> 2)
            out.append(int(d) >> 2)
            out.append(
                (int(a) & 3) | ((int(b) & 3) << 2) | ((int(c) & 3) << 4)
                | ((int(d) & 3) << 6)
            )
        packets = self.pack_bytes(bytes(out))
        # Record the true pixel count in the first packet's data id? The
        # receiver learns it out of band (ROI geometry), as in BlissCam.
        return packets

    # -- receive --------------------------------------------------------------
    def unpack_bytes(self, packets: list[LongPacket]) -> bytes:
        """Verify and concatenate payloads; raises on corruption."""
        out = bytearray()
        for i, packet in enumerate(packets):
            header = packet.data_id | (len(packet.payload) & 0xFFFF) << 8
            if header_ecc(header) != packet.ecc:
                raise ValueError(f"packet {i}: header ECC mismatch")
            if crc16_x25(packet.payload) != packet.checksum:
                raise ValueError(f"packet {i}: payload CRC mismatch")
            out.extend(packet.payload)
        return bytes(out)

    def unpack_codes(self, packets: list[LongPacket], num_pixels: int) -> np.ndarray:
        """Inverse of :meth:`pack_codes` for a known pixel count."""
        data = self.unpack_bytes(packets)
        if len(data) % 5:
            raise ValueError("RAW10 stream length must be a multiple of 5")
        groups = np.frombuffer(data, dtype=np.uint8).reshape(-1, 5).astype(np.int64)
        lsbs = groups[:, 4]
        codes = np.stack(
            [
                (groups[:, 0] << 2) | (lsbs & 3),
                (groups[:, 1] << 2) | ((lsbs >> 2) & 3),
                (groups[:, 2] << 2) | ((lsbs >> 4) & 3),
                (groups[:, 3] << 2) | ((lsbs >> 6) & 3),
            ],
            axis=1,
        ).reshape(-1)
        if num_pixels > codes.size:
            raise ValueError(
                f"requested {num_pixels} pixels but stream has {codes.size}"
            )
        return codes[:num_pixels]

    def wire_bytes(self, packets: list[LongPacket]) -> int:
        """Total on-wire bytes incl. framing (feeds the energy model)."""
        return sum(p.wire_bytes for p in packets)
