"""Pipeline timing: the Fig. 8 schedule, tracking latency, and FPS checks.

Tracking latency (Fig. 1) is the delay from the *start of a frame's
exposure* to the moment the gaze estimate for that frame is ready:

``latency = exposure + [in-sensor stages] + readout + MIPI + segmentation
+ gaze``.

BlissCam inserts three in-sensor stages (eventification, ROI prediction,
sampling) between exposure and readout; to keep the frame rate fixed, the
exposure is shortened by exactly the in-sensor overhead (the paper reports
a 1.8 % exposure reduction at 120 FPS).  The Fig. 8 cross-frame dependency
— frame t's ROI prediction needs frame t-1's segmentation map back from
the host — is validated by :meth:`TimingModel.schedule_feasible`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.mipi import MipiLink
from repro.hardware.npu import SystolicNPU, host_npu, in_sensor_npu
from repro.hardware.energy import WorkloadProfile
from repro.hardware.sensor.adc import SingleSlopeADC
from repro.hardware.sensor.readout import SparseReadout
from repro.synth.noise import DEFAULT_EXPOSURE_DUTY

__all__ = ["LatencyBreakdown", "TimingModel", "ANALOG_EVENTIFICATION_S"]

#: Analog eventification: two comparator decisions, array-parallel (paper: 5 us).
ANALOG_EVENTIFICATION_S = 5e-6
#: Digital eventification on the in-sensor logic (S+NPU): still parallel
#: but needs SRAM reads; slightly slower than analog.
DIGITAL_EVENTIFICATION_S = 12e-6
#: SRAM power-up + popcount + threshold compare, array-parallel.
SAMPLING_DECISION_S = 3e-6
#: Fraction of the in-sensor ROI DNN runtime that overlaps the *next*
#: frame's exposure: the global-shutter DPS top layer can expose frame t+1
#: while the bottom-layer NPU crunches frame t's event map; only the
#: analog-memory handoff (~20 % of the DNN window) serializes.  This puts
#: the exposure reduction near the paper's 1.8 % at 120 FPS.
ROI_OVERLAP_FRACTION = 0.8


@dataclass
class LatencyBreakdown:
    """Per-frame latency (seconds) by stage, in pipeline order."""

    variant: str
    stages: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        # Sorted operands (REP104): the total must not depend on the
        # order stages were inserted by the model that built them.
        return sum(v for _, v in sorted(self.stages.items()))

    @property
    def in_sensor_overhead(self) -> float:
        keys = ("eventification", "roi_prediction", "sampling")
        return sum(self.stages.get(k, 0.0) for k in keys)


class TimingModel:
    """End-to-end latency and frame-rate feasibility for all variants."""

    def __init__(
        self,
        mipi: MipiLink | None = None,
        adc: SingleSlopeADC | None = None,
        host: SystolicNPU | None = None,
        sensor_npu: SystolicNPU | None = None,
        readout: SparseReadout | None = None,
        exposure_duty: float = DEFAULT_EXPOSURE_DUTY,
    ):
        self.mipi = mipi or MipiLink()
        self.adc = adc or SingleSlopeADC()
        self.host = host or host_npu()
        self.sensor_npu = sensor_npu or in_sensor_npu()
        self.readout = readout or SparseReadout()
        self.exposure_duty = exposure_duty

    # -- stage latencies -----------------------------------------------------
    def _readout_time(self, profile: WorkloadProfile, roi_only: bool) -> float:
        """Column-sequential readout; per-pixel ADCs convert in parallel."""
        cols = profile.width
        if roi_only:
            # ROI columns only; ROI aspect follows the frame.
            cols = max(1, int(round(profile.width * profile.roi_fraction**0.5)))
        return (
            self.adc.conversion_time_s
            + self.readout.setup_time_s
            + cols * self.readout.column_time_s
        )

    def _mipi_time(self, profile: WorkloadProfile, variant: str) -> float:
        n = profile.num_pixels
        if variant in ("NPU-Full", "NPU-ROI"):
            payload = self.mipi.frame_bytes(n)
        else:
            sampled = int(n * profile.sampled_fraction)
            payload = int(
                self.mipi.frame_bytes(sampled) * profile.rle_overhead
            )
        return self.mipi.transfer_latency(payload)

    def _seg_time(self, profile: WorkloadProfile, variant: str) -> float:
        return self.host.compute_latency(profile.seg_macs(variant))

    def _gaze_time(self, profile: WorkloadProfile) -> float:
        return self.host.compute_latency(profile.gaze_macs)

    def roi_prediction_time(self, profile: WorkloadProfile, on_host: bool) -> float:
        npu = self.host if on_host else self.sensor_npu
        return npu.compute_latency(profile.roi_macs)

    # -- end-to-end ----------------------------------------------------------
    def tracking_latency(
        self, variant: str, profile: WorkloadProfile, fps: float
    ) -> LatencyBreakdown:
        """Fig. 14: start-of-exposure to gaze-ready, per variant."""
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        frame_period = 1.0 / fps
        nominal_exposure = self.exposure_duty * frame_period
        stages: dict[str, float] = {}

        if variant == "NPU-Full":
            stages["exposure"] = nominal_exposure
            stages["readout"] = self._readout_time(profile, roi_only=False)
        elif variant == "NPU-ROI":
            stages["exposure"] = nominal_exposure
            stages["readout"] = self._readout_time(profile, roi_only=False)
            # Eventification + ROI DNN on the host overlap with MIPI of the
            # *next* frame, but sit on this frame's critical path before
            # segmentation can start.
            stages["roi_prediction"] = self.roi_prediction_time(
                profile, on_host=True
            )
        elif variant == "S+NPU":
            roi_time = self.roi_prediction_time(profile, on_host=False)
            overhead = (
                DIGITAL_EVENTIFICATION_S
                + (1.0 - ROI_OVERLAP_FRACTION) * roi_time
                + SAMPLING_DECISION_S
            )
            stages["exposure"] = nominal_exposure - overhead
            stages["eventification"] = DIGITAL_EVENTIFICATION_S
            stages["roi_prediction"] = self.roi_prediction_time(
                profile, on_host=False
            )
            stages["sampling"] = SAMPLING_DECISION_S
            stages["readout"] = self._readout_time(profile, roi_only=True)
        elif variant == "BlissCam":
            roi_time = self.roi_prediction_time(profile, on_host=False)
            overhead = (
                ANALOG_EVENTIFICATION_S
                + (1.0 - ROI_OVERLAP_FRACTION) * roi_time
                + SAMPLING_DECISION_S
            )
            stages["exposure"] = nominal_exposure - overhead
            stages["eventification"] = ANALOG_EVENTIFICATION_S
            stages["roi_prediction"] = self.roi_prediction_time(
                profile, on_host=False
            )
            stages["sampling"] = SAMPLING_DECISION_S
            stages["readout"] = self._readout_time(profile, roi_only=True)
        else:
            raise ValueError(f"unknown variant: {variant}")

        if stages["exposure"] <= 0:
            raise ValueError(
                f"in-sensor stages leave no exposure time at {fps} fps"
            )
        stages["mipi"] = self._mipi_time(profile, variant)
        stages["segmentation"] = self._seg_time(profile, variant)
        stages["gaze"] = self._gaze_time(profile)
        return LatencyBreakdown(variant=variant, stages=stages)

    def exposure_reduction(
        self, variant: str, profile: WorkloadProfile, fps: float
    ) -> float:
        """Fractional exposure loss to in-sensor stages (paper: 1.8 %)."""
        lat = self.tracking_latency(variant, profile, fps)
        nominal = self.exposure_duty / fps
        return 1.0 - lat.stages["exposure"] / nominal

    def schedule_feasible(
        self, variant: str, profile: WorkloadProfile, fps: float
    ) -> bool:
        """Can the Fig. 8 pipeline sustain the requested frame rate?

        Every stage must fit within a frame period, and for the in-sensor
        variants the previous frame's segmentation map must be back before
        this frame's ROI prediction starts: ``mipi + seg + backhaul <=
        frame_period`` (the backhaul shares the MIPI link and is tiny).
        """
        frame_period = 1.0 / fps
        lat = self.tracking_latency(variant, profile, fps)
        stage_fits = all(t <= frame_period for t in lat.stages.values())
        if variant in ("S+NPU", "BlissCam"):
            backhaul = self.mipi.transfer_latency(profile.seg_map_bytes)
            dependency = (
                lat.stages["mipi"]
                + lat.stages["segmentation"]
                + backhaul
                + lat.in_sensor_overhead
            )
            return stage_fits and dependency <= frame_period
        return stage_fits
