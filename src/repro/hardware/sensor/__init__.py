"""BlissCam sensor hardware: pixel circuits, ADC, SRAM RNG, sparse readout,
run-length coding, and the composed functional sensor simulator."""

from repro.hardware.sensor.adc import SingleSlopeADC
from repro.hardware.sensor.defects import DefectMap
from repro.hardware.sensor.noise_analysis import (
    EventificationErrorModel,
    adc_code_error_probability,
)
from repro.hardware.sensor.pixel import BLISSCAM_DPS, CONVENTIONAL_DPS, PixelCircuit
from repro.hardware.sensor.readout import ReadoutResult, SparseReadout
from repro.hardware.sensor.rle import RleStats, RunLengthCodec
from repro.hardware.sensor.sensor import BlissCamSensor, SensorFrameOutput
from repro.hardware.sensor.sram_rng import (
    BITS_PER_PIXEL,
    SramPowerUpRNG,
    ThresholdLUT,
)

__all__ = [
    "SingleSlopeADC",
    "DefectMap",
    "EventificationErrorModel",
    "adc_code_error_probability",
    "PixelCircuit",
    "CONVENTIONAL_DPS",
    "BLISSCAM_DPS",
    "SparseReadout",
    "ReadoutResult",
    "RunLengthCodec",
    "RleStats",
    "BlissCamSensor",
    "SensorFrameOutput",
    "SramPowerUpRNG",
    "ThresholdLUT",
    "BITS_PER_PIXEL",
]
