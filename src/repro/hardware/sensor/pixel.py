"""DPS pixel circuit model: component inventory and analog operation costs.

Mirrors Fig. 9 / Sec. VI-D: each pixel has a 4T APS on the top layer
(65 nm) and, on the bottom layer (22 nm analog), two 233 fF AZ capacitors,
one comparator, 13 switching transistors, a 10-bit (6T) SRAM, and trivial
digital logic (a 4-bit comparator, ~21 gates).  BlissCam's augmentation
over a conventional DPS is 7 extra switches plus the "If Skip ADC" logic,
estimated at ~12 SRAM-cell equivalents of area.

Energy figures are per-pixel analog costs used by the system energy model;
they are chosen so the composed sensor reproduces the paper's shares
(readout ~2/3 of conventional sensor power, eventification/ROI overheads
2-3 orders below a frame's energy).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PixelCircuit", "CONVENTIONAL_DPS", "BLISSCAM_DPS"]


@dataclass(frozen=True)
class PixelCircuit:
    """Per-pixel circuit inventory and analog energy coefficients."""

    name: str
    #: Component counts on the bottom layer (Sec. VI-D).
    capacitors: int
    comparators: int
    switch_transistors: int
    sram_bits: int
    logic_gates: int

    #: Energy of one comparator decision (eventification threshold check).
    comparator_event_energy_j: float = 55e-15
    #: Power to hold the previous frame's value on the AZ capacitor with
    #: the comparator in unity-gain buffer mode (analog memory retention).
    analog_hold_power_w: float = 2.6e-9
    #: Energy to transfer/settle one pixel onto the readout chain.
    sample_transfer_energy_j: float = 20e-15
    #: Exposure-time bias of the APS (photodiode + source follower).
    exposure_bias_power_w: float = 1.1e-9

    def eventification_energy(self, num_pixels: int) -> float:
        """Energy of one full-array eventification (two threshold checks:
        +sigma and -sigma applied sequentially through Vth1/Vth2)."""
        if num_pixels < 0:
            raise ValueError("negative pixel count")
        return 2 * num_pixels * self.comparator_event_energy_j

    def analog_memory_energy(self, num_pixels: int, hold_time_s: float) -> float:
        """Retention energy for holding frame t-1 during frame t's exposure."""
        if hold_time_s < 0:
            raise ValueError("negative hold time")
        return num_pixels * self.analog_hold_power_w * hold_time_s

    def exposure_energy(self, num_pixels: int, exposure_s: float) -> float:
        """Pixel-array bias energy over the exposure window."""
        if exposure_s < 0:
            raise ValueError("negative exposure")
        return num_pixels * self.exposure_bias_power_w * exposure_s


#: A conventional DPS bottom layer (e.g. the Meta stacked DPS [65]):
#: ADC-only readout, no eventification/sampling support.
CONVENTIONAL_DPS = PixelCircuit(
    name="conventional-dps",
    capacitors=2,
    comparators=1,
    switch_transistors=28,
    sram_bits=10,
    logic_gates=0,
)

#: BlissCam's augmented pixel (Fig. 9): +7 switches, 4-bit comparator and
#: ~21 gates of skip logic; same capacitors/comparator/SRAM reused.
BLISSCAM_DPS = PixelCircuit(
    name="blisscam-dps",
    capacitors=2,
    comparators=1,
    switch_transistors=13,
    sram_bits=10,
    logic_gates=21,
)
