"""Run-length encoding of the sparse readout stream (paper Sec. IV-C).

Only ~20 % of pixels within the ROI are sampled; the others output 0 from
the "If Skip ADC" logic.  The output buffer compresses the column-wise
stream with a run-length encoder before the MIPI interface, and the host
runs the matching decoder (Fig. 11's ``1110000000 -> 1307`` example).

Encoding format (bit-accurate for transmission-size accounting):

* a **literal** token carries one non-zero 10-bit pixel value: 1 flag bit
  + 10 value bits;
* a **zero-run** token carries a run of zeros: 1 flag bit + 12 length
  bits (runs longer than 4095 split into multiple tokens).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RunLengthCodec", "RleStats"]

_MAX_RUN = 4095  # 12-bit run length field
_LITERAL_BITS = 1 + 10
_RUN_BITS = 1 + 12


@dataclass(frozen=True)
class RleStats:
    """Size accounting for one encoded stream."""

    input_values: int
    literal_tokens: int
    run_tokens: int

    @property
    def encoded_bits(self) -> int:
        return self.literal_tokens * _LITERAL_BITS + self.run_tokens * _RUN_BITS

    @property
    def encoded_bytes(self) -> int:
        return (self.encoded_bits + 7) // 8

    @property
    def raw_bytes(self) -> int:
        return (self.input_values * 10 + 7) // 8

    @property
    def compression_ratio(self) -> float:
        if self.encoded_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.encoded_bytes


class RunLengthCodec:
    """Lossless RLE over streams of 10-bit pixel values."""

    @staticmethod
    def _validated(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"expected a 1-D stream, got shape {values.shape}")
        if values.size and (values.min() < 0 or values.max() > 1023):
            raise ValueError("pixel values must fit in 10 bits")
        return values

    def encode(self, values: np.ndarray) -> tuple[list[tuple[str, int]], RleStats]:
        """Encode a 1-D array of ints in [0, 1023].

        Returns ``(tokens, stats)`` where each token is ``("lit", value)``
        or ``("run", length)``.
        """
        values = self._validated(values)
        tokens: list[tuple[str, int]] = []
        literals = runs = 0
        i = 0
        n = values.size
        arr = values.astype(np.int64)
        while i < n:
            if arr[i] == 0:
                j = i
                while j < n and arr[j] == 0:
                    j += 1
                run = j - i
                while run > 0:
                    chunk = min(run, _MAX_RUN)
                    tokens.append(("run", chunk))
                    runs += 1
                    run -= chunk
                i = j
            else:
                tokens.append(("lit", int(arr[i])))
                literals += 1
                i += 1
        return tokens, RleStats(n, literals, runs)

    def stream_stats(self, values: np.ndarray) -> RleStats:
        """Size accounting without materializing the token list.

        Vectorized equivalent of ``encode(values)[1]``: literal tokens are
        the non-zero entries; run tokens are the zero-runs, with runs
        longer than the 12-bit field split into ``ceil(len / 4095)``
        tokens.  The batched engine's readout stage uses this to keep MIPI
        accounting exact while skipping the per-pixel python scan.
        """
        values = self._validated(values)
        zero = values == 0
        literals = int(values.size - np.count_nonzero(zero))
        if not zero.any():
            return RleStats(int(values.size), literals, 0)
        # Zero-run boundaries: starts where zero begins, ends where it stops.
        padded = np.concatenate(([False], zero, [False]))
        edges = np.diff(padded.astype(np.int8))
        starts = np.nonzero(edges == 1)[0]
        ends = np.nonzero(edges == -1)[0]
        lengths = ends - starts
        runs = int(np.sum((lengths + _MAX_RUN - 1) // _MAX_RUN))
        return RleStats(int(values.size), literals, runs)

    def decode(self, tokens: list[tuple[str, int]]) -> np.ndarray:
        """Reconstruct the original stream exactly."""
        out: list[np.ndarray] = []
        for kind, payload in tokens:
            if kind == "lit":
                if not 0 < payload <= 1023:
                    raise ValueError(f"invalid literal value: {payload}")
                out.append(np.array([payload], dtype=np.int64))
            elif kind == "run":
                if not 0 < payload <= _MAX_RUN:
                    raise ValueError(f"invalid run length: {payload}")
                out.append(np.zeros(payload, dtype=np.int64))
            else:
                raise ValueError(f"unknown token kind: {kind!r}")
        if not out:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(out)

    def encoded_bytes(self, values: np.ndarray) -> int:
        """Transmission size of the encoded stream, in bytes."""
        _, stats = self.encode(values)
        return stats.encoded_bytes
