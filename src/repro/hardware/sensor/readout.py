"""Sparse column-wise readout of the ROI (Fig. 11).

The in-sensor NPU's ROI corners drive the row/column decoders: all rows
between y1..y2 activate simultaneously, columns x1..x2 sequentially, so
the output-buffer stream is **column-major over the ROI**.  Sampled pixels
carry their quantized code; skipped pixels contribute 0 to the stream
(compressed away by the run-length encoder downstream).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparseReadout", "ReadoutResult"]


@dataclass(frozen=True)
class ReadoutResult:
    """One frame's readout: the column-major ROI stream and accounting."""

    stream: np.ndarray  # 1-D int64 codes, column-major over the ROI
    roi_box: tuple[int, int, int, int]
    converted_pixels: int
    skipped_pixels: int
    #: Seconds to shift the ROI through the output buffer.
    readout_time_s: float


@dataclass(frozen=True)
class SparseReadout:
    """Column-sequential ROI readout with per-pixel skip."""

    #: Column activation period: all rows of one column settle + shift out.
    column_time_s: float = 120e-9
    #: Fixed decoder/sequencer setup per frame.
    setup_time_s: float = 2e-6

    def read(
        self,
        codes: np.ndarray,
        sample_mask: np.ndarray,
        roi_box: tuple[int, int, int, int],
    ) -> ReadoutResult:
        """Extract the column-major sparse stream of the ROI.

        Parameters
        ----------
        codes:
            (H, W) integer pixel codes (already quantized for sampled
            pixels; values at unsampled locations are ignored).
        sample_mask:
            (H, W) boolean; True where the pixel was sampled.
        roi_box:
            Pixel box (r0, c0, r1, c1), half-open.
        """
        if codes.shape != sample_mask.shape:
            raise ValueError(
                f"shape mismatch: {codes.shape} vs {sample_mask.shape}"
            )
        r0, c0, r1, c1 = roi_box
        if not (0 <= r0 < r1 <= codes.shape[0] and 0 <= c0 < c1 <= codes.shape[1]):
            raise ValueError(f"ROI {roi_box} outside frame {codes.shape}")
        roi_codes = codes[r0:r1, c0:c1]
        roi_mask = sample_mask[r0:r1, c0:c1]
        sparse = np.where(roi_mask, roi_codes, 0)
        # Column-major: Fig. 11 reads the ROI column by column.
        stream = sparse.T.reshape(-1)
        converted = int(np.count_nonzero(roi_mask))
        total = roi_mask.size
        time = self.setup_time_s + (c1 - c0) * self.column_time_s
        return ReadoutResult(
            stream=stream,
            roi_box=roi_box,
            converted_pixels=converted,
            skipped_pixels=total - converted,
            readout_time_s=time,
        )

    @staticmethod
    def reconstruct(
        stream: np.ndarray,
        roi_box: tuple[int, int, int, int],
        frame_shape: tuple[int, int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Host-side inverse: stream -> (codes (H, W), mask (H, W)).

        Pixels with code 0 inside the ROI are treated as unsampled (the
        sensor lifts sampled pixels to >= 1 LSB before encoding).
        """
        r0, c0, r1, c1 = roi_box
        height, width = frame_shape
        rows, cols = r1 - r0, c1 - c0
        if stream.size != rows * cols:
            raise ValueError(
                f"stream length {stream.size} does not match ROI {roi_box}"
            )
        roi = stream.reshape(cols, rows).T
        codes = np.zeros(frame_shape, dtype=np.int64)
        codes[r0:r1, c0:c1] = roi
        mask = np.zeros(frame_shape, dtype=bool)
        mask[r0:r1, c0:c1] = roi > 0
        return codes, mask
