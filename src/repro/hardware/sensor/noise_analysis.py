"""Functional-error analysis of the analog eventification path.

Sec. V states that "the analog readout circuits ... are carefully
designed such that [their] read noise does not introduce functional
errors to the binary eventification and ADC quantization."  This module
provides the analysis a circuit designer runs to verify that: given a
comparator input-referred noise, an eventification threshold sigma, and
the scene's inter-frame difference statistics, what are the false-event
and missed-event probabilities — and how much comparator noise can the
design tolerate before the ROI predictor's input degrades?

The comparator decision is ``(dF + n) > sigma`` with ``n ~ N(0,
noise_rms)``; errors occur for pixels whose true |dF| is near the
threshold.  Closed-form Gaussian expressions are exact for this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # scipy is an *optional* extra (install blisscam-repro[analysis]);
    # this offline analysis module is its only consumer — the training
    # hot path's grey morphology moved to repro.nn.functional.
    from scipy.stats import norm
except ImportError:  # pragma: no cover - exercised in scipy-less envs
    norm = None

__all__ = ["EventificationErrorModel", "adc_code_error_probability"]


def _require_scipy() -> None:
    if norm is None:
        raise ImportError(
            "the eventification noise analysis needs scipy; install the "
            "optional extra: pip install blisscam-repro[analysis]"
        )


@dataclass(frozen=True)
class EventificationErrorModel:
    """Error probabilities of the thresholded comparator decision."""

    #: Input-referred comparator noise, RMS, in normalized full-scale units.
    noise_rms: float
    #: Eventification threshold (normalized; paper: 15/255).
    sigma: float

    def __post_init__(self):
        if self.noise_rms < 0:
            raise ValueError(f"noise must be non-negative: {self.noise_rms}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive: {self.sigma}")

    def false_event_probability(self, true_diff: float = 0.0) -> float:
        """P(event fires) for a pixel whose true |difference| < sigma.

        The bipolar check fires when ``diff + n > sigma`` or
        ``diff + n < -sigma``.
        """
        if self.noise_rms == 0:
            return 0.0 if abs(true_diff) <= self.sigma else 1.0
        _require_scipy()
        upper = norm.sf((self.sigma - true_diff) / self.noise_rms)
        lower = norm.cdf((-self.sigma - true_diff) / self.noise_rms)
        return float(upper + lower)

    def missed_event_probability(self, true_diff: float) -> float:
        """P(no event) for a pixel whose true |difference| > sigma."""
        if abs(true_diff) <= self.sigma:
            raise ValueError(
                f"|diff|={abs(true_diff)} is below sigma={self.sigma}; "
                "not a true event"
            )
        return 1.0 - self.false_event_probability(true_diff)

    def expected_false_events(
        self, num_pixels: int, background_diff_rms: float = 0.0
    ) -> float:
        """Expected spurious events per frame over a static background.

        ``background_diff_rms`` models residual temporal noise of the
        scene itself (photon shot noise across the two frames).
        """
        if num_pixels < 0:
            raise ValueError("negative pixel count")
        total_rms = float(np.hypot(self.noise_rms, background_diff_rms))
        model = EventificationErrorModel(total_rms, self.sigma)
        return num_pixels * model.false_event_probability(0.0)

    def max_tolerable_noise(
        self, false_rate_budget: float = 1e-4
    ) -> float:
        """Largest comparator noise meeting a per-pixel false-event budget.

        Solves ``2 * Q(sigma / noise) = budget`` — the design margin the
        paper's "carefully designed" claim corresponds to.
        """
        if not 0 < false_rate_budget < 1:
            raise ValueError("budget must be in (0, 1)")
        _require_scipy()
        z = norm.isf(false_rate_budget / 2)
        return self.sigma / z


def adc_code_error_probability(noise_rms: float, bit_depth: int = 10) -> float:
    """P(single-slope ADC code off by >= 1 LSB) due to comparator noise."""
    if noise_rms < 0:
        raise ValueError("noise must be non-negative")
    if bit_depth < 1:
        raise ValueError("bit depth must be >= 1")
    if noise_rms == 0:
        return 0.0
    _require_scipy()
    lsb = 1.0 / (2**bit_depth - 1)
    # The ramp crossing shifts by n; an error needs |n| > LSB/2.
    return float(2 * norm.sf((lsb / 2) / noise_rms))
