"""Functional BlissCam sensor: the complete in-sensor datapath (Sec. IV).

Executes, bit-accurately where it matters, the per-frame sequence of
Fig. 8/9/10/11:

1. **exposure** — the caller provides the new analog frame (already
   carrying photon shot noise from the scene simulation);
2. **eventification** — the analog frame difference against the value
   held on the AZ capacitor is compared with +/- sigma (two sequential
   comparator decisions), with comparator offset noise;
3. **ROI prediction** — a pluggable predictor (the trained
   :class:`~repro.sampling.roi.ROIPredictor`) maps the event map plus the
   fed-back previous segmentation map to a normalized box;
4. **random sampling** — the SRAM power-up RNG and the 4-bit threshold
   LUT decide, per pixel, whether to quantize;
5. **sparse readout** — sampled pixels inside the ROI are quantized by
   the SS ADC (lifted to >= 1 LSB), skipped pixels stream out as 0,
   column-major;
6. **run-length encoding** — the stream is compressed for MIPI.

The host side (:meth:`host_decode`) decodes RLE and reconstructs the
sparse frame + mask the segmentation network consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hardware.sensor.adc import SingleSlopeADC
from repro.hardware.sensor.pixel import BLISSCAM_DPS, PixelCircuit
from repro.hardware.sensor.readout import ReadoutResult, SparseReadout
from repro.hardware.sensor.rle import RleStats, RunLengthCodec
from repro.hardware.sensor.sram_rng import SramPowerUpRNG, ThresholdLUT
from repro.sampling.eventification import DEFAULT_SIGMA
from repro.sampling.roi import box_to_pixels, order_box

__all__ = ["BlissCamSensor", "SensorFrameOutput"]

#: A predictor maps (event_map, prev_segmentation | None) -> normalized box.
RoiPredictorFn = Callable[[np.ndarray, np.ndarray | None], np.ndarray]


@dataclass
class SensorFrameOutput:
    """Everything the sensor emits for one frame, plus accounting."""

    event_map: np.ndarray  # (H, W) bool
    roi_box_norm: np.ndarray  # (4,) normalized
    roi_box: tuple[int, int, int, int]  # pixel box
    sample_mask: np.ndarray  # (H, W) bool — RNG decisions inside the ROI
    readout: ReadoutResult
    rle_tokens: list[tuple[str, int]]
    rle_stats: RleStats

    @property
    def transmitted_bytes(self) -> int:
        return self.rle_stats.encoded_bytes

    @property
    def sampled_pixels(self) -> int:
        return self.readout.converted_pixels


class BlissCamSensor:
    """Stateful functional model of the augmented DPS."""

    def __init__(
        self,
        height: int,
        width: int,
        roi_predictor: RoiPredictorFn,
        sampling_rate: float = 0.2,
        sigma: float = DEFAULT_SIGMA,
        pixel: PixelCircuit = BLISSCAM_DPS,
        adc: SingleSlopeADC | None = None,
        comparator_noise: float = 1.0 / 1023,
        rng_variation: float = 0.25,
        seed: int = 0,
    ):
        if not 0 < sampling_rate <= 1:
            raise ValueError(f"sampling rate must be in (0, 1]: {sampling_rate}")
        self.height = height
        self.width = width
        self.sigma = sigma
        self.sampling_rate = sampling_rate
        self.pixel = pixel
        self.adc = adc or SingleSlopeADC()
        self.readout_unit = SparseReadout()
        self.codec = RunLengthCodec()
        self.roi_predictor = roi_predictor
        self.comparator_noise = comparator_noise
        self._noise_rng = np.random.default_rng(seed)
        self.sram_rng = SramPowerUpRNG(
            height * width, variation=rng_variation, seed=seed + 1
        )
        self.lut: ThresholdLUT = self.sram_rng.calibrate()
        self.theta = self.lut.theta_for_rate(sampling_rate)
        #: Analog memory: frame t-1 held on the AZ capacitors.
        self._held_frame: np.ndarray | None = None

    def reset(self) -> None:
        """Drop the held frame (e.g. at sequence boundaries)."""
        self._held_frame = None

    # -- stage models ------------------------------------------------------------
    def _analog_eventify(self, frame: np.ndarray) -> np.ndarray:
        """Comparator-based |F_t - F_{t-1}| > sigma with offset noise."""
        held = self._held_frame
        diff = frame - held
        noise = self._noise_rng.normal(
            0.0, self.comparator_noise, size=(2, *frame.shape)
        )
        # Two sequential decisions through Vth1/Vth2 (Fig. 9).
        above = diff + noise[0] > self.sigma
        below = diff + noise[1] < -self.sigma
        return above | below

    def capture(
        self, frame: np.ndarray, prev_segmentation: np.ndarray | None
    ) -> SensorFrameOutput | None:
        """Process one exposure; returns None for the very first frame.

        Parameters
        ----------
        frame:
            The new analog frame, normalized [0, 1] (noise already applied
            by the scene/optics simulation).
        prev_segmentation:
            The previous frame's segmentation map sent back from the host
            over MIPI (the Fig. 8 cross-frame dependency); None when not
            yet available.
        """
        if frame.shape != (self.height, self.width):
            raise ValueError(
                f"frame shape {frame.shape} != sensor {self.height}x{self.width}"
            )
        if self._held_frame is None:
            # Bootstrap: hold the first frame; nothing to difference yet.
            self._held_frame = frame.copy()
            return None

        event_map = self._analog_eventify(frame)
        box_norm = order_box(
            np.asarray(self.roi_predictor(event_map, prev_segmentation))
        )
        pixel_box = box_to_pixels(box_norm, self.height, self.width)

        # SRAM power-up RNG decides sampling for every pixel; only those
        # inside the ROI are read out.
        rng_mask = self.sram_rng.sample_mask((self.height, self.width), self.theta)
        sample_mask = np.zeros_like(rng_mask)
        r0, c0, r1, c1 = pixel_box
        sample_mask[r0:r1, c0:c1] = rng_mask[r0:r1, c0:c1]

        # ADC only at sampled pixels; 1-LSB lift so RLE zeros mean "skipped".
        codes = np.zeros((self.height, self.width), dtype=np.int64)
        if sample_mask.any():
            codes[sample_mask] = self.adc.quantize(
                frame[sample_mask], clamp_min_lsb=1
            )
        readout = self.readout_unit.read(codes, sample_mask, pixel_box)
        tokens, stats = self.codec.encode(readout.stream)

        # The new frame replaces the held one for the next eventification.
        self._held_frame = frame.copy()
        return SensorFrameOutput(
            event_map=event_map,
            roi_box_norm=box_norm,
            roi_box=pixel_box,
            sample_mask=sample_mask,
            readout=readout,
            rle_tokens=tokens,
            rle_stats=stats,
        )

    # -- host side ---------------------------------------------------------------
    def host_decode(
        self, output: SensorFrameOutput
    ) -> tuple[np.ndarray, np.ndarray]:
        """RLE-decode and reconstruct ``(sparse_frame [0,1], mask)``."""
        stream = self.codec.decode(output.rle_tokens)
        codes, mask = SparseReadout.reconstruct(
            stream, output.roi_box, (self.height, self.width)
        )
        sparse = codes.astype(np.float64) / (self.adc.levels - 1)
        return sparse * mask, mask
