"""Functional BlissCam sensor: the complete in-sensor datapath (Sec. IV).

Executes, bit-accurately where it matters, the per-frame sequence of
Fig. 8/9/10/11:

1. **exposure** — the caller provides the new analog frame (already
   carrying photon shot noise from the scene simulation);
2. **eventification** — the analog frame difference against the value
   held on the AZ capacitor is compared with +/- sigma (two sequential
   comparator decisions), with comparator offset noise;
3. **ROI prediction** — a pluggable predictor (the trained
   :class:`~repro.sampling.roi.ROIPredictor`) maps the event map plus the
   fed-back previous segmentation map to a normalized box;
4. **random sampling** — the SRAM power-up RNG and the 4-bit threshold
   LUT decide, per pixel, whether to quantize;
5. **sparse readout** — sampled pixels inside the ROI are quantized by
   the SS ADC (lifted to >= 1 LSB), skipped pixels stream out as 0,
   column-major;
6. **run-length encoding** — the stream is compressed for MIPI.

The host side (:meth:`host_decode`) decodes RLE and reconstructs the
sparse frame + mask the segmentation network consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hardware.sensor.adc import SingleSlopeADC
from repro.hardware.sensor.pixel import BLISSCAM_DPS, PixelCircuit
from repro.hardware.sensor.readout import ReadoutResult, SparseReadout
from repro.hardware.sensor.rle import RleStats, RunLengthCodec
from repro.hardware.sensor.sram_rng import SramPowerUpRNG, ThresholdLUT
from repro.sampling.eventification import DEFAULT_SIGMA
from repro.sampling.roi import box_to_pixels, order_box

__all__ = ["BlissCamSensor", "SensorFrameOutput"]

#: A predictor maps (event_map, prev_segmentation | None) -> normalized box.
RoiPredictorFn = Callable[[np.ndarray, np.ndarray | None], np.ndarray]


@dataclass
class SensorFrameOutput:
    """Everything the sensor emits for one frame, plus accounting."""

    event_map: np.ndarray  # (H, W) bool
    roi_box_norm: np.ndarray  # (4,) normalized
    roi_box: tuple[int, int, int, int]  # pixel box
    sample_mask: np.ndarray  # (H, W) bool — RNG decisions inside the ROI
    readout: ReadoutResult
    rle_tokens: list[tuple[str, int]]
    rle_stats: RleStats

    @property
    def transmitted_bytes(self) -> int:
        return self.rle_stats.encoded_bytes

    @property
    def sampled_pixels(self) -> int:
        return self.readout.converted_pixels


class BlissCamSensor:
    """Stateful functional model of the augmented DPS."""

    def __init__(
        self,
        height: int,
        width: int,
        roi_predictor: RoiPredictorFn,
        sampling_rate: float = 0.2,
        sigma: float = DEFAULT_SIGMA,
        pixel: PixelCircuit = BLISSCAM_DPS,
        adc: SingleSlopeADC | None = None,
        comparator_noise: float = 1.0 / 1023,
        rng_variation: float = 0.25,
        seed: int = 0,
    ):
        if not 0 < sampling_rate <= 1:
            raise ValueError(f"sampling rate must be in (0, 1]: {sampling_rate}")
        self.height = height
        self.width = width
        self.sigma = sigma
        self.sampling_rate = sampling_rate
        self.pixel = pixel
        self.adc = adc or SingleSlopeADC()
        self.readout_unit = SparseReadout()
        self.codec = RunLengthCodec()
        self.roi_predictor = roi_predictor
        self.comparator_noise = comparator_noise
        self._noise_rng = np.random.default_rng(seed)
        self.sram_rng = SramPowerUpRNG(
            height * width, variation=rng_variation, seed=seed + 1
        )
        self.lut: ThresholdLUT = self.sram_rng.calibrate()
        self.theta = self.lut.theta_for_rate(sampling_rate)
        #: Analog memory: frame t-1 held on the AZ capacitors.
        self._held_frame: np.ndarray | None = None

    def reset(self) -> None:
        """Drop the held frame (e.g. at sequence boundaries)."""
        self._held_frame = None

    def spawn(self, seed_key) -> "BlissCamSensor":
        """A clone of the *same manufactured chip* with fresh runtime noise.

        The clone shares everything fixed at manufacture/calibration time
        (pixel circuit, ADC, SRAM power-up biases, threshold LUT, theta)
        but gets independent runtime noise streams seeded by ``seed_key``
        (an int or a sequence of ints).  The staged execution engine uses
        one spawn per evaluated sequence so that sequences draw from
        independent, order-insensitive noise streams — the property that
        makes batched lockstep execution bitwise-identical to the
        sequential loop.
        """
        import copy

        key = list(seed_key) if np.iterable(seed_key) else [int(seed_key)]
        clone = copy.copy(self)
        clone._noise_rng = np.random.default_rng(key + [0])
        clone.sram_rng = self.sram_rng.spawn(key + [1])
        clone._held_frame = None
        return clone

    # -- stage models ------------------------------------------------------------
    def draw_comparator_noise(self, shape: tuple[int, int]) -> np.ndarray:
        """The two comparator offset-noise planes for one eventification."""
        return self._noise_rng.normal(0.0, self.comparator_noise, size=(2, *shape))

    def eventify_inputs(
        self, frame: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The (diff, noise) operands of one comparator decision, or None.

        Returns None on the bootstrap frame.  Replaces the held
        AZ-capacitor frame with ``frame`` either way and draws this
        frame's comparator noise — i.e. it advances all per-frame sensor
        state, so callers (the batched engine) can vectorize the pure
        comparison ``|diff + noise| > sigma`` across sensors without
        touching sensor internals.
        """
        if frame.shape != (self.height, self.width):
            raise ValueError(
                f"frame shape {frame.shape} != sensor {self.height}x{self.width}"
            )
        if self._held_frame is None:
            self._held_frame = frame.copy()
            return None
        diff = frame - self._held_frame
        noise = self.draw_comparator_noise(frame.shape)
        self._held_frame = frame.copy()
        return diff, noise

    @staticmethod
    def comparator_decide(
        diff: np.ndarray, noise: np.ndarray, sigma
    ) -> np.ndarray:
        """Comparator-based |diff| > sigma with offset noise.

        Two sequential decisions through Vth1/Vth2 (Fig. 9).  Pure and
        elementwise, so the batched engine can apply it to stacked
        ``eventify_inputs`` of many sensors with bitwise-identical
        results.
        """
        above = diff + noise[..., 0, :, :] > sigma
        below = diff + noise[..., 1, :, :] < -sigma
        return above | below

    # -- per-frame stage steps ---------------------------------------------------
    # ``capture`` is the monolithic convenience wrapper; the staged engine
    # calls the three steps below directly (eventify -> [ROI predict] ->
    # sample -> readout) so ROI prediction can be intercepted (reuse
    # policies) without touching sensor internals.  RNG draw order per
    # frame is: comparator noise first, then SRAM power-up bits.

    def eventify_step(self, frame: np.ndarray) -> np.ndarray | None:
        """Eventify against the held frame; None on the bootstrap frame.

        Replaces the held AZ-capacitor frame with ``frame`` either way.
        """
        inputs = self.eventify_inputs(frame)
        if inputs is None:
            return None
        diff, noise = inputs
        return self.comparator_decide(diff, noise, self.sigma)

    def mask_from_popcounts(
        self, popcounts: np.ndarray, pixel_box: tuple[int, int, int, int]
    ) -> np.ndarray:
        """Threshold per-pixel popcounts and restrict to the ROI.

        The deterministic half of the sampling decision, shared by
        :meth:`sampling_step` and the batched engine (which stacks the
        power-up draws of many sensors before thresholding).
        """
        rng_mask = (popcounts >= self.theta).reshape((self.height, self.width))
        sample_mask = np.zeros_like(rng_mask)
        r0, c0, r1, c1 = pixel_box
        sample_mask[r0:r1, c0:c1] = rng_mask[r0:r1, c0:c1]
        return sample_mask

    def sampling_step(
        self, pixel_box: tuple[int, int, int, int]
    ) -> np.ndarray:
        """SRAM power-up RNG sampling decisions, restricted to the ROI."""
        return self.mask_from_popcounts(
            self.sram_rng.power_up_popcounts(), pixel_box
        )

    def _convert_and_read(
        self,
        frame: np.ndarray,
        sample_mask: np.ndarray,
        pixel_box: tuple[int, int, int, int],
    ) -> tuple[np.ndarray, ReadoutResult]:
        # ADC only at sampled pixels; 1-LSB lift so RLE zeros mean "skipped".
        codes = np.zeros((self.height, self.width), dtype=np.int64)
        if sample_mask.any():
            codes[sample_mask] = self.adc.quantize(
                frame[sample_mask], clamp_min_lsb=1
            )
        return codes, self.readout_unit.read(codes, sample_mask, pixel_box)

    def readout_step(
        self,
        frame: np.ndarray,
        sample_mask: np.ndarray,
        pixel_box: tuple[int, int, int, int],
    ) -> tuple[np.ndarray, ReadoutResult, list[tuple[str, int]], RleStats]:
        """ADC conversion + sparse readout + RLE for one frame.

        Returns ``(codes, readout, rle_tokens, rle_stats)``.
        """
        codes, readout = self._convert_and_read(frame, sample_mask, pixel_box)
        tokens, stats = self.codec.encode(readout.stream)
        return codes, readout, tokens, stats

    def readout_step_direct(
        self,
        frame: np.ndarray,
        sample_mask: np.ndarray,
        pixel_box: tuple[int, int, int, int],
    ) -> tuple[np.ndarray, ReadoutResult, RleStats]:
        """Like :meth:`readout_step`, skipping token materialization.

        The RLE round-trip is lossless, so transmission-size accounting
        can come from the vectorized :meth:`RunLengthCodec.stream_stats`
        and the host can rebuild the sparse frame directly from ``codes``
        — bitwise identical to decoding the token stream, without the
        per-pixel python scan.  This is the batched engine's hot path.
        """
        codes, readout = self._convert_and_read(frame, sample_mask, pixel_box)
        return codes, readout, self.codec.stream_stats(readout.stream)

    def capture(
        self, frame: np.ndarray, prev_segmentation: np.ndarray | None
    ) -> SensorFrameOutput | None:
        """Process one exposure; returns None for the very first frame.

        Parameters
        ----------
        frame:
            The new analog frame, normalized [0, 1] (noise already applied
            by the scene/optics simulation).
        prev_segmentation:
            The previous frame's segmentation map sent back from the host
            over MIPI (the Fig. 8 cross-frame dependency); None when not
            yet available.
        """
        event_map = self.eventify_step(frame)
        if event_map is None:
            return None

        box_norm = order_box(
            np.asarray(self.roi_predictor(event_map, prev_segmentation))
        )
        pixel_box = box_to_pixels(box_norm, self.height, self.width)

        # SRAM power-up RNG decides sampling for every pixel; only those
        # inside the ROI are read out.
        sample_mask = self.sampling_step(pixel_box)
        _, readout, tokens, stats = self.readout_step(
            frame, sample_mask, pixel_box
        )
        return SensorFrameOutput(
            event_map=event_map,
            roi_box_norm=box_norm,
            roi_box=pixel_box,
            sample_mask=sample_mask,
            readout=readout,
            rle_tokens=tokens,
            rle_stats=stats,
        )

    # -- host side ---------------------------------------------------------------
    def host_decode_tokens(
        self, tokens: list[tuple[str, int]], roi_box: tuple[int, int, int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """RLE-decode a token stream into ``(sparse_frame [0,1], mask)``.

        The one implementation of the host-side decode contract, shared by
        :meth:`host_decode` and the engine's readout stage.
        """
        stream = self.codec.decode(tokens)
        codes, mask = SparseReadout.reconstruct(
            stream, roi_box, (self.height, self.width)
        )
        sparse = codes.astype(np.float64) / (self.adc.levels - 1)
        return sparse * mask, mask

    def host_decode(
        self, output: SensorFrameOutput
    ) -> tuple[np.ndarray, np.ndarray]:
        """RLE-decode and reconstruct ``(sparse_frame [0,1], mask)``."""
        return self.host_decode_tokens(output.rle_tokens, output.roi_box)
