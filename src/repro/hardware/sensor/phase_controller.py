"""Analog phase sequencer: the per-frame switch schedule of Figs. 9/10.

BlissCam time-multiplexes one comparator + two AZ capacitors per pixel
between three roles — analog memory, switched-capacitor subtractor/
thresholder, and single-slope ADC.  The paper's "new timing design"
contribution is the schedule that steps every pixel through:

====================  ====================================================
``HOLD``              comparator in unity-gain feedback (``Hold`` closed);
                      frame t-1 retained on ``Caz-`` during exposure of t
``EVENTIFY_POS``      ``Hold`` open, ``Caz+`` tied to ``+sigma`` (Vth1);
                      comparator output = (F_{t-1} - F_t > sigma)
``EVENTIFY_NEG``      ``Caz+`` tied to ``-sigma`` (Vth2); second polarity
``ROI_WAIT``          SRAM holds the event bit; in-sensor NPU runs;
                      SRAM then power-cycles to harvest RNG bits
``ADC``               sampled pixels only: ``Caz+`` receives the ramp,
                      counter runs (skip logic grounds unsampled outputs)
``READOUT``           column-sequential transfer to the output buffer
====================  ====================================================

The controller enforces legal transitions, tracks per-phase switch
states, and accumulates per-phase dwell times so a frame's schedule can
be validated against the frame period (the Fig. 8 constraint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Phase", "SwitchState", "PhaseController", "PHASE_SWITCHES"]


class Phase(Enum):
    HOLD = "hold"
    EVENTIFY_POS = "eventify+sigma"
    EVENTIFY_NEG = "eventify-sigma"
    ROI_WAIT = "roi-wait"
    ADC = "adc"
    READOUT = "readout"


@dataclass(frozen=True)
class SwitchState:
    """The red/blue switch settings of Fig. 9 for one phase."""

    hold_closed: bool  # comparator feedback loop (analog buffer mode)
    caz_plus_source: str  # "vth1" | "vth2" | "ramp" | "ref"
    counter_enabled: bool
    sram_powered: bool

    def describe(self) -> str:
        return (
            f"Hold={'closed' if self.hold_closed else 'open'}, "
            f"Caz+<-{self.caz_plus_source}, "
            f"counter={'on' if self.counter_enabled else 'off'}, "
            f"SRAM={'on' if self.sram_powered else 'gated'}"
        )


#: Circuit configuration per phase (Fig. 10's three panels + glue states).
PHASE_SWITCHES: dict[Phase, SwitchState] = {
    Phase.HOLD: SwitchState(True, "ref", False, False),
    Phase.EVENTIFY_POS: SwitchState(False, "vth1", False, True),
    Phase.EVENTIFY_NEG: SwitchState(False, "vth2", False, True),
    Phase.ROI_WAIT: SwitchState(False, "ref", False, True),
    Phase.ADC: SwitchState(False, "ramp", True, True),
    Phase.READOUT: SwitchState(False, "ref", False, True),
}

#: Legal phase graph: the Fig. 8 per-frame order, with HOLD re-entered
#: after readout (the new frame becomes the held frame).
_LEGAL_NEXT: dict[Phase, tuple[Phase, ...]] = {
    Phase.HOLD: (Phase.EVENTIFY_POS,),
    Phase.EVENTIFY_POS: (Phase.EVENTIFY_NEG,),
    Phase.EVENTIFY_NEG: (Phase.ROI_WAIT,),
    Phase.ROI_WAIT: (Phase.ADC,),
    Phase.ADC: (Phase.READOUT,),
    Phase.READOUT: (Phase.HOLD,),
}


@dataclass
class PhaseController:
    """Steps the pixel array through the per-frame phase sequence."""

    phase: Phase = Phase.HOLD
    dwell_s: dict[Phase, float] = field(default_factory=dict)
    _history: list[Phase] = field(default_factory=list)

    def __post_init__(self):
        self._history.append(self.phase)

    @property
    def switches(self) -> SwitchState:
        return PHASE_SWITCHES[self.phase]

    @property
    def history(self) -> tuple[Phase, ...]:
        return tuple(self._history)

    def advance(self, to: Phase, dwell_s: float) -> SwitchState:
        """Transition to the next phase, recording time spent in it.

        Raises on illegal transitions — the schedule bug a timing designer
        wants to catch in simulation, not silicon.
        """
        if dwell_s < 0:
            raise ValueError(f"negative dwell time: {dwell_s}")
        if to not in _LEGAL_NEXT[self.phase]:
            raise ValueError(
                f"illegal transition {self.phase.value} -> {to.value}; "
                f"legal: {[p.value for p in _LEGAL_NEXT[self.phase]]}"
            )
        self.dwell_s[to] = self.dwell_s.get(to, 0.0) + dwell_s
        self.phase = to
        self._history.append(to)
        return self.switches

    def run_frame(
        self,
        exposure_s: float,
        eventify_s: float,
        roi_s: float,
        adc_s: float,
        readout_s: float,
    ) -> float:
        """Execute one full frame schedule; returns total frame time.

        Must be called with the controller in ``HOLD`` (the steady state
        between frames).
        """
        if self.phase is not Phase.HOLD:
            raise RuntimeError(
                f"frame must start from HOLD, currently {self.phase.value}"
            )
        self.advance(Phase.EVENTIFY_POS, exposure_s)
        self.advance(Phase.EVENTIFY_NEG, eventify_s / 2)
        self.advance(Phase.ROI_WAIT, eventify_s / 2)
        self.advance(Phase.ADC, roi_s)
        self.advance(Phase.READOUT, adc_s)
        self.advance(Phase.HOLD, readout_s)
        return exposure_s + eventify_s + roi_s + adc_s + readout_s

    def frames_completed(self) -> int:
        """Number of complete frame cycles executed."""
        return max(0, self._history.count(Phase.HOLD) - 1)

    def validate_against_period(self, frame_period_s: float) -> bool:
        """Does the accumulated per-frame schedule fit the frame period?

        Checks the *average* frame time over completed frames — the
        pipelined Fig. 8 constraint on sustained rate.
        """
        frames = self.frames_completed()
        if frames == 0:
            raise RuntimeError("no complete frames recorded")
        # Sorted operands (REP104): phase-dict insertion order must not
        # leak into the float total (Phase enums sort by name).
        total = sum(
            v for _, v in sorted(self.dwell_s.items(), key=lambda kv: kv[0].name)
        )
        return total / frames <= frame_period_s + 1e-12
