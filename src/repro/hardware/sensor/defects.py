"""Pixel-defect model: dead, hot, and stuck pixels (failure injection).

Real sensors ship with defective pixels (dark/bright/stuck columns), and
an in-sensor differencing pipeline must tolerate them.  BlissCam is
naturally robust to *static* defects: a dead or hot pixel never changes
between frames, so it produces no events, never enters the ROI cue, and
at worst wastes a sampled slot.  This module injects defects so tests and
experiments can verify that robustness quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DefectMap"]


@dataclass(frozen=True)
class DefectMap:
    """Static per-pixel defects applied to every frame."""

    #: Boolean maps; a pixel should appear in at most one of them.
    dead: np.ndarray  # reads 0 regardless of light
    hot: np.ndarray  # reads full scale regardless of light
    stuck: np.ndarray  # frozen at a fixed mid-scale value
    stuck_value: float = 0.5

    def __post_init__(self):
        if not (self.dead.shape == self.hot.shape == self.stuck.shape):
            raise ValueError("defect maps must share one shape")
        overlap = (
            (self.dead & self.hot) | (self.dead & self.stuck) | (self.hot & self.stuck)
        )
        if overlap.any():
            raise ValueError("a pixel cannot have two defect types")
        if not 0.0 <= self.stuck_value <= 1.0:
            raise ValueError(f"stuck value must be in [0, 1]: {self.stuck_value}")

    @property
    def shape(self) -> tuple[int, int]:
        return self.dead.shape

    @property
    def defect_count(self) -> int:
        return int(self.dead.sum() + self.hot.sum() + self.stuck.sum())

    @property
    def any_defect(self) -> np.ndarray:
        return self.dead | self.hot | self.stuck

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Return the frame as the defective array actually reports it."""
        if frame.shape != self.shape:
            raise ValueError(f"frame {frame.shape} != defects {self.shape}")
        out = frame.copy()
        out[self.dead] = 0.0
        out[self.hot] = 1.0
        out[self.stuck] = self.stuck_value
        return out

    @staticmethod
    def random(
        shape: tuple[int, int],
        rng: np.random.Generator,
        dead_fraction: float = 1e-3,
        hot_fraction: float = 1e-3,
        stuck_fraction: float = 0.0,
    ) -> "DefectMap":
        """Sample a defect map with the given per-type densities."""
        total = dead_fraction + hot_fraction + stuck_fraction
        if total > 0.5:
            raise ValueError(f"defect fractions too high: {total}")
        draw = rng.random(shape)
        dead = draw < dead_fraction
        hot = (draw >= dead_fraction) & (draw < dead_fraction + hot_fraction)
        stuck = (draw >= dead_fraction + hot_fraction) & (draw < total)
        return DefectMap(dead=dead, hot=hot, stuck=stuck)

    @staticmethod
    def none(shape: tuple[int, int]) -> "DefectMap":
        zero = np.zeros(shape, dtype=bool)
        return DefectMap(dead=zero, hot=zero.copy(), stuck=zero.copy())
