"""SRAM power-up metastability random number generator (paper Sec. IV-C).

BlissCam generates the per-pixel random sampling bit by reusing the 10-bit
per-pixel SRAM: on power-up each 6T cell latches to 0/1 essentially at
random (metastability resolved by thermal noise), but *biased* per cell by
process variation.  Summing the 10 power-up bits of a pixel (a popcount)
and comparing against a 4-bit threshold ``theta`` mitigates the per-cell
bias; a one-time offline calibration profiles the popcount distribution
and builds a 16-entry look-up table from target sampling rate to theta.

The model: cell ``i`` of pixel ``p`` latches to 1 with probability
``p_{pi}`` drawn once (at "manufacture") from a Beta distribution centred
at 0.5 whose concentration reflects process variation — matching the
measurement-based statistics the paper borrows from Holcomb et al. and
Wieckowski et al.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SramPowerUpRNG", "ThresholdLUT", "BITS_PER_PIXEL"]

#: The DPS stores 10-bit pixels, so 10 cells participate in the popcount.
BITS_PER_PIXEL = 10


@dataclass(frozen=True)
class ThresholdLUT:
    """The 16-entry sampling-rate -> theta table built by calibration.

    ``rate_for_theta[t]`` is the measured probability that a pixel's
    popcount is **>= t** (the pixel is sampled), for ``t`` in 0..15 (4-bit
    theta; popcounts only reach 10, so entries 11..15 give rate 0).
    """

    rate_for_theta: tuple[float, ...]

    def __post_init__(self):
        if len(self.rate_for_theta) != 16:
            raise ValueError("LUT must have exactly 16 entries (4-bit theta)")

    def theta_for_rate(self, target_rate: float) -> int:
        """Smallest theta whose achieved rate does not exceed the target.

        Rates are monotonically non-increasing in theta; theta=0 samples
        everything.
        """
        if not 0.0 <= target_rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1]: {target_rate}")
        for theta in range(16):
            if self.rate_for_theta[theta] <= target_rate:
                return theta
        return 15

    def achieved_rate(self, theta: int) -> float:
        if not 0 <= theta <= 15:
            raise ValueError(f"theta must be a 4-bit value: {theta}")
        return self.rate_for_theta[theta]


class SramPowerUpRNG:
    """Per-pixel popcount-of-power-up-bits random source.

    Parameters
    ----------
    num_pixels:
        Size of the pixel array (cells are ``num_pixels x 10``).
    variation:
        Process-variation strength: standard deviation of the per-cell
        power-up bias around 0.5.  Holcomb et al. report strongly biased
        cells are common; 0.25 puts many cells near deterministic while
        the popcount stays usable — which is exactly why the paper sums
        10 bits instead of using a single cell.
    seed:
        Seeds both the manufacture-time biases and runtime noise.
    """

    def __init__(self, num_pixels: int, variation: float = 0.25, seed: int = 0):
        if num_pixels < 1:
            raise ValueError(f"need at least one pixel: {num_pixels}")
        if not 0.0 <= variation < 0.5:
            raise ValueError(f"variation must be in [0, 0.5): {variation}")
        self.num_pixels = num_pixels
        self.rng = np.random.default_rng(seed)
        if variation == 0.0:
            self._bias = np.full((num_pixels, BITS_PER_PIXEL), 0.5)
        else:
            # Beta with matching std, symmetric around 0.5.
            conc = (0.25 - variation**2) / (variation**2) / 2.0
            conc = max(conc, 0.05)
            self._bias = self.rng.beta(conc, conc, size=(num_pixels, BITS_PER_PIXEL))
        # Cached half-width biases so the per-frame Bernoulli comparison
        # stays in float32 (no silent upcast of the draw).
        self._bias_f32 = self._bias.astype(np.float32)

    def spawn(self, seed_key) -> "SramPowerUpRNG":
        """Same manufactured cell biases, fresh runtime randomness.

        Power-up biases are fixed at manufacture; only the thermal noise
        that resolves metastability differs between power cycles.  The
        clone therefore keeps ``_bias`` (and hence any calibrated LUT stays
        valid) while drawing power-up bits from a new stream seeded by
        ``seed_key`` (an int or a sequence of ints).
        """
        import copy

        clone = copy.copy(self)
        clone.rng = np.random.default_rng(seed_key)
        return clone

    def power_up_bits(self) -> np.ndarray:
        """One power-up event: the (num_pixels, 10) latched cell values.

        Thermal noise is drawn in float32 — the per-cell bias only needs a
        Bernoulli comparison, and the half-width draw roughly halves the
        cost of the hottest RNG in the frame loop.
        """
        draw = self.rng.random(
            (self.num_pixels, BITS_PER_PIXEL), dtype=np.float32
        )
        return draw < self._bias_f32

    def power_up_popcounts(self) -> np.ndarray:
        """One power-up event: the 10-bit popcount of every pixel."""
        return self.power_up_bits().sum(axis=1)

    def calibrate(self, cycles: int = 64) -> ThresholdLUT:
        """Offline profiling: power up/down ``cycles`` times, build the LUT."""
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1: {cycles}")
        counts = np.zeros(16, dtype=np.float64)
        total = 0
        for _ in range(cycles):
            pop = self.power_up_popcounts()
            for theta in range(16):
                counts[theta] += np.count_nonzero(pop >= theta)
            total += self.num_pixels
        return ThresholdLUT(tuple(float(c / total) for c in counts))

    def sample_mask(self, shape: tuple[int, int], theta: int) -> np.ndarray:
        """Runtime sampling decision for every pixel, as a (H, W) mask."""
        if shape[0] * shape[1] != self.num_pixels:
            raise ValueError(
                f"shape {shape} does not match {self.num_pixels} pixels"
            )
        if not 0 <= theta <= 15:
            raise ValueError(f"theta must be a 4-bit value: {theta}")
        pop = self.power_up_popcounts()
        return (pop >= theta).reshape(shape)
