"""Single-slope ADC model (per-pixel quantization in the DPS).

A 10-bit SS ADC sweeps a ramp over up to 1024 counter cycles; the
comparator toggles when the ramp crosses the pixel value.  Sparse readout
skips the conversion entirely for unsampled pixels ("If Skip ADC" logic),
which is where BlissCam's readout-chain energy saving comes from.

The per-conversion energy (comparator switching + counter + amortized ramp
generator) is calibrated so a conventional full-frame sensor spends about
two thirds of its power in the readout chain, the survey average of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SingleSlopeADC"]


@dataclass(frozen=True)
class SingleSlopeADC:
    """Per-pixel 10-bit single-slope ADC."""

    bit_depth: int = 10
    #: Energy of one complete conversion (comparator + counter + ramp share).
    conversion_energy_j: float = 180e-12
    #: Counter clock; a full ramp takes 2**bit_depth cycles.
    counter_clock_hz: float = 200e6
    #: Energy for a skipped pixel (skip logic decision + zero output).
    skip_energy_j: float = 0.4e-12

    @property
    def levels(self) -> int:
        return 2**self.bit_depth

    @property
    def conversion_time_s(self) -> float:
        """Worst-case ramp duration (all per-pixel ADCs convert in parallel)."""
        return self.levels / self.counter_clock_hz

    def quantize(self, normalized, clamp_min_lsb: int = 0):
        """Quantize normalized [0, 1] values to integer codes.

        ``clamp_min_lsb`` lifts sampled-but-black pixels to at least that
        code so the run-length coder can distinguish them from skipped
        pixels (BlissCam applies a 1-LSB offset to sampled pixels).
        """
        import numpy as np

        codes = np.round(np.clip(normalized, 0.0, 1.0) * (self.levels - 1))
        if clamp_min_lsb:
            codes = np.maximum(codes, clamp_min_lsb)
        return codes.astype(np.int64)

    def readout_energy(self, converted_pixels: int, skipped_pixels: int = 0) -> float:
        """Energy of one readout pass."""
        if converted_pixels < 0 or skipped_pixels < 0:
            raise ValueError("pixel counts must be non-negative")
        return (
            converted_pixels * self.conversion_energy_j
            + skipped_pixels * self.skip_energy_j
        )
