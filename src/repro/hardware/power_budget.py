"""VR-headset power-budget model (the Sec. II-C system context).

The paper motivates BlissCam with system numbers: a standalone VR device
has a 3-6 W total budget; always-on commercial eye trackers draw over
2 W — half of it; recent 120 FPS sensors alone take 10-60 % of the
budget.  This module turns the per-frame energy model into sustained
power and answers the designer's question: *what fraction of the headset
budget does each eye-tracking variant consume, and how much battery life
does BlissCam buy back?*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.energy import SystemEnergyModel, WorkloadProfile

__all__ = ["HeadsetBudget", "PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    """Sustained eye-tracking power for one variant."""

    variant: str
    fps: float
    power_w: float
    budget_fraction: float
    battery_hours: float


@dataclass(frozen=True)
class HeadsetBudget:
    """A standalone VR headset's electrical envelope.

    Defaults follow the paper's quoted range: ~5 W total draw (mid of the
    3-6 W range) and a Quest-2-class ~14 Wh battery.
    """

    total_power_w: float = 5.0
    battery_wh: float = 14.0
    #: Both eyes are tracked; the paper's pipeline is per-eye.
    num_eyes: int = 2

    def __post_init__(self):
        if self.total_power_w <= 0 or self.battery_wh <= 0:
            raise ValueError("budget parameters must be positive")
        if self.num_eyes < 1:
            raise ValueError("need at least one eye")

    def tracking_power(
        self,
        variant: str,
        fps: float,
        model: SystemEnergyModel | None = None,
        profile: WorkloadProfile | None = None,
    ) -> float:
        """Sustained eye-tracking power (both eyes), watts."""
        model = model or SystemEnergyModel()
        profile = profile or WorkloadProfile()
        per_frame = model.frame_energy(variant, profile, fps).total
        return self.num_eyes * per_frame * fps

    def report(
        self,
        variant: str,
        fps: float,
        model: SystemEnergyModel | None = None,
        profile: WorkloadProfile | None = None,
    ) -> PowerReport:
        """Power, budget share, and battery life with this variant."""
        power = self.tracking_power(variant, fps, model, profile)
        if power >= self.total_power_w:
            raise ValueError(
                f"{variant} at {fps} FPS needs {power:.2f} W, exceeding the "
                f"{self.total_power_w} W headset budget"
            )
        return PowerReport(
            variant=variant,
            fps=fps,
            power_w=power,
            budget_fraction=power / self.total_power_w,
            battery_hours=self.battery_wh / self.total_power_w,
        )

    def battery_gain_hours(
        self,
        baseline: str,
        variant: str,
        fps: float,
        model: SystemEnergyModel | None = None,
        profile: WorkloadProfile | None = None,
    ) -> float:
        """Extra runtime from switching ``baseline`` -> ``variant``.

        The rest of the headset keeps drawing its share; only the
        eye-tracking power changes.
        """
        base_power = self.tracking_power(baseline, fps, model, profile)
        new_power = self.tracking_power(variant, fps, model, profile)
        rest = self.total_power_w - base_power
        if rest <= 0:
            raise ValueError("baseline tracking power exceeds the budget")
        hours_before = self.battery_wh / self.total_power_w
        hours_after = self.battery_wh / (rest + new_power)
        return hours_after - hours_before
