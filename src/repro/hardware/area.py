"""Area estimation (Sec. VI-D).

The DPS is mostly analog, so the paper estimates area by analogy with
published designs of similar bottom-layer complexity (Meta's 4.6 um pixel
in 65 nm; Samsung's 4.95 um in 28 nm) and settles on a 5 um pixel pitch.
At 640x400 that gives 6.4 mm^2 of pixel array, with the in-sensor NPU at
0.4 mm^2 (~5.8 % overhead) and the output buffer + RLE at 0.1 mm^2; the
hardware augmentation per pixel is ~12 SRAM-cell equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.sensor.pixel import PixelCircuit

__all__ = ["AreaModel", "AreaReport", "PUBLISHED_PIXELS"]

#: Published stacked-DPS pixel pitches used to anchor the estimate:
#: name -> (pitch um, process nm, bottom-layer inventory descriptor).
PUBLISHED_PIXELS = {
    "Meta stacked DPS [65]": (4.6, 65, "2 caps, 1 comparator, 28 T, 10 SRAM"),
    "Samsung DPS [111]": (4.95, 28, "1 comparator, 1 amplifier, 22 SRAM"),
}

#: Area of one 6T SRAM cell in the 22 nm logic node (um^2).
_SRAM_CELL_22NM_UM2 = 0.10
#: BlissCam's per-pixel augmentation, in SRAM-cell equivalents (Sec. VI-D).
_AUGMENTATION_SRAM_EQUIV = 12


@dataclass(frozen=True)
class AreaReport:
    """Component areas in mm^2."""

    pixel_array_mm2: float
    in_sensor_npu_mm2: float
    output_buffer_mm2: float
    augmentation_per_pixel_um2: float

    @property
    def total_mm2(self) -> float:
        return self.pixel_array_mm2 + self.in_sensor_npu_mm2 + self.output_buffer_mm2

    @property
    def npu_overhead_fraction(self) -> float:
        """In-sensor NPU area as a fraction of the rest (paper: ~5.8 %)."""
        base = self.pixel_array_mm2 + self.output_buffer_mm2
        return self.in_sensor_npu_mm2 / base


@dataclass(frozen=True)
class AreaModel:
    """Pixel-pitch-based area estimation."""

    pixel_pitch_um: float = 5.0
    #: In-sensor NPU: 8x8 MAC array + 512 KB SRAM at 22 nm (paper: 0.4 mm^2).
    npu_mm2: float = 0.4
    #: Output buffer (shift register) + run-length encoder (paper: 0.1 mm^2).
    output_buffer_mm2: float = 0.1

    def estimate(
        self, height: int, width: int, pixel: PixelCircuit | None = None
    ) -> AreaReport:
        """Area for a ``height x width`` sensor."""
        if height < 1 or width < 1:
            raise ValueError("resolution must be positive")
        array_mm2 = height * width * (self.pixel_pitch_um * 1e-3) ** 2
        return AreaReport(
            pixel_array_mm2=array_mm2,
            in_sensor_npu_mm2=self.npu_mm2,
            output_buffer_mm2=self.output_buffer_mm2,
            augmentation_per_pixel_um2=_AUGMENTATION_SRAM_EQUIV
            * _SRAM_CELL_22NM_UM2,
        )

    def host_rle_decoder_fraction(self, host_area_mm2: float = 50.0) -> float:
        """The host-side RLE decoder's share of SoC area (paper: < 0.1 %)."""
        decoder_mm2 = 0.02
        return decoder_mm2 / host_area_mm2
