"""Hardware models: the sensor datapath, NPUs, MIPI, DRAM, process
scaling, and the composed system energy/latency/area models."""

from repro.hardware.area import AreaModel, AreaReport
from repro.hardware.dram import LPDDR3Model
from repro.hardware.energy import (
    VARIANTS,
    EnergyBreakdown,
    ProcessNodes,
    SystemEnergyModel,
    WorkloadProfile,
)
from repro.hardware.mipi import (
    LATENCY_REQUIREMENT_S,
    STANDARD_RESOLUTIONS,
    MipiLink,
)
from repro.hardware.npu import SystolicNPU, host_npu, in_sensor_npu
from repro.hardware.power_budget import HeadsetBudget, PowerReport
from repro.hardware.timing import LatencyBreakdown, TimingModel
from repro.hardware import scaling

__all__ = [
    "AreaModel",
    "AreaReport",
    "LPDDR3Model",
    "VARIANTS",
    "EnergyBreakdown",
    "ProcessNodes",
    "SystemEnergyModel",
    "WorkloadProfile",
    "MipiLink",
    "STANDARD_RESOLUTIONS",
    "LATENCY_REQUIREMENT_S",
    "SystolicNPU",
    "HeadsetBudget",
    "PowerReport",
    "host_npu",
    "in_sensor_npu",
    "LatencyBreakdown",
    "TimingModel",
    "scaling",
]
