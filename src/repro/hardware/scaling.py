"""Process-node scaling of energy, delay, and leakage (DeepScaleTool substitute).

The paper synthesizes at TSMC 16 nm FinFET and scales results to other
nodes with DeepScaleTool (Sarangi & Baas 2021), which fits published
foundry data from 130 nm to 7 nm.  This module provides equivalent
relative scaling factors — only *ratios between nodes* matter for the
experiments (Fig. 13's node annotations, Fig. 17's sweep), so a table of
factors normalized to 16 nm, interpolated geometrically between published
nodes, preserves the behaviour.

Factors follow the classic trajectory: dynamic energy/op shrinks roughly
with the square of feature size in the planar era and more slowly post-22
nm; gate delay improves steadily; leakage power per bit worsens relative
to dynamic as nodes shrink (hence normalized leakage falls more slowly
than dynamic energy).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KNOWN_NODES",
    "energy_factor",
    "delay_factor",
    "leakage_factor",
    "scale_energy",
    "scale_delay",
    "scale_leakage",
]

#: Relative factors normalized to the 16 nm synthesis node:
#: node_nm -> (dynamic energy per op, gate delay, leakage power per cell).
_FACTORS: dict[int, tuple[float, float, float]] = {
    130: (19.0, 5.2, 7.0),
    90: (11.0, 3.8, 5.2),
    65: (6.8, 2.9, 4.0),
    40: (3.5, 2.1, 2.8),
    28: (2.1, 1.55, 2.0),
    22: (1.55, 1.30, 1.65),
    16: (1.00, 1.00, 1.00),
    7: (0.44, 0.72, 0.62),
}

KNOWN_NODES: tuple[int, ...] = tuple(sorted(_FACTORS))


def _interp(node_nm: float, column: int) -> float:
    """Geometric interpolation of a factor column in log-node space."""
    if node_nm <= 0:
        raise ValueError(f"node must be positive: {node_nm}")
    nodes = np.array(KNOWN_NODES, dtype=np.float64)
    values = np.array([_FACTORS[int(n)][column] for n in nodes])
    if node_nm <= nodes[0]:
        lo, hi = 0, 1
    elif node_nm >= nodes[-1]:
        lo, hi = len(nodes) - 2, len(nodes) - 1
    else:
        hi = int(np.searchsorted(nodes, node_nm))
        lo = hi - 1
        if nodes[hi] == node_nm:
            return float(values[hi])
    log_frac = (np.log(node_nm) - np.log(nodes[lo])) / (
        np.log(nodes[hi]) - np.log(nodes[lo])
    )
    return float(np.exp(
        np.log(values[lo]) + log_frac * (np.log(values[hi]) - np.log(values[lo]))
    ))


def energy_factor(node_nm: float) -> float:
    """Dynamic energy per operation relative to 16 nm."""
    return _interp(node_nm, 0)


def delay_factor(node_nm: float) -> float:
    """Gate delay relative to 16 nm."""
    return _interp(node_nm, 1)


def leakage_factor(node_nm: float) -> float:
    """Leakage power per cell relative to 16 nm."""
    return _interp(node_nm, 2)


def scale_energy(value_at_16nm: float, node_nm: float) -> float:
    """Scale an energy synthesized at 16 nm to another node."""
    return value_at_16nm * energy_factor(node_nm)


def scale_delay(value_at_16nm: float, node_nm: float) -> float:
    """Scale a delay synthesized at 16 nm to another node."""
    return value_at_16nm * delay_factor(node_nm)


def scale_leakage(value_at_16nm: float, node_nm: float) -> float:
    """Scale a leakage power synthesized at 16 nm to another node."""
    return value_at_16nm * leakage_factor(node_nm)
