"""The persistent experiment runtime behind ``Session.run(spec)``.

A :class:`Session` owns the expensive, reusable state that the ad-hoc
entry points used to rebuild per call:

* **persistent executor backends** (one live backend per
  ``execution.backend`` kind — see :mod:`repro.engine.executors`),
  created on first sharded run and reused by every subsequent run — with
  shard work stealing for unequal sequence lengths — instead of the
  historical fork-a-pool-per-``run()`` in ``engine/runner.py``;
* **memoized trained pipelines** keyed by the spec's training-relevant
  section hash, so two specs that differ only in execution mode share
  one joint training (and the sensor templates cached inside it);
* **memoized per-strategy training** for Fig. 15 sweeps, including the
  post-training RNG state so a cache hit replays evaluation
  bitwise-identically;
* optionally, a **persistent artifact store**
  (:class:`~repro.store.ArtifactStore`): ``Session(store=...)`` writes
  every persisted memo entry (and completed ``RunResult``\\ s) to disk
  and hydrates misses from it, so a killed sweep restarts, replays the
  completed strategies bitwise from disk, and only computes what is
  actually missing.  ``resume=True`` additionally reuses whole stored
  ``RunResult``\\ s keyed by the spec hash.

``Session.run`` validates the spec, dispatches to the registered
workload, and stamps provenance (spec hash, seed, workers, backend, git
describe, the ``cache_hits`` the run skipped work for, the full spec)
onto the returned :class:`~repro.api.result.RunResult`.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Callable

from dataclasses import replace

from repro.api.result import RunResult, git_describe
from repro.api.spec import ExperimentSpec, SpecError
from repro.core import BlissCamPipeline, ci, paper
from repro.engine import TransportChannel
from repro.engine.executors import make_executor
from repro.obs.tracer import TRACE_FORMAT_VERSION, Tracer, install_tracer
from repro.store import ArtifactStore, StoreError, canonical_key
from repro.synth import GazeDynamicsConfig

__all__ = ["Session", "system_config", "LIVELY_DYNAMICS"]

#: The ``dataset.dynamics == "lively"`` preset: short fixations +
#: pursuits + large saccades, so short sequences still contain motion
#: (and adaptive strategies have events to gate on).  The benchmark
#: harness's ``BENCH_DYNAMICS`` is this same object.
LIVELY_DYNAMICS = GazeDynamicsConfig(
    fixation_mean_s=0.03,
    pursuit_prob=0.3,
    saccade_amplitude=(5.0, 20.0),
)


def system_config(spec: ExperimentSpec):
    """The :class:`~repro.core.config.SystemConfig` a spec describes.

    ``None`` dataset fields keep the preset's value — ``preset:
    "paper"`` alone is the faithful Sec. V geometry (32 x 60 at
    640x400), with any explicitly-set field overriding it.
    """
    d = spec.dataset
    base = ci(seed=d.seed) if d.preset == "ci" else paper(seed=d.seed)
    dataset = replace(base.dataset, fps=d.fps)
    if d.num_sequences is not None:
        dataset = replace(dataset, num_sequences=d.num_sequences)
    if d.frames_per_sequence is not None:
        dataset = replace(dataset, frames_per_sequence=d.frames_per_sequence)
    if d.eye_scale is not None:
        dataset = replace(dataset, eye_scale=d.eye_scale)
    if d.dynamics == "lively":
        dataset = replace(dataset, dynamics=LIVELY_DYNAMICS)
    if d.blink_rate_hz is not None:
        dataset = replace(
            dataset,
            dynamics=replace(dataset.dynamics, blink_rate_hz=d.blink_rate_hz),
        )
    noise_overrides = {
        name: value
        for name, value in (
            ("electrons_per_second_full_scale",
             d.noise.electrons_per_second_full_scale),
            ("read_noise_electrons", d.noise.read_noise_electrons),
            ("bit_depth", d.noise.bit_depth),
        )
        if value is not None
    }
    if noise_overrides:
        dataset = replace(
            dataset, noise=replace(dataset.noise, **noise_overrides)
        )
    config = replace(
        base,
        dataset=dataset,
        compression=spec.sensor.compression,
        roi_margin_px=spec.sensor.roi_margin_px,
    )
    # Like every other training field, ``None`` keeps the preset's value
    # — only explicitly-set schedule knobs override the config.
    joint_overrides = {
        name: value
        for name, value in (
            ("epochs", spec.training.epochs),
            ("batch_size", spec.training.batch_size),
            ("grad_accum", spec.training.grad_accum),
        )
        if value is not None
    }
    if joint_overrides:
        config = replace(
            config, joint=replace(config.joint, **joint_overrides)
        )
    return config


class _CountingSink:
    """A write-only sink that measures a pickle without keeping it."""

    def __init__(self):
        self.nbytes = 0

    def write(self, data) -> int:
        # Protocol-5 pickles hand large arrays over as PickleBuffer
        # objects (no len()); the buffer protocol sizes everything.
        n = memoryview(data).nbytes
        self.nbytes += n
        return n


def _pickled_nbytes(value: Any) -> int:
    """Serialized size of ``value`` without materializing the blob.

    Best-effort observability: an unpicklable memo value accounts as 0
    rather than failing the caller (the memo itself never needed
    pickling to work in-process).
    """
    sink = _CountingSink()
    try:
        pickle.Pickler(sink, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    except Exception:
        return 0
    return sink.nbytes


class Session:
    """A reusable runtime: ``run()`` as many specs as you like, cheaply.

    Usable as a context manager; :meth:`close` shuts the executor
    backends down.  All in-memory caches are per-session — two sessions
    share nothing — but an attached :class:`~repro.store.ArtifactStore`
    is durable state *across* sessions: that is what makes a killed
    sweep resumable.
    """

    def __init__(
        self,
        store: ArtifactStore | str | Path | None = None,
        resume: bool = False,
        trace: bool | str | Path | Tracer | None = None,
    ):
        """``trace`` is the session-level tracing default:

        * ``None`` (default) — trace only runs whose spec enables
          ``execution.trace``;
        * ``True`` — trace every run, JSONL sink at the spec's
          ``execution.trace.sink`` (or ``trace-<spec_hash>.jsonl``);
        * a path — trace every run into that file;
        * a :class:`~repro.obs.Tracer` — record into the caller's tracer
          across runs; the caller owns the export (no sink is written).
        """
        #: One live backend per ``execution.backend`` kind, grow-only.
        self._executors: dict[str, Any] = {}
        self._transport = None
        self._closed = False
        self._memo: dict[Any, Any] = {}
        #: Serialized-size accounting per memo entry (``stats()``).
        self._memo_bytes: dict[Any, int] = {}
        #: Work skipped by the *current* ``run()`` (reset per run,
        #: stamped into ``provenance.cache_hits``).
        self._cache_hits: list[dict] = []
        self.store = (
            store
            if store is None or isinstance(store, ArtifactStore)
            else ArtifactStore(store)
        )
        #: Reuse whole stored ``RunResult``\ s keyed by spec hash.
        self.resume = bool(resume)
        #: Session-level tracing default (see the constructor docstring).
        self._trace = trace
        #: Cross-run trace accounting (``stats()["trace"]``).
        self._trace_totals = {
            "spans": 0,
            "spans_dropped": 0,
            "sink_bytes": 0,
        }
        #: Observability counters: how often the session saved work.
        self._counters = {
            "runs": 0,
            "train_cache_hits": 0,
            "train_cache_misses": 0,
            "pools_created": 0,
            "store_hydrations": 0,
        }

    # -- persistent executor backends ----------------------------------------
    def executor(self, workers: int, backend: str = "process_pool"):
        """The session's live backend of the given kind, grown to at
        least ``workers``; ``None`` for in-process runs (``workers < 2``
        or ``backend == "in_process"`` — the serial reference path).

        Grow-only per backend: asking for fewer workers than the current
        backend has reuses the bigger one (idle workers are cheap,
        re-forking is the cost this session exists to amortize).
        Growing drains the old backend first (``shutdown(wait=True)``)
        so in-flight shard jobs complete before their pool goes away."""
        self._check_open()
        if workers < 2 or backend == "in_process":
            return None
        current = self._executors.get(backend)
        if current is None or workers > current.max_workers:
            if current is not None:
                current.shutdown(wait=True)
            current = make_executor(backend, workers)
            self._executors[backend] = current
            self._counters["pools_created"] += 1
        return current

    def transport(self) -> TransportChannel:
        """The session's shared-memory transport channel, created lazily.

        One channel per session: published payloads (runner graphs,
        datasets, model weights) are deduplicated by content across
        *every* run the session executes, and every segment the channel
        created is unlinked by :meth:`close`.  Falls back to plain
        pickle transparently when shared memory is unavailable."""
        self._check_open()
        if self._transport is None:
            self._transport = TransportChannel()
        return self._transport

    @property
    def pool_workers(self) -> int:
        """Largest live backend size (0 = no backend yet).  May exceed
        what the last run asked for — backends are grow-only — which
        matters when interpreting timing comparisons."""
        return max(
            (ex.max_workers for ex in self._executors.values()), default=0
        )

    # -- observability ---------------------------------------------------------
    def stats(self) -> dict:
        """Counters plus memo occupancy (and store stats when attached).

        ``memo_entries``/``memo_bytes`` account the in-memory cache —
        the long-sweep memory-growth signal the memo itself (unbounded
        by design: evicting a trained pipeline mid-sweep would silently
        retrain) cannot give you.  ``memo_bytes`` is serialized size,
        measured without materializing the pickles.
        """
        out = dict(self._counters)
        out["memo_entries"] = len(self._memo)
        out["memo_bytes"] = sum(sorted(self._memo_bytes.values()))
        out["trace"] = dict(self._trace_totals)
        if self.store is not None:
            out["store"] = self.store.stats()
        return out

    def _record_hit(self, key: Any, source: str) -> None:
        """Append a ``provenance.cache_hits`` entry for a skipped
        training (``source``: ``"memory"`` or ``"store"``)."""
        try:
            parts = canonical_key(key)
        except StoreError:
            # A non-canonical (object-bearing) key can still hit the
            # in-memory memo; it just has no serializable provenance.
            return
        self._cache_hits.append(
            {
                "kind": str(parts[0]) if parts else "unknown",
                "key": parts,
                "source": source,
            }
        )

    # -- memoized training ---------------------------------------------------
    def memo(
        self,
        key: Any,
        factory: Callable[[], Any],
        *,
        training: bool = True,
        persist: bool | None = None,
    ) -> Any:
        """Session-lifetime memoization of expensive work.

        ``training=False`` keeps the access out of the
        ``train_cache_hits``/``train_cache_misses`` counters — those
        count *trainings saved*, not every cached object (datasets,
        templates).

        ``persist`` controls the attached store (defaults to
        ``training``): persisted misses are written through to disk and
        persisted lookups hydrate from disk before computing — the
        resume path.  Datasets and other cheap-to-rebuild objects pass
        ``training=False`` and so skip the store by default."""
        if persist is None:
            persist = training
        if key in self._memo:
            if training:
                self._counters["train_cache_hits"] += 1
                self._record_hit(key, "memory")
            return self._memo[key]
        if persist and self.store is not None and self.store.contains(key):
            try:
                value = self.store.get(key)
            except KeyError:
                # Refused entry (stale format / torn payload): fall
                # through and recompute.
                pass
            else:
                if training:
                    self._counters["train_cache_hits"] += 1
                    self._record_hit(key, "store")
                self._counters["store_hydrations"] += 1
                self._memo[key] = value
                self._memo_bytes[key] = _pickled_nbytes(value)
                return value
        if training:
            self._counters["train_cache_misses"] += 1
        value = factory()
        self._memo[key] = value
        self._memo_bytes[key] = _pickled_nbytes(value)
        if persist and self.store is not None:
            self.store.put(key, value)
        return value

    def cached(self, key: Any) -> bool:
        """Whether ``key`` is already memoized — in memory or, with a
        store attached, on disk (no counters touched).

        Lets workloads decide *where* to compute a miss — e.g. the
        strategy sweep fans uncached trainings out across the pool while
        cache hits (including store hits: the resume path) replay
        in-process."""
        if key in self._memo:
            return True
        return self.store is not None and self.store.contains(key)

    def pipeline(self, spec: ExperimentSpec) -> BlissCamPipeline:
        """A *trained* pipeline for the spec, memoized by its
        training-relevant inputs: the dataset and training sections plus
        the sensor fields baked into ``SystemConfig`` (compression, ROI
        margin).  The training section hash now covers the training
        schedule too (``batch_size``, ``grad_accum``), so overriding
        either retrains.  Eval-time knobs (``sensor_seed``,
        ``reuse_window``, the whole execution section — including
        ``workers``, which is bitwise-neutral for training) deliberately
        stay out of the key — specs differing only in those share one
        joint training and the calibrated sensor templates cached inside
        the pipeline."""
        key = (
            "pipeline",
            spec.section_hash("dataset", "training"),
            spec.sensor.compression,
            spec.sensor.roi_margin_px,
        )

        def _train() -> BlissCamPipeline:
            config = system_config(spec)
            pipeline = BlissCamPipeline(config)
            indices = spec.training.train_indices
            workers = spec.execution.workers
            # Sharded training needs the data-parallel schedule; the
            # stepped schedule always trains in-process (workers only
            # accelerate evaluation there).  Either way the result is
            # independent of the worker count *and* of the backend.
            executor = self.executor(workers, spec.execution.backend)
            if config.joint.grad_accum and executor is not None:
                shard_kwargs = {
                    "workers": workers,
                    "executor": executor,
                    "transport": self.transport(),
                }
            else:
                shard_kwargs = {}
            pipeline.train(
                list(indices) if indices is not None else None,
                **shard_kwargs,
            )
            return pipeline

        return self.memo(key, _train)

    # -- the front door ------------------------------------------------------
    def run(self, spec: ExperimentSpec | dict) -> RunResult:
        """Validate ``spec``, execute its workload, stamp provenance.

        With a store attached, every completed ``RunResult`` is
        persisted under ``("run_result", spec_hash)``; with
        ``resume=True``, a stored result for an identical spec is
        returned directly (its ``cache_hits`` restamped to say so)
        instead of re-running the workload.

        Tracing (``execution.trace`` or the session's ``trace=``)
        installs a :class:`~repro.obs.Tracer` around the whole run —
        including the resume fast path — drains file-queue worker span
        spools afterwards, writes the JSONL sink and stamps a ``trace``
        block into ``provenance``."""
        self._check_open()
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        elif isinstance(spec, ExperimentSpec):
            spec.validate()
        else:
            raise SpecError(
                "<root>", f"expected ExperimentSpec or dict, got {type(spec)!r}"
            )
        trace_cfg = spec.execution.trace
        if not (trace_cfg.enabled or self._trace):
            return self._run_impl(spec)
        if isinstance(self._trace, Tracer):
            tracer, sink = self._trace, None
        else:
            tracer = Tracer(detail=trace_cfg.detail)
            if isinstance(self._trace, (str, Path)):
                sink = Path(self._trace)
            elif trace_cfg.sink:
                sink = Path(trace_cfg.sink)
            else:
                sink = Path(f"trace-{spec.spec_hash()}.jsonl")
        # Deltas, not totals: an injected cross-run tracer accumulates
        # spans across runs and must not be re-counted per run.
        spans_before = len(tracer.spans)
        dropped_before = tracer.dropped
        with install_tracer(tracer):
            with tracer.span(
                "session.run",
                workload=spec.workload,
                spec_hash=spec.spec_hash(),
            ):
                result = self._run_impl(spec)
            # Merge spooled worker captures (file-queue jobs) in sorted
            # backend order, then account the run's cache economy.
            for name in sorted(self._executors):
                drain = getattr(self._executors[name], "drain_spans", None)
                if drain is not None:
                    drain(tracer)
            if self._cache_hits:
                tracer.count("session.cache_hits", len(self._cache_hits))
        sink_bytes = tracer.write_jsonl(sink) if sink is not None else 0
        trace_info = {
            "format": TRACE_FORMAT_VERSION,
            "detail": tracer.detail,
            "spans": len(tracer.spans),
            "spans_dropped": tracer.dropped,
        }
        if sink is not None:
            trace_info["path"] = str(sink)
            trace_info["sink_bytes"] = sink_bytes
        result.provenance = {**result.provenance, "trace": trace_info}
        self._trace_totals["spans"] += len(tracer.spans) - spans_before
        self._trace_totals["spans_dropped"] += tracer.dropped - dropped_before
        self._trace_totals["sink_bytes"] += sink_bytes
        return result

    def _run_impl(self, spec: ExperimentSpec) -> RunResult:
        from repro.api.registry import WORKLOADS

        self._cache_hits = []
        run_key = ("run_result", spec.spec_hash())
        if (
            self.resume
            and self.store is not None
            and self.store.contains(run_key)
        ):
            try:
                result = self.store.get(run_key)
            except KeyError:
                pass  # refused entry: fall through and re-run
            else:
                self._record_hit(run_key, "store")
                result.provenance = {
                    **result.provenance,
                    "cache_hits": list(self._cache_hits),
                }
                self._counters["runs"] += 1
                return result
        workload = WORKLOADS.get(spec.workload)
        result = workload(self, spec)
        result.provenance = {
            "spec_hash": spec.spec_hash(),
            "seed": spec.dataset.seed,
            "workers": spec.execution.workers,
            "backend": spec.execution.backend,
            "git": git_describe(),
            "cache_hits": list(self._cache_hits),
            "spec": spec.to_dict(),
            **result.provenance,
        }
        self._counters["runs"] += 1
        if self.store is not None:
            self.store.put(run_key, result)
        return result

    # -- lifecycle -----------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "Session is closed; create a new Session instead of reusing "
                "a closed one (its pool and caches are gone)"
            )

    def close(self) -> None:
        """Shut every executor backend down and retire the session.
        Idempotent; any later ``run()``/``executor()``/``with`` use
        raises cleanly instead of silently re-forking a pool the caller
        thought was released."""
        for backend in self._executors.values():
            backend.shutdown(wait=True)
        self._executors = {}
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        self._closed = True

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
