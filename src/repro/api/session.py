"""The persistent experiment runtime behind ``Session.run(spec)``.

A :class:`Session` owns the expensive, reusable state that the ad-hoc
entry points used to rebuild per call:

* **one persistent worker pool** (:func:`repro.engine.shard_executor`),
  created on first sharded run and reused by every subsequent run — with
  shard work stealing for unequal sequence lengths — instead of the
  historical fork-a-pool-per-``run()`` in ``engine/runner.py``;
* **memoized trained pipelines** keyed by the spec's training-relevant
  section hash, so two specs that differ only in execution mode share
  one joint training (and the sensor templates cached inside it);
* **memoized per-strategy training** for Fig. 15 sweeps, including the
  post-training RNG state so a cache hit replays evaluation
  bitwise-identically.

``Session.run`` validates the spec, dispatches to the registered
workload, and stamps provenance (spec hash, seed, workers, git describe,
the full spec) onto the returned :class:`~repro.api.result.RunResult`.
"""

from __future__ import annotations

from typing import Any, Callable

from dataclasses import replace

from repro.api.result import RunResult, git_describe
from repro.api.spec import ExperimentSpec, SpecError
from repro.core import BlissCamPipeline, ci, paper
from repro.engine import TransportChannel, shard_executor
from repro.synth import GazeDynamicsConfig

__all__ = ["Session", "system_config", "LIVELY_DYNAMICS"]

#: The ``dataset.dynamics == "lively"`` preset: short fixations +
#: pursuits + large saccades, so short sequences still contain motion
#: (and adaptive strategies have events to gate on).  The benchmark
#: harness's ``BENCH_DYNAMICS`` is this same object.
LIVELY_DYNAMICS = GazeDynamicsConfig(
    fixation_mean_s=0.03,
    pursuit_prob=0.3,
    saccade_amplitude=(5.0, 20.0),
)


def system_config(spec: ExperimentSpec):
    """The :class:`~repro.core.config.SystemConfig` a spec describes.

    ``None`` dataset fields keep the preset's value — ``preset:
    "paper"`` alone is the faithful Sec. V geometry (32 x 60 at
    640x400), with any explicitly-set field overriding it.
    """
    d = spec.dataset
    base = ci(seed=d.seed) if d.preset == "ci" else paper(seed=d.seed)
    dataset = replace(base.dataset, fps=d.fps)
    if d.num_sequences is not None:
        dataset = replace(dataset, num_sequences=d.num_sequences)
    if d.frames_per_sequence is not None:
        dataset = replace(dataset, frames_per_sequence=d.frames_per_sequence)
    if d.eye_scale is not None:
        dataset = replace(dataset, eye_scale=d.eye_scale)
    if d.dynamics == "lively":
        dataset = replace(dataset, dynamics=LIVELY_DYNAMICS)
    if d.blink_rate_hz is not None:
        dataset = replace(
            dataset,
            dynamics=replace(dataset.dynamics, blink_rate_hz=d.blink_rate_hz),
        )
    noise_overrides = {
        name: value
        for name, value in (
            ("electrons_per_second_full_scale",
             d.noise.electrons_per_second_full_scale),
            ("read_noise_electrons", d.noise.read_noise_electrons),
            ("bit_depth", d.noise.bit_depth),
        )
        if value is not None
    }
    if noise_overrides:
        dataset = replace(
            dataset, noise=replace(dataset.noise, **noise_overrides)
        )
    config = replace(
        base,
        dataset=dataset,
        compression=spec.sensor.compression,
        roi_margin_px=spec.sensor.roi_margin_px,
    )
    # Like every other training field, ``None`` keeps the preset's value
    # — only explicitly-set schedule knobs override the config.
    joint_overrides = {
        name: value
        for name, value in (
            ("epochs", spec.training.epochs),
            ("batch_size", spec.training.batch_size),
            ("grad_accum", spec.training.grad_accum),
        )
        if value is not None
    }
    if joint_overrides:
        config = replace(
            config, joint=replace(config.joint, **joint_overrides)
        )
    return config


class Session:
    """A reusable runtime: ``run()`` as many specs as you like, cheaply.

    Usable as a context manager; :meth:`close` shuts the worker pool
    down.  All caches are per-session — two sessions share nothing.
    """

    def __init__(self):
        self._executor = None
        self._executor_workers = 0
        self._transport = None
        self._closed = False
        self._memo: dict[Any, Any] = {}
        #: Observability counters: how often the session saved work.
        self.stats = {
            "runs": 0,
            "train_cache_hits": 0,
            "train_cache_misses": 0,
            "pools_created": 0,
        }

    # -- persistent pool -----------------------------------------------------
    def executor(self, workers: int):
        """The session pool, grown to at least ``workers``; ``None`` for
        in-process runs.  Grow-only: asking for fewer workers than the
        current pool has reuses the bigger pool (idle workers are cheap,
        re-forking is the cost this session exists to amortize)."""
        self._check_open()
        if workers < 2:
            return None
        if self._executor is None or workers > self._executor_workers:
            if self._executor is not None:
                self._executor.shutdown()
            self._executor = shard_executor(workers)
            self._executor_workers = workers
            self.stats["pools_created"] += 1
        return self._executor

    def transport(self) -> TransportChannel:
        """The session's shared-memory transport channel, created lazily.

        One channel per session: published payloads (runner graphs,
        datasets, model weights) are deduplicated by content across
        *every* run the session executes, and every segment the channel
        created is unlinked by :meth:`close`.  Falls back to plain
        pickle transparently when shared memory is unavailable."""
        self._check_open()
        if self._transport is None:
            self._transport = TransportChannel()
        return self._transport

    @property
    def pool_workers(self) -> int:
        """Current size of the persistent pool (0 = no pool yet).  May
        exceed what the last run asked for — the pool is grow-only —
        which matters when interpreting timing comparisons."""
        return self._executor_workers

    # -- memoized training ---------------------------------------------------
    def memo(
        self, key: Any, factory: Callable[[], Any], *, training: bool = True
    ) -> Any:
        """Session-lifetime memoization of expensive work.

        ``training=False`` keeps the access out of the
        ``train_cache_hits``/``train_cache_misses`` counters — those
        count *trainings saved*, not every cached object (datasets,
        templates)."""
        if key in self._memo:
            if training:
                self.stats["train_cache_hits"] += 1
        else:
            if training:
                self.stats["train_cache_misses"] += 1
            self._memo[key] = factory()
        return self._memo[key]

    def cached(self, key: Any) -> bool:
        """Whether ``key`` is already memoized (no counters touched).

        Lets workloads decide *where* to compute a miss — e.g. the
        strategy sweep fans uncached trainings out across the pool while
        cache hits replay in-process."""
        return key in self._memo

    def pipeline(self, spec: ExperimentSpec) -> BlissCamPipeline:
        """A *trained* pipeline for the spec, memoized by its
        training-relevant inputs: the dataset and training sections plus
        the sensor fields baked into ``SystemConfig`` (compression, ROI
        margin).  The training section hash now covers the training
        schedule too (``batch_size``, ``grad_accum``), so overriding
        either retrains.  Eval-time knobs (``sensor_seed``,
        ``reuse_window``, the whole execution section — including
        ``workers``, which is bitwise-neutral for training) deliberately
        stay out of the key — specs differing only in those share one
        joint training and the calibrated sensor templates cached inside
        the pipeline."""
        key = (
            "pipeline",
            spec.section_hash("dataset", "training"),
            spec.sensor.compression,
            spec.sensor.roi_margin_px,
        )

        def _train() -> BlissCamPipeline:
            config = system_config(spec)
            pipeline = BlissCamPipeline(config)
            indices = spec.training.train_indices
            workers = spec.execution.workers
            # Sharded training needs the data-parallel schedule; the
            # stepped schedule always trains in-process (workers only
            # accelerate evaluation there).  Either way the result is
            # independent of the worker count.
            if config.joint.grad_accum and workers >= 2:
                shard_kwargs = {
                    "workers": workers,
                    "executor": self.executor(workers),
                    "transport": self.transport(),
                }
            else:
                shard_kwargs = {}
            pipeline.train(
                list(indices) if indices is not None else None,
                **shard_kwargs,
            )
            return pipeline

        return self.memo(key, _train)

    # -- the front door ------------------------------------------------------
    def run(self, spec: ExperimentSpec | dict) -> RunResult:
        """Validate ``spec``, execute its workload, stamp provenance."""
        from repro.api.registry import WORKLOADS

        self._check_open()
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        elif isinstance(spec, ExperimentSpec):
            spec.validate()
        else:
            raise SpecError(
                "<root>", f"expected ExperimentSpec or dict, got {type(spec)!r}"
            )
        workload = WORKLOADS.get(spec.workload)
        result = workload(self, spec)
        result.provenance = {
            "spec_hash": spec.spec_hash(),
            "seed": spec.dataset.seed,
            "workers": spec.execution.workers,
            "git": git_describe(),
            "spec": spec.to_dict(),
            **result.provenance,
        }
        self.stats["runs"] += 1
        return result

    # -- lifecycle -----------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "Session is closed; create a new Session instead of reusing "
                "a closed one (its pool and caches are gone)"
            )

    def close(self) -> None:
        """Shut the worker pool down and retire the session.  Idempotent;
        any later ``run()``/``executor()``/``with`` use raises cleanly
        instead of silently re-forking a pool the caller thought was
        released."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = 0
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        self._closed = True

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
