"""The built-in workload kinds: every reachable experiment, by name.

Each workload is ``(session, spec) -> RunResult`` and is registered
under the spec string it answers to.  Accuracy workloads run the shared
:mod:`repro.engine` stage runtime through the session's memoized
pipelines and persistent pool; hardware workloads query the calibrated
energy/latency/area/power models; the ``serve`` workload drives the
:mod:`repro.serve` streaming runtime over a session-trained tracker.
The offline workloads delegate to the same functions the legacy entry
points use (``pipeline.evaluate``, ``evaluate_strategy``,
``measure_throughput``), so their metrics are bitwise-identical to the
pre-API surfaces — the parity tests pin this.
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import asdict

import numpy as np

from repro.api.registry import STRATEGIES, register_workload
from repro.api.result import RunResult, stage_timing_table
from repro.api.session import Session, system_config
from repro.api.spec import ExperimentSpec
from repro.core import Table
from repro.core.throughput import measure_throughput, throughput_tables
from repro.core.variants import evaluate_strategy, train_for_strategy
from repro.hardware import (
    AreaModel,
    ProcessNodes,
    SystemEnergyModel,
    TimingModel,
    VARIANTS,
    WorkloadProfile,
)
from repro.hardware.power_budget import HeadsetBudget
from repro.obs.names import QUEUE_DEPTH_FIELDS, serve_queue_depth_gauge
from repro.obs.tracer import current_tracer

__all__ = ["strategy_rng"]


def _split_indices(spec: ExperimentSpec, dataset):
    """Training/evaluation sequence indices: explicit or ``split()``."""
    train_idx, eval_idx = dataset.split()
    if spec.training.train_indices is not None:
        train_idx = list(spec.training.train_indices)
    if spec.execution.eval_indices is not None:
        eval_idx = list(spec.execution.eval_indices)
    return train_idx, eval_idx


def _sharding(session: Session, spec: ExperimentSpec):
    """(workers, executor, transport) for the engine: the session's
    executor backend (``execution.backend``) and its shared-memory
    transport channel when sharded.  ``backend: in_process`` (or
    ``workers < 2``) returns the all-``None`` triple — the serial
    reference path every backend is pinned against."""
    workers = spec.execution.workers
    executor = session.executor(workers, spec.execution.backend)
    if executor is None:
        return None, None, None
    return workers, executor, session.transport()


def strategy_rng(base_seed: int, name: str) -> np.random.Generator:
    """The per-strategy RNG stream of the ``strategy_sweep`` workload.

    Keyed by (sweep seed, CRC32 of the strategy name): stable across
    processes and across sweep subsets, so evaluating one strategy draws
    the same stream as evaluating it inside the full zoo.
    """
    return np.random.default_rng([base_seed, zlib.crc32(name.encode())])


# -- accuracy workloads ------------------------------------------------------
@register_workload("evaluate")
def run_evaluate(session: Session, spec: ExperimentSpec) -> RunResult:
    """Train (memoized) + evaluate the end-to-end tracker."""
    pipeline = session.pipeline(spec)
    workers, executor, transport = _sharding(session, spec)
    e = spec.execution
    result = pipeline.evaluate(
        list(e.eval_indices) if e.eval_indices is not None else None,
        reuse_window=spec.sensor.reuse_window,
        sensor_seed=spec.sensor.sensor_seed,
        batched=e.batched,
        batch_size=e.batch_size,
        workers=workers,
        executor=executor,
        transport=transport,
    )
    metrics = {
        "frames": result.horizontal.count,
        "horizontal": asdict(result.horizontal),
        "vertical": asdict(result.vertical),
        "mean_compression": result.stats.mean_compression,
        "mean_roi_fraction": result.stats.mean_roi_fraction,
        "mean_sampled_fraction": result.stats.mean_sampled_fraction,
        "mean_valid_token_fraction": result.stats.mean_valid_token_fraction,
        "mean_roi_iou": result.stats.mean_roi_iou,
        "mean_transmitted_bytes": float(
            np.mean(result.stats.transmitted_bytes)
        ),
        "within_one_degree": result.within_one_degree,
    }
    train_result = pipeline.train_result
    if train_result is not None:
        # The joint-training trajectory (the CI training smoke asserts
        # it): which schedule ran (the *effective* config values — spec
        # nulls keep the preset's) and what the losses did, epoch by
        # epoch.  Memoized pipelines report the trajectory of the run
        # that trained them.
        metrics["training"] = {
            "batch_size": pipeline.config.joint.batch_size,
            "grad_accum": pipeline.config.joint.grad_accum,
            "seg_losses": list(train_result.seg_losses),
            "roi_losses": list(train_result.roi_losses),
            "improved": train_result.improved,
        }
    table = Table(["metric", "value"], title="evaluation results")
    table.add_row("horizontal error (deg)", round(result.horizontal.mean, 2))
    table.add_row("vertical error (deg)", round(result.vertical.mean, 2))
    table.add_row("compression (x)", round(result.stats.mean_compression, 1))
    table.add_row("ROI IoU", round(result.stats.mean_roi_iou, 2))
    timings = RunResult.timings_to_dict(result.stage_timings)
    return RunResult(
        workload="evaluate",
        metrics=metrics,
        stage_timings=timings,
        workload_profile=asdict(result.stats.to_profile()),
        tables=[table, stage_timing_table(timings)],
    )


def _sweep_key(spec: ExperimentSpec, train_idx, name: str) -> tuple:
    """The per-strategy training-cache key.

    Only training-relevant inputs key the cache: which other names are
    in the sweep (and the eval-only use_gt_roi flag) must not force a
    retrain — strategy_rng is name-keyed precisely so subsets and the
    full zoo share streams.
    """
    st = spec.strategy
    return (
        "strategy_training",
        spec.section_hash("dataset"),
        st.compression,
        st.train_epochs,
        st.seed,
        tuple(train_idx),
        name,
    )


def _sweep_strategy_job(
    config,
    name: str,
    compression: float,
    train_epochs: int,
    seed: int,
    train_idx: list[int],
    eval_idx: list[int],
    use_gt_roi: bool,
):
    """Train + evaluate one strategy of a fanned-out sweep (worker side).

    Module-level so the session pool can pickle it.  Per-strategy RNG
    streams (:func:`strategy_rng`) are keyed by ``(seed, name)`` —
    process-independent — and the engine's execution modes are bitwise
    equivalent, so the result is identical to the serial sweep's.
    Returns the trained triple *in its post-training RNG state* (the
    evaluation consumes a deep copy) so the parent can cache it exactly
    as the in-process path does.
    """
    from repro.segmentation import ViTSegmenter
    from repro.synth import SyntheticEyeDataset

    dataset = SyntheticEyeDataset(config.dataset)
    rng = strategy_rng(seed, name)
    strategy = STRATEGIES.get(name)(compression, dataset)
    segmenter = ViTSegmenter(config.vit, rng)
    train_for_strategy(
        segmenter, strategy, dataset, train_idx, train_epochs, rng
    )
    evaluation = evaluate_strategy(
        strategy,
        segmenter,
        dataset,
        eval_idx,
        copy.deepcopy(rng),
        use_gt_roi=use_gt_roi,
    )
    return strategy, segmenter, rng, evaluation


@register_workload("strategy_sweep")
def run_strategy_sweep(session: Session, spec: ExperimentSpec) -> RunResult:
    """Fig. 15: train a segmenter per sampling strategy, measure gaze error.

    With ``execution.workers >= 2`` the sweep fans out *across
    strategies* over the session pool: every uncached strategy trains
    and evaluates in its own worker process (per-strategy RNG streams
    are process-independent), bitwise-identical to the serial sweep —
    the parity tests pin this.  Cache hits always replay in-process.
    """
    from repro.sampling import STRATEGY_NAMES
    from repro.segmentation import ViTSegmenter
    from repro.synth import SyntheticEyeDataset

    st = spec.strategy
    config = system_config(spec)
    names = list(st.names) if st.names else list(STRATEGY_NAMES)

    def _dataset():
        return SyntheticEyeDataset(config.dataset)

    dataset = session.memo(
        ("dataset", spec.section_hash("dataset")), _dataset, training=False
    )
    train_idx, eval_idx = _split_indices(spec, dataset)
    workers, executor, transport = _sharding(session, spec)

    # Fan uncached strategies out across the pool; each worker returns
    # its trained triple plus the evaluation it already ran in-place.
    evaluations: dict[str, object] = {}
    if executor is not None:
        missing = [
            n for n in names if not session.cached(_sweep_key(spec, train_idx, n))
        ]
        futures = {
            n: executor.submit(
                _sweep_strategy_job,
                config,
                n,
                st.compression,
                st.train_epochs,
                st.seed,
                train_idx,
                eval_idx,
                st.use_gt_roi,
            )
            for n in missing
        }
        for n in missing:
            strategy, segmenter, rng, evaluation = futures[n].result()
            session.memo(
                _sweep_key(spec, train_idx, n),
                lambda triple=(strategy, segmenter, rng): triple,
            )
            evaluations[n] = evaluation

    per_strategy = {}
    table = Table(
        ["strategy", "horz err (deg)", "vert err (deg)", "compression"],
        title=f"strategy sweep @ {st.compression:g}x target",
    )
    for name in names:
        evaluation = evaluations.get(name)
        if evaluation is None:
            key = _sweep_key(spec, train_idx, name)

            def _train(name: str = name):
                rng = strategy_rng(st.seed, name)
                strategy = STRATEGIES.get(name)(st.compression, dataset)
                segmenter = ViTSegmenter(config.vit, rng)
                train_for_strategy(
                    segmenter, strategy, dataset, train_idx, st.train_epochs,
                    rng,
                )
                return strategy, segmenter, rng

            strategy, segmenter, rng = session.memo(key, _train)
            evaluation = evaluate_strategy(
                strategy,
                segmenter,
                dataset,
                eval_idx,
                # Deep-copy the post-training RNG state: the cached
                # generator stays pristine, so a cache-hit re-run
                # replays bitwise.
                copy.deepcopy(rng),
                batched=spec.execution.batched,
                batch_size=spec.execution.batch_size,
                workers=workers,
                executor=executor,
                transport=transport,
                use_gt_roi=st.use_gt_roi,
            )
        per_strategy[name] = {
            "horizontal": asdict(evaluation.horizontal),
            "vertical": asdict(evaluation.vertical),
            "mean_compression": evaluation.mean_compression,
            "frames": evaluation.frames,
        }
        table.add_row(
            name,
            round(evaluation.horizontal.mean, 2),
            round(evaluation.vertical.mean, 2),
            round(evaluation.mean_compression, 1),
        )
    metrics = {
        "compression_target": st.compression,
        "strategies": per_strategy,
    }
    return RunResult(
        workload="strategy_sweep", metrics=metrics, tables=[table]
    )


@register_workload("serve")
def run_serve(session: Session, spec: ExperimentSpec) -> RunResult:
    """Streaming multi-client serving: the ``execution.serve`` scenario.

    Trains (memoized) the spec's tracker, then multiplexes
    ``serve.num_clients`` synthetic client eye-streams through it with
    cross-client micro-batching against a virtual clock, under the
    scenario's arrival process and SLO policy.  ``execution.workers >=
    2`` partitions the fleet into independent scheduler replicas over
    the session pool.  Telemetry (latency percentiles, goodput, drop
    rate, queue depths) is virtual-time, hence deterministic for a given
    spec + seed; ``wall_seconds`` measures the real serving loop.
    """
    from repro.serve import ClientSensorFactory, simulate_serving

    pipeline = session.pipeline(spec)
    graph, template = pipeline.tracking_setup(
        reuse_window=spec.sensor.reuse_window,
        sensor_seed=spec.sensor.sensor_seed,
    )
    workers, executor, transport = _sharding(session, spec)
    scenario = spec.execution.serve
    run = simulate_serving(
        graph=graph,
        state_factory=ClientSensorFactory(template, spec.sensor.sensor_seed),
        dataset_cfg=pipeline.config.dataset,
        scenario=scenario,
        workers=workers,
        executor=executor,
        transport=transport,
    )
    telemetry = run.summary
    frames = telemetry["frames"]
    tracer = current_tracer()
    if tracer is not None:
        # The merged queue-depth summary as gauges, named through the
        # same table Telemetry.summary builds its block from — the
        # metrics block and the exported trace cannot drift.  (The
        # per-tick serve.queue_depth series itself is emitted by the
        # scheduler; replica workers run outside the ambient tracer.)
        for field in QUEUE_DEPTH_FIELDS:
            value = telemetry["queue_depth"][field]
            if isinstance(value, (int, float)):
                tracer.gauge(serve_queue_depth_gauge(field), value)
    metrics = {
        "clients": scenario.num_clients,
        "arrival": scenario.arrival,
        "duration_ticks": scenario.duration_ticks,
        "deadline_policy": scenario.deadline_policy,
        "max_batch": scenario.max_batch,
        "replicas": run.workers,
        "telemetry": telemetry,
        # Real serving-loop throughput (non-deterministic; excluded from
        # the determinism guarantee the telemetry block carries).
        "wall_seconds": run.wall_seconds,
        "served_fps_wall": (
            frames["processed"] / run.wall_seconds
            if run.wall_seconds > 0
            else 0.0
        ),
    }
    table = Table(["metric", "value"], title="serving scorecard")
    table.add_row("clients", scenario.num_clients)
    table.add_row("arrival process", scenario.arrival)
    table.add_row("frames arrived", frames["arrived"])
    table.add_row("frames completed", frames["completed"])
    table.add_row("frames dropped", frames["dropped"])
    table.add_row("drop rate", f"{telemetry['drop_rate']:.1%}")
    lat = telemetry["latency_ms"]
    for pct in ("p50", "p95", "p99"):
        value = lat[pct]
        table.add_row(
            f"latency {pct} (ms)",
            round(value, 3) if value is not None else "-",
        )
    table.add_row("goodput (fps)", round(telemetry["goodput_fps"], 1))
    table.add_row("max queue depth", telemetry["queue_depth"]["max"])
    return RunResult(workload="serve", metrics=metrics, tables=[table])


@register_workload("throughput")
def run_throughput(session: Session, spec: ExperimentSpec) -> RunResult:
    """Engine frames/sec: sequential vs batched vs sharded modes."""
    pipeline = session.pipeline(spec)
    workers, executor, transport = _sharding(session, spec)
    _, eval_idx = _split_indices(spec, pipeline.dataset)
    record = measure_throughput(
        pipeline,
        eval_idx,
        repeats=spec.execution.repeats,
        workers=workers,
        executor=executor,
        transport=transport,
    )
    if executor is not None:
        # Session backends are grow-only: a previous run may have left
        # this one larger than the spec's `workers`, in which case the
        # persistent-mode timing had more parallelism than the per-call
        # baseline.  Record the actual backend size so
        # pool_reuse_speedup is interpretable.
        record["pool_workers"] = executor.max_workers
    return RunResult(
        workload="throughput",
        metrics=record,
        tables=throughput_tables(record),
    )


# -- hardware-model workloads ------------------------------------------------
@register_workload("energy")
def run_energy(session: Session, spec: ExperimentSpec) -> RunResult:
    """Fig. 13 operating point: per-frame energy of the four variants."""
    fps = spec.execution.fps
    model = SystemEnergyModel()
    profile = WorkloadProfile()
    table = Table(
        ["variant", "total (uJ/frame)", "saving vs NPU-Full"],
        title=f"energy @ {fps:g} FPS",
    )
    full = model.frame_energy("NPU-Full", profile, fps).total
    metrics = {"fps": fps, "variants": {}}
    for variant in VARIANTS:
        total = model.frame_energy(variant, profile, fps).total
        metrics["variants"][variant] = {
            "joules_per_frame": total,
            "saving_vs_npu_full": full / total,
        }
        table.add_row(variant, round(total * 1e6, 1), f"{full / total:.2f}x")
    return RunResult(
        workload="energy",
        metrics=metrics,
        workload_profile=asdict(profile),
        tables=[table],
    )


@register_workload("latency")
def run_latency(session: Session, spec: ExperimentSpec) -> RunResult:
    """Fig. 14 operating point: tracking latency of the four variants."""
    fps = spec.execution.fps
    timing = TimingModel()
    profile = WorkloadProfile()
    table = Table(
        ["variant", "latency (ms)", "sustains rate"],
        title=f"tracking latency @ {fps:g} FPS",
    )
    metrics = {"fps": fps, "variants": {}}
    for variant in VARIANTS:
        lat = timing.tracking_latency(variant, profile, fps)
        feasible = timing.schedule_feasible(variant, profile, fps)
        metrics["variants"][variant] = {
            "latency_s": lat.total,
            "sustains_rate": feasible,
        }
        table.add_row(variant, round(lat.total * 1e3, 2), str(feasible))
    return RunResult(
        workload="latency",
        metrics=metrics,
        workload_profile=asdict(profile),
        tables=[table],
    )


@register_workload("area")
def run_area(session: Session, spec: ExperimentSpec) -> RunResult:
    """Sec. VI-D: area estimate of the paper's 640x400 sensor."""
    report = AreaModel().estimate(400, 640)
    metrics = {
        "pixel_array_mm2": report.pixel_array_mm2,
        "in_sensor_npu_mm2": report.in_sensor_npu_mm2,
        "output_buffer_mm2": report.output_buffer_mm2,
        "total_mm2": report.total_mm2,
    }
    table = Table(["component", "mm^2"], title="area (640x400, 5 um pitch)")
    table.add_row("pixel array", round(report.pixel_array_mm2, 2))
    table.add_row("in-sensor NPU", report.in_sensor_npu_mm2)
    table.add_row("output buffer + RLE", report.output_buffer_mm2)
    table.add_row("TOTAL", round(report.total_mm2, 2))
    return RunResult(workload="area", metrics=metrics, tables=[table])


@register_workload("power")
def run_power(session: Session, spec: ExperimentSpec) -> RunResult:
    """Headset power budget of the four variants."""
    fps = spec.execution.fps
    budget = HeadsetBudget()
    table = Table(
        ["variant", "power (mW, 2 eyes)", "budget share"],
        title=f"headset budget @ {fps:g} FPS",
    )
    metrics = {"fps": fps, "variants": {}}
    for variant in VARIANTS:
        report = budget.report(variant, fps)
        metrics["variants"][variant] = {
            "power_w": report.power_w,
            "budget_fraction": report.budget_fraction,
        }
        table.add_row(
            variant,
            round(report.power_w * 1e3, 1),
            f"{report.budget_fraction:.1%}",
        )
    return RunResult(workload="power", metrics=metrics, tables=[table])


#: The Fig. 16 operating points.
FPS_SWEEP_DEFAULT = (30.0, 60.0, 120.0, 240.0, 500.0)


@register_workload("fps_sweep")
def run_fps_sweep(session: Session, spec: ExperimentSpec) -> RunResult:
    """Fig. 16: BlissCam's energy saving vs frame rate."""
    model = SystemEnergyModel()
    profile = WorkloadProfile()
    points = spec.execution.fps_sweep_points or FPS_SWEEP_DEFAULT
    table = Table(["FPS", "BlissCam saving"], title="saving vs frame rate")
    savings = {}
    for fps in points:
        saving = model.savings_over("NPU-Full", "BlissCam", profile, fps)
        savings[f"{fps:g}"] = saving
        table.add_row(f"{fps:g}", f"{saving:.2f}x")
    return RunResult(
        workload="fps_sweep",
        metrics={"savings_by_fps": savings},
        tables=[table],
    )


@register_workload("node_sweep")
def run_node_sweep(session: Session, spec: ExperimentSpec) -> RunResult:
    """Fig. 17: BlissCam's energy saving vs process nodes."""
    fps = spec.execution.fps
    base = SystemEnergyModel()
    profile = WorkloadProfile()
    table = Table(
        ["logic node", "7 nm SoC", "22 nm SoC"], title="saving vs process node"
    )
    savings = {}
    for logic in (16, 22, 40, 65):
        row = {}
        for soc in (7, 22):
            model = base.with_nodes(
                ProcessNodes(sensor_logic_nm=logic, host_nm=soc)
            )
            row[f"soc_{soc}nm"] = model.savings_over(
                "NPU-Full", "BlissCam", profile, fps
            )
        savings[f"{logic}nm"] = row
        table.add_row(
            f"{logic} nm",
            f"{row['soc_7nm']:.2f}x",
            f"{row['soc_22nm']:.2f}x",
        )
    return RunResult(
        workload="node_sweep",
        metrics={"fps": fps, "savings_by_node": savings},
        tables=[table],
    )
