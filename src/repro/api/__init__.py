"""``repro.api`` — the declarative front door to every workload.

One spec, one session, one result type::

    from repro.api import ExperimentSpec, Session

    spec = ExperimentSpec.from_file("examples/specs/quickstart.json")
    with Session() as session:
        result = session.run(spec)            # RunResult
        result.write_json("out.json")         # the one serializer
        again = session.run(spec)             # no retraining, same pool

Everything the repo can run — accuracy evaluation, Fig. 15 strategy
sweeps, throughput measurement, the energy/latency/area/power models and
their sweeps — is a *workload kind* named in the spec and resolved
through the :mod:`~repro.api.registry` registries; third parties add
scenarios with ``@register_workload`` (and new strategies/stages with
``@register_strategy`` / ``@register_stage``) without touching core.
The CLI, the benchmarks and the examples are all thin layers over this
package (see ``docs/api.md`` and ``docs/architecture.md``).
"""

from repro.api.registry import (
    Registry,
    RegistryError,
    STAGES,
    STRATEGIES,
    WORKLOADS,
    register_stage,
    register_strategy,
    register_workload,
)
from repro.api.spec import (
    DatasetSection,
    ExecutionSection,
    ExperimentSpec,
    SensorSection,
    SpecError,
    StrategySection,
    TrainingSection,
)
from repro.api.result import RunResult, git_describe, stage_timing_table
from repro.api.session import Session, system_config
import repro.api.builtin  # noqa: F401  (populates the registries)

__all__ = [
    "ExperimentSpec",
    "DatasetSection",
    "SensorSection",
    "StrategySection",
    "TrainingSection",
    "ExecutionSection",
    "SpecError",
    "Session",
    "system_config",
    "RunResult",
    "stage_timing_table",
    "git_describe",
    "Registry",
    "RegistryError",
    "STRATEGIES",
    "STAGES",
    "WORKLOADS",
    "register_strategy",
    "register_stage",
    "register_workload",
]
