"""Built-in registry population: the paper's strategies, stages, workloads.

Importing this module (``repro.api`` does it on package import, and
``ExperimentSpec.validate`` pulls it in for standalone spec use) fills
the three registries with everything the reproduction ships:

* the seven Fig. 15 sampling strategies, as
  ``factory(compression, dataset=None)`` callables (``ROI+Fixed`` fits
  its static mask on the dataset at construction);
* the canonical engine stages under unique slugs (the graphs reuse
  timing labels like ``"segment"`` across different classes, so slugs —
  not ``Stage.name`` — key the registry);
* the ten workload kinds (registered by decorator in
  :mod:`repro.api.workloads`).

Third-party code extends the same registries with the public
``register_*`` decorators — see ``docs/api.md``.
"""

from __future__ import annotations

import numpy as np

import repro.api.workloads  # noqa: F401  (registers the workload kinds)
from repro.api.registry import register_stage, register_strategy
from repro.engine import (
    EventifyPairStage,
    EventifyStage,
    GazeRegressStage,
    ROIPredictStage,
    ROIReuseStage,
    ReadoutStage,
    SampleStage,
    SegmentOrReuseStage,
    SegmentStage,
    StatsCollectorStage,
    StrategySampleStage,
)
from repro.sampling.strategies import (
    FullDownsample,
    FullRandom,
    ROIDownsample,
    ROIFixed,
    ROILearned,
    ROIRandom,
    SkipStrategy,
)


def _simple(cls):
    """Factory for strategies that need nothing beyond the budget."""

    def factory(compression: float, dataset=None):
        return cls(compression)

    factory.__name__ = f"make_{cls.__name__}"
    return factory


register_strategy(FullRandom.name, _simple(FullRandom))
register_strategy(FullDownsample.name, _simple(FullDownsample))
register_strategy(SkipStrategy.name, _simple(SkipStrategy))
register_strategy(ROIDownsample.name, _simple(ROIDownsample))
register_strategy(ROILearned.name, _simple(ROILearned))
register_strategy(ROIRandom.name, _simple(ROIRandom))


@register_strategy(ROIFixed.name)
def _make_roi_fixed(compression: float, dataset=None):
    """``ROI+Fixed`` samples a mask fit to dataset statistics."""
    from repro.synth.eye_model import SEG_CLASSES

    if dataset is None:
        raise ValueError("ROI+Fixed needs a dataset to fit its mask")
    strategy = ROIFixed(compression)
    masks = np.concatenate(
        [
            (seq.segmentations != SEG_CLASSES["background"])
            for seq in dataset
        ]
    )
    strategy.fit(masks)
    return strategy


#: Unique registry slug -> canonical stage class.
_STAGE_SLUGS = {
    "eventify": EventifyStage,
    "roi_predict": ROIPredictStage,
    "roi_reuse": ROIReuseStage,
    "sample": SampleStage,
    "readout": ReadoutStage,
    "segment": SegmentStage,
    "gaze": GazeRegressStage,
    "stats": StatsCollectorStage,
    "eventify_pair": EventifyPairStage,
    "strategy_sample": StrategySampleStage,
    "segment_or_reuse": SegmentOrReuseStage,
}
for slug, stage_cls in _STAGE_SLUGS.items():
    register_stage(slug, stage_cls)
