"""The declarative experiment spec: one JSON-round-trippable description
of *what to run*.

An :class:`ExperimentSpec` names a workload kind (``evaluate``,
``strategy_sweep``, ``throughput``, ``energy``, ...) plus five nested
sections — dataset / sensor / strategy / training / execution — each a
frozen dataclass with CI-scale defaults.  The spec is the unit of
provenance: ``to_dict``/``from_dict``/``from_json`` round-trip exactly,
:meth:`ExperimentSpec.spec_hash` is a stable digest of the canonical
JSON, and every :class:`~repro.api.result.RunResult` embeds the spec it
ran.

Validation is eager and *names the bad field*: unknown keys, wrong
types, out-of-range values, and unregistered workload/strategy strings
all raise :class:`SpecError` with a dotted field path
(``execution.workers``) and, for typos, a did-you-mean suggestion.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import types
import typing
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SpecError",
    "NoiseSection",
    "DatasetSection",
    "SensorSection",
    "StrategySection",
    "TrainingSection",
    "ServeSection",
    "TraceSection",
    "ExecutionSection",
    "ExperimentSpec",
]

#: Dataset size presets; both flow through identical code paths.
DATASET_PRESETS = ("ci", "paper")
#: Sequence count each preset defaults to (mirrors ``repro.core.config``
#: ``ci()``/``paper()``; used to range-check indices at validate time
#: without importing core).
PRESET_NUM_SEQUENCES = {"ci": 4, "paper": 32}
#: Oculomotor-statistics presets.
DYNAMICS_PRESETS = ("default", "lively")
#: Client arrival processes of the ``serve`` workload.
ARRIVAL_PROCESSES = ("uniform", "poisson", "trace")
#: Deadline policies of the ``serve`` workload.
DEADLINE_POLICIES = ("drop", "best_effort")


class SpecError(ValueError):
    """A spec failed validation; ``field`` is the dotted path at fault."""

    def __init__(self, field_path: str, message: str):
        super().__init__(f"{field_path}: {message}")
        self.field = field_path


@dataclass(frozen=True)
class NoiseSection:
    """Overrides of the sensor noise model (:class:`repro.synth.noise.
    NoiseConfig`).  ``None`` keeps the physical defaults; setting a field
    changes the rendered frames, so every field is covered by the dataset
    section hash (a noise override forces a retrain, as it must)."""

    #: Expected photo-electrons at full scale for a 1 s exposure.
    electrons_per_second_full_scale: float | None = None
    #: RMS read noise in electrons.
    read_noise_electrons: float | None = None
    #: ADC bit depth of the stored pixel values.
    bit_depth: int | None = None


@dataclass(frozen=True)
class DatasetSection:
    """The synthetic recording the experiment runs on."""

    #: Size preset: ``ci`` (64x64, seconds-scale) or ``paper`` (640x400).
    preset: str = "ci"
    #: Sequence count / length; ``None`` keeps the preset's geometry
    #: (``ci``: 4 x 10, ``paper``: the Sec. V 32 x 60).
    num_sequences: int | None = None
    frames_per_sequence: int | None = None
    fps: float = 120.0
    seed: int = 0
    #: Eye scale override (camera distance); ``None`` keeps the preset's.
    eye_scale: float | None = None
    #: Oculomotor statistics: ``default`` (calm) or ``lively`` (short
    #: fixations, pursuits, large saccades — keeps short sequences full
    #: of motion, which adaptive strategies like Skip need).
    dynamics: str = "default"
    #: Blink rate override (blinks/second); ``None`` keeps the dynamics
    #: preset's (~0.28 Hz, the human average).
    blink_rate_hz: float | None = None
    #: Sensor noise-model overrides (shot noise scale, read noise, ADC
    #: depth); all-``None`` keeps the physical defaults.
    noise: NoiseSection = field(default_factory=NoiseSection)


@dataclass(frozen=True)
class SensorSection:
    """The functional sensor's operating point."""

    #: Target frame-level compression (total / transmitted pixels).
    compression: float = 20.6
    #: Safety margin (pixels) around the predicted ROI before sampling.
    roi_margin_px: int = 1
    #: Seed of the calibrated chip template and its runtime noise streams.
    sensor_seed: int = 1234
    #: Table-I ROI-reuse window (1 = predict every frame).
    reuse_window: int = 1


@dataclass(frozen=True)
class StrategySection:
    """The Fig. 15 strategy sweep: which strategies, at what budget."""

    #: Strategy registry names; empty sweeps the full built-in zoo.
    names: tuple[str, ...] = ()
    compression: float = 16.0
    #: Per-strategy segmenter training epochs.
    train_epochs: int = 4
    #: Base seed of the per-strategy RNG streams.
    seed: int = 0
    #: Feed strategies the ground-truth ROI box (the Fig. 15 harness).
    use_gt_roi: bool = True


@dataclass(frozen=True)
class TrainingSection:
    """Joint training of the ROI predictor + sparse ViT.

    ``batch_size`` and ``grad_accum`` select the training *schedule*
    (see ``docs/training.md``); both are semantic knobs, covered by the
    training section hash, so overriding them retrains.  The worker
    count stays in the execution section: with ``grad_accum`` on,
    ``execution.workers >= 2`` shards the per-sequence gradient passes
    with bitwise-identical results for any worker count.
    """

    #: Joint-training epochs; ``None`` keeps the dataset preset's.
    epochs: int | None = None
    #: Training sequence indices; ``None`` uses ``dataset.split()``.
    train_indices: tuple[int, ...] | None = None
    #: Frame pairs per training rank *and* per Adam step; ``None`` keeps
    #: the preset's (1).  1 is the paper-faithful per-frame stepping
    #: (bitwise-pinned against the historical loop); > 1 runs each
    #: minibatch as one vectorized rank with one Adam step per minibatch
    #: — a documented semantic change.
    batch_size: int | None = None
    #: The data-parallel schedule (``None`` keeps the preset's, False):
    #: gradients accumulate over every rank of an epoch (reduced in
    #: fixed sequence order) and each epoch takes one Adam step.
    #: Required for sharded training.
    grad_accum: bool | None = None


@dataclass(frozen=True)
class ServeSection:
    """The ``serve`` workload: a multi-client streaming scenario.

    Describes the arrival side (how many client eye-streams, what
    arrival process, for how many frame-time ticks) and the SLO side
    (deadline policy, per-tick host batch capacity, admission queue).
    See ``docs/serving.md``.
    """

    #: Concurrent client eye-streams multiplexed through one tracker.
    num_clients: int = 4
    #: Arrival process: ``uniform`` (one frame per tick), ``poisson``
    #: (exponential inter-arrival gaps), ``trace`` (blink-gated: the
    #: stream pauses while the synthetic eye blinks).
    arrival: str = "uniform"
    #: Virtual-clock ticks (frame periods) to simulate.
    duration_ticks: int = 12
    #: ``drop`` sheds frames that can no longer meet their deadline;
    #: ``best_effort`` processes them anyway and records the miss.
    deadline_policy: str = "drop"
    #: Frames the host serves per tick (micro-batch width bound);
    #: ``None`` serves everything queued.
    max_batch: int | None = None
    #: Admission bound: arrivals beyond this queue depth are dropped;
    #: ``None`` admits everything.
    queue_capacity: int | None = None
    #: Ticks a frame may wait in the queue before its completion would
    #: miss the deadline (deadline = modeled service latency + slack).
    deadline_slack_ticks: int = 1
    #: Base seed of the per-client stream/arrival RNG spawns.
    seed: int = 0


@dataclass(frozen=True)
class TraceSection:
    """Observability: the ``repro.obs`` tracer wired around a run.

    Pure measurement — tracing never changes results, so this section is
    **hash-exempt**: :meth:`ExperimentSpec.section_hash` drops it before
    digesting, and a traced run shares its spec hash (and therefore its
    store/resume identity) with the identical untraced run.  See
    ``docs/observability.md``.
    """

    #: Record a trace for this run.
    enabled: bool = False
    #: JSONL trace file path; ``None`` defaults to
    #: ``trace-<spec_hash>.jsonl`` in the working directory.
    sink: str | None = None
    #: ``full`` records everything; ``summary`` skips the high-volume
    #: per-tick/per-publish spans (see ``repro.obs.TRACE_DETAIL_LEVELS``).
    detail: str = "full"


@dataclass(frozen=True)
class ExecutionSection:
    """*How* to run: engine mode, parallelism, model operating point."""

    #: Worker processes; >= 2 shards the sequence rank.
    workers: int = 1
    #: Executor backend the sharded paths dispatch through (a
    #: :data:`repro.engine.executors.EXECUTOR_BACKENDS` name):
    #: ``process_pool`` (the production fork pool + shm transport),
    #: ``thread``, ``file_queue`` (spooled-file job queue — the external
    #: cluster stand-in), or ``in_process`` (serial reference; forces
    #: the unsharded path regardless of ``workers``).  All backends are
    #: bitwise-identical for any job set.
    backend: str = "process_pool"
    #: Vectorized lockstep mode (bitwise-identical to sequential).
    batched: bool = False
    #: Lockstep width bound; ``None`` runs all sequences in one rank.
    batch_size: int | None = None
    #: Best-of-N repeats for throughput timing.
    repeats: int = 3
    #: Evaluation sequence indices; ``None`` uses ``dataset.split()``.
    eval_indices: tuple[int, ...] | None = None
    #: Operating frame rate of the hardware energy/latency models.
    fps: float = 120.0
    #: Frame rates the ``fps_sweep`` workload evaluates; ``None`` uses
    #: the Fig. 16 default points (30, 60, 120, 240, 500).
    fps_sweep_points: tuple[float, ...] | None = None
    #: The ``serve`` workload's scenario (ignored by other workloads).
    serve: ServeSection = field(default_factory=ServeSection)
    #: Tracing around the run (hash-exempt; see :class:`TraceSection`).
    trace: TraceSection = field(default_factory=TraceSection)


_SECTIONS = {
    "dataset": DatasetSection,
    "sensor": SensorSection,
    "strategy": StrategySection,
    "training": TrainingSection,
    "execution": ExecutionSection,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable description of one experiment."""

    #: Workload kind (a :data:`~repro.api.registry.WORKLOADS` name).
    workload: str = "evaluate"
    dataset: DatasetSection = field(default_factory=DatasetSection)
    sensor: SensorSection = field(default_factory=SensorSection)
    strategy: StrategySection = field(default_factory=StrategySection)
    training: TrainingSection = field(default_factory=TrainingSection)
    execution: ExecutionSection = field(default_factory=ExecutionSection)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """A plain nested dict (tuples become lists) that round-trips."""
        out: dict = {"workload": self.workload}
        for name in _SECTIONS:
            section = getattr(self, name)
            out[name] = {
                f.name: _plain(getattr(section, f.name))
                for f in dataclasses.fields(section)
            }
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Build and validate a spec; errors name the bad field."""
        if not isinstance(data, dict):
            raise SpecError("<root>", f"expected an object, got {_tn(data)}")
        _check_keys(data, ["workload", *_SECTIONS], "<root>")
        kwargs: dict = {}
        if "workload" in data:
            kwargs["workload"] = _coerce(data["workload"], str, "workload")
        for name, section_cls in _SECTIONS.items():
            if name in data:
                kwargs[name] = _section_from_dict(
                    section_cls, data[name], name
                )
        return cls(**kwargs).validate()

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("<root>", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        return cls.from_json(Path(path).read_text())

    # -- identity ------------------------------------------------------------
    def spec_hash(self) -> str:
        """Stable digest of the canonical JSON form."""
        return self.section_hash("workload", *_SECTIONS)

    def section_hash(self, *names: str) -> str:
        """Digest over a subset of sections (e.g. the training-relevant
        ones, so a :class:`~repro.api.session.Session` can share one
        trained pipeline across specs that differ only in execution)."""
        data = self.to_dict()
        subset = {name: data[name] for name in names}
        if "execution" in subset:
            # The trace section is pure measurement (it cannot change
            # results), so it is exempt from spec identity: a traced run
            # resumes from / stores into the same entries as the
            # identical untraced run.
            subset["execution"] = {
                key: value
                for key, value in subset["execution"].items()
                if key != "trace"
            }
        canonical = json.dumps(subset, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- convenience ---------------------------------------------------------
    def with_workers(self, workers: int | None) -> "ExperimentSpec":
        """A copy with ``execution.workers`` overridden (CLI ``--workers``)."""
        if workers is None:
            return self
        return dataclasses.replace(
            self,
            execution=dataclasses.replace(self.execution, workers=workers),
        )

    def with_backend(self, backend: str | None) -> "ExperimentSpec":
        """A copy with ``execution.backend`` overridden (CLI ``--backend``)."""
        if backend is None:
            return self
        return dataclasses.replace(
            self,
            execution=dataclasses.replace(self.execution, backend=backend),
        )

    def with_trace(
        self, sink: str | None = None, detail: str | None = None
    ) -> "ExperimentSpec":
        """A copy with tracing enabled (CLI ``--trace [PATH]``)."""
        trace = dataclasses.replace(
            self.execution.trace,
            enabled=True,
            **({} if sink is None else {"sink": sink}),
            **({} if detail is None else {"detail": detail}),
        )
        return dataclasses.replace(
            self, execution=dataclasses.replace(self.execution, trace=trace)
        )

    # -- validation ----------------------------------------------------------
    def validate(self) -> "ExperimentSpec":
        """Check enums, registries and value ranges; returns ``self``."""
        # Built-in strategies/stages/workloads register on import; pull
        # them in here so a standalone ``repro.api.spec`` import still
        # validates against the populated registries.
        import repro.api.builtin  # noqa: F401  (registration side effect)
        from repro.api.registry import STRATEGIES, WORKLOADS

        if not self.workload:
            raise SpecError("workload", "must be a non-empty workload name")
        if self.workload not in WORKLOADS:
            raise SpecError(
                "workload",
                f"unknown workload {self.workload!r}; "
                f"choose from {WORKLOADS.names()}",
            )
        d = self.dataset
        if d.preset not in DATASET_PRESETS:
            raise SpecError(
                "dataset.preset",
                f"unknown preset {d.preset!r}; choose from {DATASET_PRESETS}",
            )
        if d.num_sequences is not None:
            _require("dataset.num_sequences", d.num_sequences >= 1, ">= 1")
        if d.frames_per_sequence is not None:
            _require(
                "dataset.frames_per_sequence",
                d.frames_per_sequence >= 2,
                ">= 2 (eventification needs frame pairs)",
            )
        _require("dataset.fps", d.fps > 0, "> 0")
        if d.eye_scale is not None:
            _require("dataset.eye_scale", d.eye_scale > 0, "> 0")
        if d.dynamics not in DYNAMICS_PRESETS:
            raise SpecError(
                "dataset.dynamics",
                f"unknown preset {d.dynamics!r}; "
                f"choose from {DYNAMICS_PRESETS}",
            )
        if d.blink_rate_hz is not None:
            _require("dataset.blink_rate_hz", d.blink_rate_hz >= 0, ">= 0")
        # Seeds key numpy RNG streams (default_rng([seed, tag, ...])),
        # which reject negative entries — catch it here with the field
        # named instead of detonating inside numpy mid-run (REP106).
        _require("dataset.seed", d.seed >= 0, ">= 0 (keys RNG streams)")
        n = d.noise
        if n.electrons_per_second_full_scale is not None:
            _require(
                "dataset.noise.electrons_per_second_full_scale",
                n.electrons_per_second_full_scale > 0,
                "> 0",
            )
        if n.read_noise_electrons is not None:
            _require(
                "dataset.noise.read_noise_electrons",
                n.read_noise_electrons >= 0,
                ">= 0",
            )
        if n.bit_depth is not None:
            _require(
                "dataset.noise.bit_depth", 1 <= n.bit_depth <= 16, "in [1, 16]"
            )
        s = self.sensor
        _require("sensor.compression", s.compression >= 1, ">= 1")
        _require("sensor.roi_margin_px", s.roi_margin_px >= 0, ">= 0")
        _require("sensor.reuse_window", s.reuse_window >= 1, ">= 1")
        _require(
            "sensor.sensor_seed", s.sensor_seed >= 0, ">= 0 (keys RNG streams)"
        )
        st = self.strategy
        for i, name in enumerate(st.names):
            if name not in STRATEGIES:
                raise SpecError(
                    f"strategy.names[{i}]",
                    f"unknown strategy {name!r}; "
                    f"choose from {STRATEGIES.names()}",
                )
        _require("strategy.compression", st.compression >= 1, ">= 1")
        _require("strategy.train_epochs", st.train_epochs >= 1, ">= 1")
        _require("strategy.seed", st.seed >= 0, ">= 0 (keys RNG streams)")
        t = self.training
        if t.epochs is not None:
            _require("training.epochs", t.epochs >= 1, ">= 1")
        if t.batch_size is not None:
            _require("training.batch_size", t.batch_size >= 1, ">= 1")
        num_sequences = (
            d.num_sequences
            if d.num_sequences is not None
            else PRESET_NUM_SEQUENCES[d.preset]
        )
        _indices_ok("training.train_indices", t.train_indices, num_sequences)
        e = self.execution
        _require("execution.workers", e.workers >= 1, ">= 1")
        # The backend registry lives in the engine layer; imported here
        # (not hard-coded) so a new backend registers in exactly one
        # place and the spec surface follows.
        from repro.engine.executors import EXECUTOR_BACKENDS

        if e.backend not in EXECUTOR_BACKENDS:
            raise SpecError(
                "execution.backend",
                f"unknown executor backend {e.backend!r}; "
                f"choose from {sorted(EXECUTOR_BACKENDS)}",
            )
        if e.batch_size is not None:
            _require("execution.batch_size", e.batch_size >= 1, ">= 1")
        _require("execution.repeats", e.repeats >= 1, ">= 1")
        _indices_ok("execution.eval_indices", e.eval_indices, num_sequences)
        _require("execution.fps", e.fps > 0, "> 0")
        if e.fps_sweep_points is not None:
            if not e.fps_sweep_points:
                raise SpecError(
                    "execution.fps_sweep_points",
                    "must be non-empty (or omitted)",
                )
            for i, fps in enumerate(e.fps_sweep_points):
                _require(f"execution.fps_sweep_points[{i}]", fps > 0, "> 0")
        sv = e.serve
        _require("execution.serve.num_clients", sv.num_clients >= 1, ">= 1")
        if sv.arrival not in ARRIVAL_PROCESSES:
            raise SpecError(
                "execution.serve.arrival",
                f"unknown arrival process {sv.arrival!r}; "
                f"choose from {ARRIVAL_PROCESSES}",
            )
        _require(
            "execution.serve.duration_ticks",
            sv.duration_ticks >= 2,
            ">= 2 (the first frame per client is a bootstrap)",
        )
        if sv.deadline_policy not in DEADLINE_POLICIES:
            raise SpecError(
                "execution.serve.deadline_policy",
                f"unknown policy {sv.deadline_policy!r}; "
                f"choose from {DEADLINE_POLICIES}",
            )
        if sv.max_batch is not None:
            _require("execution.serve.max_batch", sv.max_batch >= 1, ">= 1")
        if sv.queue_capacity is not None:
            _require(
                "execution.serve.queue_capacity", sv.queue_capacity >= 1, ">= 1"
            )
        _require(
            "execution.serve.deadline_slack_ticks",
            sv.deadline_slack_ticks >= 0,
            ">= 0",
        )
        _require(
            "execution.serve.seed", sv.seed >= 0, ">= 0 (keys RNG streams)"
        )
        tr = e.trace
        if tr.sink is not None and not tr.sink:
            raise SpecError(
                "execution.trace.sink",
                "must be a non-empty path (or omitted for the default)",
            )
        from repro.obs.tracer import TRACE_DETAIL_LEVELS

        if tr.detail not in TRACE_DETAIL_LEVELS:
            raise SpecError(
                "execution.trace.detail",
                f"unknown detail level {tr.detail!r}; "
                f"choose from {TRACE_DETAIL_LEVELS}",
            )
        return self


# -- helpers -----------------------------------------------------------------
def _plain(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return list(value) if isinstance(value, tuple) else value


def _tn(value) -> str:
    return type(value).__name__


def _require(field_path: str, ok: bool, constraint: str) -> None:
    if not ok:
        raise SpecError(field_path, f"must be {constraint}")


def _indices_ok(field_path: str, indices, num_sequences: int) -> None:
    if indices is None:
        return
    if not indices:
        raise SpecError(field_path, "must be non-empty (or omitted)")
    for i, idx in enumerate(indices):
        if not 0 <= idx < num_sequences:
            raise SpecError(
                f"{field_path}[{i}]",
                f"index {idx} out of range for {num_sequences} sequences",
            )


def _check_keys(data: dict, known: list[str], path: str) -> None:
    for key in data:
        if key not in known:
            hint = difflib.get_close_matches(str(key), known, n=1)
            suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
            where = key if path == "<root>" else f"{path}.{key}"
            raise SpecError(where, f"unknown field{suggestion}")


def _section_from_dict(section_cls, data, path: str):
    if not isinstance(data, dict):
        raise SpecError(path, f"expected an object, got {_tn(data)}")
    hints = typing.get_type_hints(section_cls)
    known = [f.name for f in dataclasses.fields(section_cls)]
    _check_keys(data, known, path)
    kwargs = {
        key: _coerce(value, hints[key], f"{path}.{key}")
        for key, value in data.items()
    }
    return section_cls(**kwargs)


def _coerce(value, hint, path: str):
    """Coerce a JSON value to a field's annotation, naming the field on
    mismatch.  JSON has no int/float distinction on the way in (``120``
    is a valid fps) nor tuples, so ints widen to float and lists become
    tuples; everything else must match exactly."""
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        # Nested sub-sections (dataset.noise, execution.serve) recurse
        # through the same key-checking/coercion machinery.
        return _section_from_dict(hint, value, path)
    origin = typing.get_origin(hint)
    if origin in (types.UnionType, typing.Union):
        arms = typing.get_args(hint)
        if value is None:
            if type(None) in arms:
                return None
            raise SpecError(path, "must not be null")
        for arm in arms:
            if arm is type(None):
                continue
            return _coerce(value, arm, path)
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise SpecError(path, f"expected a list, got {_tn(value)}")
        element = typing.get_args(hint)[0]
        return tuple(
            _coerce(v, element, f"{path}[{i}]") for i, v in enumerate(value)
        )
    if hint is bool:
        if not isinstance(value, bool):
            raise SpecError(path, f"expected a bool, got {_tn(value)}")
        return value
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(path, f"expected an int, got {_tn(value)}")
        return value
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(path, f"expected a number, got {_tn(value)}")
        return float(value)
    if hint is str:
        if not isinstance(value, str):
            raise SpecError(path, f"expected a string, got {_tn(value)}")
        return value
    raise SpecError(path, f"unsupported spec field type {hint!r}")
