"""The uniform result of every workload: metrics + timings + provenance.

Every path through the front door — CLI subcommands, ``repro run``,
benchmarks, examples — ends in one :class:`RunResult`, and there is
exactly one JSON serializer (:meth:`RunResult.to_dict` /
:meth:`write_json`), so ``--json`` output, ``BENCH_engine.json`` and
programmatic consumers can never drift apart.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.results import Table

__all__ = ["RunResult", "stage_timing_table", "git_describe"]


def git_describe() -> str | None:
    """Provenance stamp of the working tree; ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


@dataclass
class RunResult:
    """What one :meth:`Session.run` produced.

    ``metrics`` is workload-shaped but always JSON-able; ``stage_timings``
    is the engine's measured wall-clock attribution (``None`` for
    model-only workloads that execute no frames); ``workload_profile`` is
    the measured per-frame statistics in :class:`WorkloadProfile` field
    form; ``provenance`` pins spec hash, seed, workers, git state and the
    full spec.  ``tables`` are the human-facing renderings — excluded
    from JSON, printed by the CLI and examples.
    """

    workload: str
    metrics: dict
    stage_timings: dict[str, dict] | None = None
    workload_profile: dict | None = None
    provenance: dict = field(default_factory=dict)
    tables: list[Table] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "metrics": self.metrics,
            "stage_timings": self.stage_timings,
            "workload_profile": self.workload_profile,
            "provenance": self.provenance,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def render_tables(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    @staticmethod
    def timings_to_dict(stage_timings) -> dict[str, dict] | None:
        """Flatten engine ``StageTiming`` objects for serialization."""
        if stage_timings is None:
            return None
        return {
            name: {
                "seconds": timing.seconds,
                "frames": timing.frames,
                "calls": timing.calls,
                "seconds_per_frame": timing.seconds_per_frame,
            }
            for name, timing in stage_timings.items()
        }


def stage_timing_table(
    stage_timings: dict[str, dict], title: str = "measured wall-clock shares"
) -> Table:
    """Measured per-stage wall-clock shares, in serialized timing form.

    The measured counterpart of the Figs. 13/14 modeled breakdowns: the
    energy/latency models attribute *modeled* joules/seconds per stage,
    this table attributes *measured* engine seconds per stage of the same
    run, so the two print side by side.
    """
    # Sorted operands: the repo-wide reduction convention (REP104) —
    # the share column must not depend on stage-dict insertion order.
    total = sum(t["seconds"] for _, t in sorted(stage_timings.items()))
    table = Table(["engine stage", "ms/frame", "share"], title=title)
    for name, timing in stage_timings.items():
        share = timing["seconds"] / total if total > 0 else 0.0
        table.add_row(
            name,
            round(timing["seconds_per_frame"] * 1e3, 3),
            f"{share:.1%}",
        )
    return table
