"""Name-based plugin registries behind the declarative front door.

An :class:`ExperimentSpec` refers to strategies, engine stages, and
workload kinds by *string*; these registries turn those strings into
constructors.  Three registries ship populated (`repro.api.builtin`
registers the paper's strategy zoo, the canonical engine stages, and the
ten workload kinds), and the decorators are public so third parties can
plug in new scenarios without touching core::

    from repro.api import register_workload

    @register_workload("my_sweep")
    def my_sweep(session, spec):
        ...
        return RunResult(...)

Registration is strict: a duplicate name raises immediately (silent
shadowing of a built-in would make specs mean different things in
different processes), and unknown-name lookups report the registry kind
and the available choices.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = [
    "Registry",
    "RegistryError",
    "STRATEGIES",
    "STAGES",
    "WORKLOADS",
    "register_strategy",
    "register_stage",
    "register_workload",
]


class RegistryError(KeyError, ValueError):
    """Unknown or duplicate name in a registry.

    Subclasses ``KeyError`` (lookup failures behave like mapping misses)
    *and* ``ValueError`` (the legacy ``make_strategy`` contract raised
    ``ValueError`` on unknown names); ``str()`` renders the full message
    (``KeyError`` quotes its first argument, which would mangle
    multi-sentence errors).
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


class Registry:
    """A named mapping from spec strings to constructors."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, obj: Any = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``@registry.register("name")`` registers the decorated callable;
        ``registry.register("name", obj)`` registers directly.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} names must be non-empty strings: {name!r}"
            )

        def _add(target: Any) -> Any:
            if name in self._entries:
                raise RegistryError(
                    f"duplicate {self.kind} name {name!r}: already registered "
                    f"as {self._entries[name]!r}"
                )
            self._entries[name] = target
            return target

        return _add if obj is None else _add(obj)

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: ``name -> factory(compression, dataset=None) -> SamplingStrategy``.
STRATEGIES = Registry("strategy")
#: ``name -> Stage subclass`` (keys are unique slugs, not ``Stage.name``,
#: because the tracking and strategy graphs reuse timing labels like
#: ``"segment"`` for different stage classes).
STAGES = Registry("stage")
#: ``name -> workload(session, spec) -> RunResult``.
WORKLOADS = Registry("workload")


def register_strategy(name: str, obj: Any = None):
    """Register a sampling-strategy factory under a spec string."""
    return STRATEGIES.register(name, obj)


def register_stage(name: str, obj: Any = None):
    """Register an engine stage class under a spec string."""
    return STAGES.register(name, obj)


def register_workload(name: str, obj: Any = None):
    """Register a workload kind under a spec string."""
    return WORKLOADS.register(name, obj)
