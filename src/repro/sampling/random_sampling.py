"""Pixel sampling primitives: random and uniform masks, full-frame or in-ROI.

The paper's chosen policy is *pseudo-random sampling within the predicted
ROI* at roughly 20 % of the ROI pixels, giving ~5 % of the frame overall
(Sec. III-A, Sec. VI-A).  The alternatives here back the Fig. 15 ablation.

Masks are boolean ``(H, W)`` arrays, True at transmitted pixels.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_mask",
    "uniform_grid_mask",
    "random_mask_in_box",
    "uniform_mask_in_box",
    "apply_mask",
    "effective_compression",
    "effective_compression_batch",
]


def _validate_rate(rate: float) -> None:
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1]: {rate}")


def random_mask(
    shape: tuple[int, int], rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli mask over the whole frame at the given expected rate."""
    _validate_rate(rate)
    return rng.random(shape) < rate


def _grid_strides(rate: float) -> tuple[int, int]:
    """Row/column strides whose product best approximates ``1 / rate``."""
    inverse = 1.0 / rate
    stride_r = max(1, int(np.floor(np.sqrt(inverse))))
    stride_c = max(1, int(round(inverse / stride_r)))
    return stride_r, stride_c


def uniform_grid_mask(shape: tuple[int, int], rate: float) -> np.ndarray:
    """Deterministic uniform downsampling: a regular grid at ~``rate``.

    The classic "uniform downsample" the paper compares against (FULL+DS /
    ROI+DS).  Row and column strides are chosen jointly so the achieved
    rate tracks the target even when ``1/sqrt(rate)`` is far from an
    integer.
    """
    _validate_rate(rate)
    stride_r, stride_c = _grid_strides(rate)
    mask = np.zeros(shape, dtype=bool)
    mask[::stride_r, ::stride_c] = True
    return mask


def random_mask_in_box(
    shape: tuple[int, int],
    pixel_box: tuple[int, int, int, int],
    rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random sampling restricted to a pixel box (the paper's policy)."""
    _validate_rate(rate)
    mask = np.zeros(shape, dtype=bool)
    r0, c0, r1, c1 = pixel_box
    region = rng.random((max(0, r1 - r0), max(0, c1 - c0))) < rate
    mask[r0:r1, c0:c1] = region
    return mask


def uniform_mask_in_box(
    shape: tuple[int, int],
    pixel_box: tuple[int, int, int, int],
    rate: float,
) -> np.ndarray:
    """Uniform grid restricted to a pixel box (ROI+DS baseline)."""
    _validate_rate(rate)
    mask = np.zeros(shape, dtype=bool)
    r0, c0, r1, c1 = pixel_box
    stride_r, stride_c = _grid_strides(rate)
    sub = np.zeros((max(0, r1 - r0), max(0, c1 - c0)), dtype=bool)
    sub[::stride_r, ::stride_c] = True
    mask[r0:r1, c0:c1] = sub
    return mask


def apply_mask(frame: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Zero out unsampled pixels (what the host receives after RLE decode)."""
    if frame.shape != mask.shape:
        raise ValueError(f"shape mismatch: {frame.shape} vs {mask.shape}")
    return frame * mask


def effective_compression(mask: np.ndarray) -> float:
    """Compression rate = total pixels / transmitted pixels (paper metric)."""
    sampled = int(np.count_nonzero(mask))
    if sampled == 0:
        return float("inf")
    return mask.size / sampled


def effective_compression_batch(masks: np.ndarray) -> list[float]:
    """Per-row :func:`effective_compression` over a stacked ``(B, H, W)`` rank.

    The popcount vectorizes across the rank; the final ratio stays a
    python int division so every row is bitwise-identical to the scalar
    helper.
    """
    if masks.ndim != 3:
        raise ValueError(f"expected (B, H, W) masks, got {masks.shape}")
    counts = np.count_nonzero(masks, axis=(1, 2))
    size = int(masks.shape[1] * masks.shape[2])
    return [
        float("inf") if count == 0 else size / int(count) for count in counts
    ]
