"""In-sensor sparse sampling algorithms (paper Sec. III-A).

Eventification (Eqn. 1), the lightweight ROI prediction DNN, random and
uniform pixel sampling, and the full strategy zoo of the Fig. 15 ablation.
"""

from repro.sampling.eventification import DEFAULT_SIGMA, event_density, eventify
from repro.sampling.random_sampling import (
    apply_mask,
    effective_compression,
    random_mask,
    random_mask_in_box,
    uniform_grid_mask,
    uniform_mask_in_box,
)
from repro.sampling.roi import (
    ROIPredictor,
    ROIReusePolicy,
    box_area,
    box_from_pixels,
    box_iou,
    box_mask,
    box_to_pixels,
    expand_box,
    order_box,
)
from repro.sampling.strategies import (
    STRATEGY_NAMES,
    FullDownsample,
    FullRandom,
    ROIDownsample,
    ROIFixed,
    ROILearned,
    ROIRandom,
    SamplingDecision,
    SamplingStrategy,
    SkipStrategy,
)

__all__ = [
    "DEFAULT_SIGMA",
    "eventify",
    "event_density",
    "random_mask",
    "uniform_grid_mask",
    "random_mask_in_box",
    "uniform_mask_in_box",
    "apply_mask",
    "effective_compression",
    "ROIPredictor",
    "ROIReusePolicy",
    "order_box",
    "box_to_pixels",
    "box_from_pixels",
    "box_area",
    "box_iou",
    "box_mask",
    "expand_box",
    "SamplingDecision",
    "SamplingStrategy",
    "FullRandom",
    "FullDownsample",
    "SkipStrategy",
    "ROIDownsample",
    "ROIFixed",
    "ROILearned",
    "ROIRandom",
    "STRATEGY_NAMES",
]
