"""Eventification: inter-frame differencing into a binary event map (Eqn. 1).

``E_{t+1}(x, y) = Phi(|F_{t+1}(x, y) - F_t(x, y)|, sigma)`` where ``Phi``
outputs 1 when the absolute difference exceeds the threshold ``sigma``.

The paper empirically sets ``sigma = 15`` on the 8-bit pixel scale; frames
in this library are normalized to [0, 1], so the default threshold is
``15 / 255``.  Unlike a classic event camera, the difference is *not*
normalized by the previous pixel value — the paper deliberately removes
that division because it complicates the analog hardware without an
accuracy benefit (Sec. VII, "Event Cameras").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_SIGMA",
    "eventify",
    "eventify_normalized",
    "event_density",
    "event_recall",
    "event_precision",
]

#: sigma = 15 digital numbers on the 8-bit scale, normalized.
DEFAULT_SIGMA = 15.0 / 255.0


def eventify(
    prev_frame: np.ndarray, frame: np.ndarray, sigma: float = DEFAULT_SIGMA
) -> np.ndarray:
    """Binary event map of two consecutive frames.

    Parameters
    ----------
    prev_frame, frame:
        Same-shaped frames in [0, 1].
    sigma:
        Detection threshold on the absolute inter-frame difference.

    Returns
    -------
    Boolean array, True where ``|frame - prev_frame| > sigma``.
    """
    if prev_frame.shape != frame.shape:
        raise ValueError(
            f"frame shape mismatch: {prev_frame.shape} vs {frame.shape}"
        )
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative: {sigma}")
    return np.abs(frame - prev_frame) > sigma


def eventify_normalized(
    prev_frame: np.ndarray,
    frame: np.ndarray,
    contrast_threshold: float = 0.15,
    eps: float = 1e-3,
) -> np.ndarray:
    """Classic event-camera detection: |dF| / F_prev > contrast threshold.

    This is the *normalized* formulation BlissCam deliberately drops
    (Sec. VII): dividing by the previous pixel value needs an analog
    divider, complicating the hardware, and the paper finds no accuracy
    benefit for eye tracking.  Provided for the ablation benchmark that
    verifies that claim.
    """
    if prev_frame.shape != frame.shape:
        raise ValueError(
            f"frame shape mismatch: {prev_frame.shape} vs {frame.shape}"
        )
    if contrast_threshold < 0:
        raise ValueError(f"threshold must be non-negative: {contrast_threshold}")
    return np.abs(frame - prev_frame) / (np.abs(prev_frame) + eps) > (
        contrast_threshold
    )


def event_density(event_map: np.ndarray) -> float:
    """Fraction of pixels with an event — used by the SKIP baseline."""
    if event_map.size == 0:
        raise ValueError("empty event map")
    return float(np.count_nonzero(event_map)) / event_map.size


def event_recall(event_map: np.ndarray, foreground: np.ndarray) -> float:
    """Fraction of foreground pixels covered by events' bounding box.

    The events only need to *localize* the foreground (the ROI predictor
    consumes them as a spatial cue), so the meaningful recall is measured
    on the tight bounding box of the event map.
    """
    if event_map.shape != foreground.shape:
        raise ValueError("shape mismatch")
    fg_count = int(np.count_nonzero(foreground))
    if fg_count == 0:
        return 1.0
    rows, cols = np.nonzero(event_map)
    if rows.size == 0:
        return 0.0
    box = np.zeros_like(event_map)
    box[rows.min() : rows.max() + 1, cols.min() : cols.max() + 1] = True
    return float(np.count_nonzero(box & foreground)) / fg_count


def event_precision(event_map: np.ndarray, foreground: np.ndarray) -> float:
    """Fraction of events that fall on true foreground pixels."""
    if event_map.shape != foreground.shape:
        raise ValueError("shape mismatch")
    total = int(np.count_nonzero(event_map))
    if total == 0:
        return 1.0
    return float(np.count_nonzero(event_map & foreground)) / total
