"""The sampling-strategy zoo of Fig. 15.

Seven ways to decide which pixels leave the sensor, all normalized to a
common interface so the ablation benchmark can sweep compression rates:

==================  =====================================================
``FullRandom``      uniformly-at-random over the full frame (FULL+RANDOM)
``FullDownsample``  regular-grid downsample of the full frame (FULL+DS)
``SkipStrategy``    event-density gate: reuse the previous segmentation
                    when the frame is quiet, else send everything (SKIP)
``ROIDownsample``   regular grid restricted to the ROI (ROI+DS)
``ROIFixed``        offline-overfit fixed mask from dataset statistics
                    (ROI+FIXED)
``ROILearned``      an extra learned network scores pixels, top-k selected
                    (ROI+LEARNED)
``ROIRandom``       random sampling inside the predicted ROI — **ours**
==================  =====================================================

Every strategy receives the *target compression rate* (total pixels over
transmitted pixels) and translates it into its own internal rate; ROI-based
strategies therefore sample more densely inside small ROIs, exactly like
the paper's accounting.
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field

import numpy as np

from repro.sampling import random_sampling as rs
from repro.sampling.eventification import event_density

__all__ = [
    "SamplingDecision",
    "SamplingStrategy",
    "FullRandom",
    "FullDownsample",
    "SkipStrategy",
    "ROIDownsample",
    "ROIFixed",
    "ROILearned",
    "ROIRandom",
    "STRATEGY_NAMES",
]


@dataclass
class SamplingDecision:
    """What the sensor decided to transmit for one frame."""

    mask: np.ndarray  # (H, W) bool, True at transmitted pixels
    sparse_frame: np.ndarray  # frame with unsampled pixels zeroed
    roi_box: tuple[int, int, int, int] | None  # pixel box used, if any
    #: True when the host should reuse the previous frame's segmentation
    #: instead of running the network (SKIP baseline only).
    reuse_previous: bool = False

    @property
    def transmitted_pixels(self) -> int:
        return int(np.count_nonzero(self.mask))

    @property
    def compression(self) -> float:
        return rs.effective_compression(self.mask)


def _in_roi_rate(
    frame_shape: tuple[int, int],
    pixel_box: tuple[int, int, int, int],
    compression: float,
) -> float:
    """In-ROI sampling rate that hits the frame-level compression target."""
    total = frame_shape[0] * frame_shape[1]
    area = max(1, (pixel_box[2] - pixel_box[0]) * (pixel_box[3] - pixel_box[1]))
    return float(np.clip(total / (compression * area), 1e-6, 1.0))


class SamplingStrategy:
    """Base interface: produce a :class:`SamplingDecision` per frame."""

    name = "base"
    #: True when :meth:`sample` draws from the per-frame RNG stream —
    #: stochastic strategies produce a fresh mask on every call, while
    #: deterministic ones (Full+DS, Skip, ROI+DS, ROI+Fixed) are a pure
    #: function of the frame inputs and their own per-sequence state.
    stochastic = True

    def __init__(self, compression: float):
        if compression < 1.0:
            raise ValueError(f"compression rate must be >= 1: {compression}")
        self.compression = compression
        #: Populated by :meth:`spawn`; per-sequence clones carry their own
        #: stream so execution order (lockstep, sharding) can't change
        #: what each sequence draws.
        self.rng: np.random.Generator | None = None

    def spawn(self, seed_key) -> "SamplingStrategy":
        """A per-sequence clone with fresh adaptive state and RNG stream.

        Mirrors :meth:`BlissCamSensor.spawn`: everything fixed at
        construction/fit time (compression target, fitted masks, scorers)
        is shared, while the mutable per-sequence pieces — the adaptive
        state (:meth:`_reset_state`) and the random stream keyed by
        ``seed_key`` — are independent.  The staged engine spawns one
        clone per evaluated sequence, keyed by sequence index, which is
        what lets strategy graphs run batched and sharded bitwise-equal
        to the sequential loop.
        """
        key = list(seed_key) if np.iterable(seed_key) else [int(seed_key)]
        clone = copy.copy(self)
        clone.rng = np.random.default_rng(key)
        clone._reset_state()
        return clone

    def _reset_state(self) -> None:
        """Reset per-sequence adaptive state (overridden by Skip)."""

    def sample(
        self,
        frame: np.ndarray,
        event_map: np.ndarray,
        roi_box: tuple[int, int, int, int] | None,
        rng: np.random.Generator,
    ) -> SamplingDecision:
        raise NotImplementedError

    def sample_batch(
        self,
        strategies: list["SamplingStrategy"],
        frames: list[np.ndarray],
        event_maps: list[np.ndarray],
        roi_boxes: list[tuple[int, int, int, int] | None],
    ) -> list[SamplingDecision]:
        """Batched :meth:`sample` over one lockstep rank, bitwise row-equal.

        ``strategies`` are per-sequence :meth:`spawn` clones of this
        template, in rank order.  Overrides vectorize the mask and
        sparse-frame math across the rank but must draw any randomness
        per-row from each spawn's *own* generator, in rank order, so
        every sequence's stream consumes exactly what the scalar path
        would — that invariant is what keeps sequential, lockstep and
        sharded execution bitwise identical.  The base implementation is
        the per-row reference the overrides are pinned against.
        """
        return [
            s.sample(frame, event_map, roi_box, s.rng)
            for s, frame, event_map, roi_box in zip(
                strategies, frames, event_maps, roi_boxes
            )
        ]

    def _full_frame_box(self, frame: np.ndarray) -> tuple[int, int, int, int]:
        return (0, 0, frame.shape[0], frame.shape[1])


class FullRandom(SamplingStrategy):
    """FULL+RANDOM: ignore the ROI, Bernoulli-sample the entire frame."""

    name = "Full+Random"

    def sample(self, frame, event_map, roi_box, rng):
        mask = rs.random_mask(frame.shape, 1.0 / self.compression, rng)
        return SamplingDecision(mask, rs.apply_mask(frame, mask), None)

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        rate = 1.0 / self.compression
        # Per-row draws from each spawn's own stream, rank order — same
        # values the scalar path would consume; the compare and the
        # sparse multiply are elementwise, so stacking is exact.
        draws = np.stack(
            [s.rng.random(f.shape) for s, f in zip(strategies, frames)]
        )
        masks = draws < rate
        sparse = np.stack(frames) * masks
        return [
            SamplingDecision(masks[i], sparse[i], None)
            for i in range(len(strategies))
        ]


class FullDownsample(SamplingStrategy):
    """FULL+DS: regular-grid downsample of the entire frame."""

    name = "Full+DS"
    stochastic = False

    def sample(self, frame, event_map, roi_box, rng):
        mask = rs.uniform_grid_mask(frame.shape, 1.0 / self.compression)
        return SamplingDecision(mask, rs.apply_mask(frame, mask), None)

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        # The grid is a pure function of shape and compression: one
        # construction serves the whole rank, one stacked multiply
        # builds every sparse frame.
        mask = rs.uniform_grid_mask(frames[0].shape, 1.0 / self.compression)
        sparse = np.stack(frames) * mask
        return [
            SamplingDecision(mask.copy(), sparse[i], None)
            for i in range(len(strategies))
        ]


class SkipStrategy(SamplingStrategy):
    """SKIP: reuse the previous result when the event density is low.

    Emulates EdGaze's event-driven gate [49]: quiet frames transmit nothing
    and the host reuses the previous segmentation; active frames transmit
    the full frame.  The density threshold is derived from the compression
    target: to average a compression of C, roughly (1 - 1/C) of frames must
    be skipped, so the threshold adapts online to the running skip rate.
    """

    name = "Skip"
    stochastic = False

    def __init__(self, compression: float, density_threshold: float | None = None):
        super().__init__(compression)
        self.density_threshold = (
            density_threshold if density_threshold is not None else 0.01
        )
        self._frames_seen = 0
        self._frames_sent = 0

    def _reset_state(self) -> None:
        # The adaptive send-rate gate restarts per sequence: spawned
        # clones must not inherit another sequence's running skip rate.
        self._frames_seen = 0
        self._frames_sent = 0

    def sample(self, frame, event_map, roi_box, rng):
        self._frames_seen += 1
        target_send_rate = 1.0 / self.compression
        sent_rate = self._frames_sent / max(1, self._frames_seen)
        # Adaptive gate: lean toward sending when under budget.
        threshold = self.density_threshold * (
            2.0 if sent_rate > target_send_rate else 0.5
        )
        if event_density(event_map) < threshold:
            mask = np.zeros(frame.shape, dtype=bool)
            return SamplingDecision(
                mask, np.zeros_like(frame), None, reuse_previous=True
            )
        self._frames_sent += 1
        mask = np.ones(frame.shape, dtype=bool)
        return SamplingDecision(mask, frame.copy(), self._full_frame_box(frame))

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        # The densities vectorize (integer popcount over the rank, then
        # the same int/int division event_density performs); the
        # adaptive send-rate gate is per-sequence state and stays a
        # cheap per-row scan in rank order.  Skip draws nothing from the
        # RNG, so stream order is not at stake.
        events = np.stack(event_maps)
        if events[0].size == 0:
            raise ValueError("empty event map")
        counts = np.count_nonzero(events, axis=(1, 2))
        size = events[0].size
        decisions = []
        for s, frame, count in zip(strategies, frames, counts):
            s._frames_seen += 1
            target_send_rate = 1.0 / s.compression
            sent_rate = s._frames_sent / max(1, s._frames_seen)
            threshold = s.density_threshold * (
                2.0 if sent_rate > target_send_rate else 0.5
            )
            if count / size < threshold:
                mask = np.zeros(frame.shape, dtype=bool)
                decisions.append(
                    SamplingDecision(
                        mask, np.zeros_like(frame), None, reuse_previous=True
                    )
                )
            else:
                s._frames_sent += 1
                mask = np.ones(frame.shape, dtype=bool)
                decisions.append(
                    SamplingDecision(mask, frame.copy(), s._full_frame_box(frame))
                )
        return decisions


class ROIDownsample(SamplingStrategy):
    """ROI+DS: regular grid restricted to the predicted ROI."""

    name = "ROI+DS"
    stochastic = False

    def sample(self, frame, event_map, roi_box, rng):
        box = roi_box or self._full_frame_box(frame)
        rate = _in_roi_rate(frame.shape, box, self.compression)
        mask = rs.uniform_mask_in_box(frame.shape, box, rate)
        return SamplingDecision(mask, rs.apply_mask(frame, mask), box)

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        # Box shapes differ per row, so the grid construction stays
        # per-row; the sparse-frame multiply stacks across the rank.
        boxes, masks = [], []
        for frame, roi_box in zip(frames, roi_boxes):
            box = roi_box or self._full_frame_box(frame)
            boxes.append(box)
            rate = _in_roi_rate(frame.shape, box, self.compression)
            masks.append(rs.uniform_mask_in_box(frame.shape, box, rate))
        stacked = np.stack(masks)
        sparse = np.stack(frames) * stacked
        return [
            SamplingDecision(stacked[i], sparse[i], boxes[i])
            for i in range(len(strategies))
        ]


@dataclass
class ROIFixed(SamplingStrategy):
    """ROI+FIXED: a single mask overfit offline to dataset statistics.

    :meth:`fit` accumulates the average foreground-probability map over a
    training set; sampling always transmits the top-K most-often-foreground
    pixels, regardless of where the eye actually is this frame.
    """

    compression: float
    _prob_map: np.ndarray | None = field(default=None, repr=False)
    name = "ROI+Fixed"
    stochastic = False

    def __post_init__(self):
        SamplingStrategy.__init__(self, self.compression)

    def fit(self, foreground_masks: np.ndarray) -> None:
        """``foreground_masks``: (N, H, W) boolean ground-truth foreground."""
        if foreground_masks.ndim != 3:
            raise ValueError("expected a (N, H, W) stack of masks")
        self._prob_map = foreground_masks.astype(np.float64).mean(axis=0)

    def _fixed_mask(self, frame_shape: tuple[int, int], frame_size: int) -> np.ndarray:
        if self._prob_map is None:
            raise RuntimeError("ROIFixed must be fit() before sampling")
        budget = max(1, int(round(frame_size / self.compression)))
        flat = self._prob_map.ravel()
        # Deterministic top-K by probability; ties broken by pixel index.
        top = np.argpartition(-flat, min(budget, flat.size - 1))[:budget]
        mask = np.zeros(frame_size, dtype=bool)
        mask[top] = True
        return mask.reshape(frame_shape)

    def sample(self, frame, event_map, roi_box, rng):
        mask = self._fixed_mask(frame.shape, frame.size)
        return SamplingDecision(mask, rs.apply_mask(frame, mask), None)

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        # The mask is a pure function of fit-time state shared by every
        # spawn: one top-K serves the rank, one stacked multiply builds
        # all the sparse frames.
        mask = self._fixed_mask(frames[0].shape, frames[0].size)
        sparse = np.stack(frames) * mask
        return [
            SamplingDecision(mask.copy(), sparse[i], None)
            for i in range(len(strategies))
        ]


class ROILearned(SamplingStrategy):
    """ROI+LEARNED: an additional network predicts which pixels to sample.

    The paper implements this with an extra in-sensor ViT and finds the
    accuracy comparable to random sampling but the hardware cost
    intolerable.  Here the scorer is any callable mapping a frame to a
    per-pixel importance map (the default uses the event map blurred by a
    box filter as a stand-in for a trained scorer; a trained
    :class:`~repro.sampling.roi.ROIPredictor`-style scorer can be plugged
    in).  Top-K pixels inside the ROI are transmitted.
    """

    name = "ROI+Learned"

    def __init__(self, compression: float, scorer=None):
        super().__init__(compression)
        self.scorer = scorer

    @staticmethod
    def _default_score(frame: np.ndarray, event_map: np.ndarray) -> np.ndarray:
        # Box-blurred event density: a cheap learned-importance surrogate.
        kernel = 5
        padded = np.pad(event_map.astype(np.float64), kernel // 2, mode="edge")
        out = np.zeros_like(event_map, dtype=np.float64)
        for dr in range(kernel):
            for dc in range(kernel):
                out += padded[
                    dr : dr + event_map.shape[0], dc : dc + event_map.shape[1]
                ]
        return out

    @staticmethod
    def _default_score_batch(event_maps: np.ndarray) -> np.ndarray:
        """:meth:`_default_score` over a stacked ``(B, H, W)`` rank.

        The dr/dc shift-accumulate runs in the identical order as the
        scalar blur, so every float64 partial sum matches per pixel —
        each row is bitwise-equal to the per-frame score map.
        """
        kernel = 5
        pad = kernel // 2
        padded = np.pad(
            event_maps.astype(np.float64),
            ((0, 0), (pad, pad), (pad, pad)),
            mode="edge",
        )
        out = np.zeros(event_maps.shape, dtype=np.float64)
        for dr in range(kernel):
            for dc in range(kernel):
                out += padded[
                    :,
                    dr : dr + event_maps.shape[1],
                    dc : dc + event_maps.shape[2],
                ]
        return out

    def _select(self, scores, box, frame, rng):
        """Tie-broken top-K mask inside ``box`` — the per-row RNG seam."""
        scores = scores + rng.random(scores.shape) * 1e-9  # tie breaking
        region = np.full(frame.shape, -np.inf)
        r0, c0, r1, c1 = box
        region[r0:r1, c0:c1] = scores[r0:r1, c0:c1]
        budget = max(1, int(round(frame.size / self.compression)))
        flat = region.ravel()
        top = np.argpartition(-flat, min(budget, flat.size - 1))[:budget]
        mask = np.zeros(frame.size, dtype=bool)
        mask[top] = True
        mask &= np.isfinite(flat)
        return mask.reshape(frame.shape)

    def sample(self, frame, event_map, roi_box, rng):
        box = roi_box or self._full_frame_box(frame)
        if self.scorer is not None:
            scores = self.scorer(frame, event_map)
        else:
            scores = self._default_score(frame, event_map)
        mask = self._select(scores, box, frame, rng)
        return SamplingDecision(mask, rs.apply_mask(frame, mask), box)

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        # The default box-blur scorer vectorizes over the rank; custom
        # scorers keep their per-frame contract.  Tie-break draws and the
        # box-restricted top-K stay per-row (own stream, varying boxes).
        if self.scorer is not None:
            score_rows = [
                self.scorer(f, e) for f, e in zip(frames, event_maps)
            ]
        else:
            stacked_scores = self._default_score_batch(np.stack(event_maps))
            score_rows = list(stacked_scores)
        boxes, masks = [], []
        for s, frame, scores, roi_box in zip(
            strategies, frames, score_rows, roi_boxes
        ):
            box = roi_box or self._full_frame_box(frame)
            boxes.append(box)
            masks.append(self._select(scores, box, frame, s.rng))
        stacked = np.stack(masks)
        sparse = np.stack(frames) * stacked
        return [
            SamplingDecision(stacked[i], sparse[i], boxes[i])
            for i in range(len(strategies))
        ]


class ROIRandom(SamplingStrategy):
    """Ours: pseudo-random sampling inside the predicted ROI (Sec. III-A)."""

    name = "Ours (ROI+Random)"

    def sample(self, frame, event_map, roi_box, rng):
        box = roi_box or self._full_frame_box(frame)
        rate = _in_roi_rate(frame.shape, box, self.compression)
        mask = rs.random_mask_in_box(frame.shape, box, rate, rng)
        return SamplingDecision(mask, rs.apply_mask(frame, mask), box)

    def sample_batch(self, strategies, frames, event_maps, roi_boxes):
        # Box-shaped draws stay per-row from each spawn's own stream
        # (box sizes differ per sequence, and the draw shape must match
        # the scalar path exactly); the sparse multiply stacks.
        boxes, masks = [], []
        for s, frame, roi_box in zip(strategies, frames, roi_boxes):
            box = roi_box or self._full_frame_box(frame)
            boxes.append(box)
            rate = _in_roi_rate(frame.shape, box, self.compression)
            masks.append(rs.random_mask_in_box(frame.shape, box, rate, s.rng))
        stacked = np.stack(masks)
        sparse = np.stack(frames) * stacked
        return [
            SamplingDecision(stacked[i], sparse[i], boxes[i])
            for i in range(len(strategies))
        ]


STRATEGY_NAMES = [
    FullRandom.name,
    FullDownsample.name,
    SkipStrategy.name,
    ROIDownsample.name,
    ROIFixed.name,
    ROILearned.name,
    ROIRandom.name,
]
