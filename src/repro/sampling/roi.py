"""ROI prediction: the lightweight in-sensor DNN plus box utilities.

The predictor follows the paper exactly in structure (Sec. III-A): three
convolution layers followed by two fully-connected layers, consuming the
binary event map with the *previous frame's segmentation map* stacked as a
second input channel (the corrective cue for blinks/saccades).  The output
is four numbers — the normalized corner coordinates of the ROI box.

Box convention throughout the library: ``(r0, c0, r1, c1)`` normalized to
[0, 1], half-open (``r1``/``c1`` exclusive when converted to pixels).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.synth.eye_model import NUM_CLASSES

__all__ = [
    "ROIPredictor",
    "ROIReusePolicy",
    "box_to_pixels",
    "box_from_pixels",
    "box_area",
    "box_iou",
    "box_mask",
    "expand_box",
    "order_box",
]


def order_box(box: np.ndarray) -> np.ndarray:
    """Sort corner coordinates so ``r0 <= r1`` and ``c0 <= c1``."""
    r0, c0, r1, c1 = box
    return np.array(
        [min(r0, r1), min(c0, c1), max(r0, r1), max(c0, c1)], dtype=np.float64
    )


def box_to_pixels(
    box: np.ndarray, height: int, width: int
) -> tuple[int, int, int, int]:
    """Normalized box -> integer pixel box, clipped to the frame."""
    r0, c0, r1, c1 = order_box(np.asarray(box, dtype=np.float64))
    pr0 = int(np.clip(np.floor(r0 * height), 0, height))
    pc0 = int(np.clip(np.floor(c0 * width), 0, width))
    pr1 = int(np.clip(np.ceil(r1 * height), 0, height))
    pc1 = int(np.clip(np.ceil(c1 * width), 0, width))
    if pr1 <= pr0:
        pr1 = min(pr0 + 1, height)
        pr0 = pr1 - 1
    if pc1 <= pc0:
        pc1 = min(pc0 + 1, width)
        pc0 = pc1 - 1
    return pr0, pc0, pr1, pc1


def box_from_pixels(
    pixel_box: tuple[int, int, int, int], height: int, width: int
) -> np.ndarray:
    """Integer pixel box -> normalized box."""
    r0, c0, r1, c1 = pixel_box
    return np.array([r0 / height, c0 / width, r1 / height, c1 / width])


def box_area(pixel_box: tuple[int, int, int, int]) -> int:
    r0, c0, r1, c1 = pixel_box
    return max(0, r1 - r0) * max(0, c1 - c0)


def box_iou(
    a: tuple[int, int, int, int], b: tuple[int, int, int, int]
) -> float:
    """Intersection-over-union of two pixel boxes."""
    ir0, ic0 = max(a[0], b[0]), max(a[1], b[1])
    ir1, ic1 = min(a[2], b[2]), min(a[3], b[3])
    inter = max(0, ir1 - ir0) * max(0, ic1 - ic0)
    union = box_area(a) + box_area(b) - inter
    return inter / union if union else 0.0


def box_mask(
    pixel_box: tuple[int, int, int, int], height: int, width: int
) -> np.ndarray:
    """Boolean mask of pixels inside the box."""
    mask = np.zeros((height, width), dtype=bool)
    r0, c0, r1, c1 = pixel_box
    mask[r0:r1, c0:c1] = True
    return mask


def expand_box(
    pixel_box: tuple[int, int, int, int],
    margin: int,
    height: int,
    width: int,
) -> tuple[int, int, int, int]:
    """Grow a pixel box by ``margin`` on all sides, clipped to the frame."""
    r0, c0, r1, c1 = pixel_box
    return (
        max(0, r0 - margin),
        max(0, c0 - margin),
        min(height, r1 + margin),
        min(width, c1 + margin),
    )


class ROIPredictor(nn.Module):
    """3-conv + 2-FC bounding-box regressor (the in-sensor ROI DNN).

    Input channels: (0) the binary event map, (1) the previous segmentation
    map normalized to [0, 1].  Output: 4 sigmoid-activated normalized
    coordinates ``(r0, c0, r1, c1)``.

    The channel widths scale with ``base_channels``; at the paper's 640x400
    resolution with ``base_channels=8`` the MAC count is of the same order
    as the paper's 2.1e7.
    """

    def __init__(
        self,
        height: int,
        width: int,
        rng: np.random.Generator,
        base_channels: int = 8,
    ):
        super().__init__()
        if height % 8 or width % 8:
            raise ValueError(
                f"resolution {height}x{width} must be divisible by 8 "
                "(three stride-2 convolutions)"
            )
        self.height = height
        self.width = width
        c = base_channels
        self.conv1 = nn.Conv2d(2, c, kernel_size=3, rng=rng, stride=2, padding=1)
        self.act1 = nn.ReLU()
        self.conv2 = nn.Conv2d(c, 2 * c, kernel_size=3, rng=rng, stride=2, padding=1)
        self.act2 = nn.ReLU()
        self.conv3 = nn.Conv2d(
            2 * c, 4 * c, kernel_size=3, rng=rng, stride=2, padding=1
        )
        self.act3 = nn.ReLU()
        self.flatten = nn.Flatten()
        feat = 4 * c * (height // 8) * (width // 8)
        self.fc1 = nn.Linear(feat, 32, rng)
        self.act4 = nn.ReLU()
        self.fc2 = nn.Linear(32, 4, rng)
        self.out_act = nn.Sigmoid()

    @staticmethod
    def make_input(
        event_map: np.ndarray, prev_segmentation: np.ndarray | None
    ) -> np.ndarray:
        """Stack event map + previous segmentation into a (1, 2, H, W) batch."""
        event = event_map.astype(np.float64)
        if prev_segmentation is None:
            seg = np.zeros_like(event)
        else:
            seg = prev_segmentation.astype(np.float64) / max(NUM_CLASSES - 1, 1)
        return np.stack([event, seg])[None]

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.act1(self.conv1(x))
        h = self.act2(self.conv2(h))
        h = self.act3(self.conv3(h))
        h = self.act4(self.fc1(self.flatten(h)))
        return self.out_act(self.fc2(h))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.fc2.backward(self.out_act.backward(grad))
        grad = self.flatten.backward(self.fc1.backward(self.act4.backward(grad)))
        grad = self.conv3.backward(self.act3.backward(grad))
        grad = self.conv2.backward(self.act2.backward(grad))
        return self.conv1.backward(self.act1.backward(grad))

    def predict_box(
        self, event_map: np.ndarray, prev_segmentation: np.ndarray | None
    ) -> np.ndarray:
        """Convenience: event map (+ prev seg) -> ordered normalized box."""
        out = self.forward(self.make_input(event_map, prev_segmentation))
        return order_box(out[0])

    def predict_box_batch(
        self,
        event_maps: list[np.ndarray],
        prev_segmentations: list[np.ndarray | None],
    ) -> list[np.ndarray]:
        """Batched :meth:`predict_box`, bitwise-equal to the per-frame loop.

        The conv trunk is safe to stack: im2col is a pure gather and the
        conv GEMM is row-independent by construction (one fixed-shape
        matmul per sample — see :class:`~repro.nn.conv.Conv2d`).  The FC
        tail is *not* provably batch-invariant (a stacked ``(B, F) @
        (F, O)`` BLAS call may block differently per ``B``), so it runs
        per-row — it is a tiny fraction of the predictor's MACs.
        """
        x = np.concatenate(
            [
                self.make_input(event, seg)
                for event, seg in zip(event_maps, prev_segmentations)
            ]
        )
        h = self.act1(self.conv1(x))
        h = self.act2(self.conv2(h))
        h = self.act3(self.conv3(h))
        flat = self.flatten(h)
        boxes = []
        for b in range(flat.shape[0]):
            row = self.act4(self.fc1(flat[b : b + 1]))
            out = self.out_act(self.fc2(row))
            boxes.append(order_box(out[0]))
        return boxes

    def mac_count(self) -> int:
        """Multiply-accumulates for one forward pass (paper: ~2.1e7)."""
        h, w = self.height, self.width
        total = self.conv1.mac_count(h, w)
        total += self.conv2.mac_count(h // 2, w // 2)
        total += self.conv3.mac_count(h // 4, w // 4)
        total += self.fc1.mac_count(1)
        total += self.fc2.mac_count(1)
        return total


@dataclass
class ROIReusePolicy:
    """Reuse a previously predicted ROI for ``window`` consecutive frames.

    ``window = 1`` predicts every frame (no reuse) — the paper's default.
    Table I studies windows of 1, 4 and 16 and finds reuse a bad trade.
    """

    window: int = 1

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"reuse window must be >= 1: {self.window}")
        self._cached: np.ndarray | None = None
        self._age = 0

    def reset(self) -> None:
        self._cached = None
        self._age = 0

    def should_predict(self) -> bool:
        """True when a fresh prediction is needed this frame."""
        return self._cached is None or self._age >= self.window

    def update(self, box: np.ndarray) -> None:
        """Record a fresh prediction."""
        self._cached = np.asarray(box, dtype=np.float64)
        self._age = 1

    def current(self) -> np.ndarray:
        """The box to use this frame (call after should_predict/update)."""
        if self._cached is None:
            raise RuntimeError("no ROI available; call update() first")
        return self._cached

    def tick(self) -> None:
        """Advance to the next frame."""
        self._age += 1
