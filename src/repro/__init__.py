"""repro: a full reproduction of BlissCam (ISCA 2024).

BlissCam co-designs an image sensor with an eye-tracking algorithm:
pixels are sparsely sampled *inside* the sensor (eventification -> ROI
prediction -> in-ROI random sampling), and a sparse-robust ViT segments
the ~5 % of pixels that reach the host, cutting energy ~4-8x and tracking
latency ~1.4x with little accuracy loss.

Subpackages
-----------
``repro.api``           declarative front door: ExperimentSpec -> Session.run
``repro.nn``            from-scratch numpy DNN framework (PyTorch substitute)
``repro.synth``         synthetic near-eye dataset (OpenEDS substitute)
``repro.sampling``      eventification, ROI prediction, sampling strategies
``repro.segmentation``  sparse ViT + RITnet/EdGaze baselines
``repro.gaze``          gaze regression + angular-error metrics
``repro.training``      joint ROI+ViT training (Sec. III-C)
``repro.hardware``      DPS sensor, NPUs, MIPI, DRAM, energy/latency/area
``repro.core``          end-to-end pipeline, configs, benchmark plumbing

Quickstart
----------
>>> from repro.api import ExperimentSpec, Session
>>> with Session() as session:
...     result = session.run(ExperimentSpec())   # evaluate @ CI scale
>>> result.metrics["horizontal"]["mean"]         # degrees

(The imperative surface remains: ``BlissCamPipeline(ci())`` /
``.train()`` / ``.evaluate()`` — see ``docs/api.md``.)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
