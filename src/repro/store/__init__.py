"""``repro.store`` — the persistent, content-addressed artifact store.

The durable half of the resumable-execution story (the other half is
:mod:`repro.engine.executors`): a :class:`ArtifactStore` persists the
expensive objects a :class:`~repro.api.session.Session` memoizes —
trained ``BlissCamPipeline``\\ s, per-strategy training triples
(including their post-training RNG state), completed workload
``RunResult``\\ s — under keys derived from the spec's section hashes,
so a killed sweep restarts, replays the completed work bitwise from
disk, and only computes what is actually missing.

See ``docs/architecture.md`` ("Persistence & executors") for the key
scheme, the atomicity contract and the GC policy, and ``docs/api.md``
for ``Session(store=...)`` / ``repro run --resume``.
"""

from repro.store.store import (
    STORE_FORMAT_VERSION,
    ArtifactStore,
    StoreError,
    StoreRecord,
    canonical_key,
    store_digest,
)

__all__ = [
    "ArtifactStore",
    "StoreError",
    "StoreRecord",
    "STORE_FORMAT_VERSION",
    "canonical_key",
    "store_digest",
]
