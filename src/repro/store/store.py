"""The content-addressed on-disk artifact store.

Design contract (the pieces resumable sweeps depend on):

* **Keys are hash-derived, never identity-derived.**  A store key is a
  tuple of JSON-able parts — workload kind strings, the spec's
  ``spec_hash``/``section_hash`` digests, registry names, plain numbers
  — canonicalized to JSON and digested.  ``repr()``/``str()`` of live
  objects and ``id()`` are banned (REP107 enforces this): those encode
  process identity, and a resumed process must derive the *same* key
  from the *same* spec.
* **Atomic publication.**  Every write lands in ``staging/`` first and
  is ``os.replace``\\ d into place: the payload blob, then its metadata
  record.  An entry is visible if and only if its record file exists,
  so a reader can never observe a torn entry — a ``SIGTERM`` mid-write
  leaves at worst an orphaned staging file (``gc`` sweeps those).
* **Versioned records.**  Each entry carries a metadata record (format
  version, git stamp, the full key provenance, payload size + content
  digest).  A record whose format version does not match
  :data:`STORE_FORMAT_VERSION` is *refused* — treated as a miss and
  reported by ``ls`` as stale — never misread into a live object.
* **LRU / size-budget GC.**  ``get`` touches the entry's mtime; ``gc``
  evicts least-recently-used entries beyond ``max_bytes`` /
  ``max_entries`` budgets (stale-format entries are always evicted
  first) and purges orphaned staging files.

The store assumes one writer at a time per entry (the resumable-sweep
pattern: one ``repro run`` against one store).  Concurrent writers of
*different* entries are safe — staging names are unique and publication
is atomic — but ``gc`` must not run concurrently with a writer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.obs.tracer import current_tracer

__all__ = [
    "STORE_FORMAT_VERSION",
    "ArtifactStore",
    "StoreError",
    "StoreRecord",
    "canonical_key",
    "store_digest",
]

#: On-disk record format version.  Bump on any incompatible change to
#: the record schema or the payload serialization; old entries are then
#: refused (reported stale by ``ls``, evicted first by ``gc``) instead
#: of being misread.
STORE_FORMAT_VERSION = 1

#: Staging files carry this prefix so the leak check (and ``gc``) can
#: tell an interrupted write's debris from foreign files.
STAGING_PREFIX = "staging-"


class StoreError(RuntimeError):
    """A store operation failed (bad root, unreadable entry, bad key)."""


def canonical_key(parts: Any) -> list:
    """The canonical (JSON-able) form of a store key.

    Keys are tuples/lists of strings, numbers, bools, ``None`` and
    nested tuples of the same — exactly what the session memo keys are
    made of (workload kinds, section hashes, registry names, scalar
    knobs).  Anything else (a live object, whose only JSON form would be
    an identity-derived ``repr``) is rejected: resumed processes could
    never re-derive its key.
    """
    if isinstance(parts, (tuple, list)):
        return [canonical_key(p) for p in parts]
    if parts is None or isinstance(parts, (str, int, float, bool)):
        return parts
    raise StoreError(
        f"store keys must be built from hashes, names and scalars; got "
        f"a {type(parts).__name__} part (derive a digest for it instead "
        "— spec_hash/section_hash/transport digests, never object "
        "identity)"
    )


def store_digest(parts: Any) -> str:
    """The entry digest of a key: SHA-256 over its canonical JSON."""
    canonical = json.dumps(canonical_key(parts), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class StoreRecord:
    """One entry's metadata record (the ``.json`` half of an entry)."""

    digest: str
    #: Record format version this entry was written with.
    format: int
    #: Human/machine-readable key provenance: the canonical key parts.
    key: list
    #: Entry kind — by convention the key's first part ("pipeline",
    #: "strategy_training", "run_result", ...).
    kind: str
    #: Payload pickle size in bytes.
    nbytes: int
    #: BLAKE2b digest of the payload bytes (integrity check on read).
    payload_digest: str
    #: ``git describe`` of the tree that wrote the entry (provenance
    #: only — never part of the key).
    git: str | None

    @property
    def stale(self) -> bool:
        return self.format != STORE_FORMAT_VERSION

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "format": self.format,
            "key": self.key,
            "kind": self.kind,
            "nbytes": self.nbytes,
            "payload_digest": self.payload_digest,
            "git": self.git,
        }


class ArtifactStore:
    """A content-addressed on-disk store of session artifacts.

    Layout::

        root/
          entries/<digest>.json   # metadata record (presence = entry)
          entries/<digest>.pkl    # payload pickle
          staging/staging-*       # in-flight writes (atomically renamed)

    ``put``/``get`` round-trip arbitrary picklable values; every path
    through them is atomic-rename publication, so interrupted processes
    never leave torn entries.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._entries = self.root / "entries"
        self._staging = self.root / "staging"
        for path in (self._entries, self._staging):
            path.mkdir(parents=True, exist_ok=True)
        #: Per-instance counters (observability; surfaced by
        #: ``Session.stats()`` when a store is attached).
        self.counters = {
            "puts": 0,
            "gets": 0,
            "hits": 0,
            "misses": 0,
            "stale_refused": 0,
        }

    # -- key plumbing ---------------------------------------------------------
    @staticmethod
    def digest_for(key: Any) -> str:
        return store_digest(key)

    def _paths(self, digest: str) -> tuple[Path, Path]:
        return (
            self._entries / f"{digest}.json",
            self._entries / f"{digest}.pkl",
        )

    # -- atomic publication ---------------------------------------------------
    def _stage(self, data: bytes, final: Path) -> None:
        """Write ``data`` to a unique staging file, then rename into
        place.  ``os.replace`` is atomic on POSIX, so readers observe
        either the old entry or the new one, never a prefix."""
        tmp = self._staging / f"{STAGING_PREFIX}{secrets.token_hex(8)}"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)

    def put(self, key: Any, value: Any) -> StoreRecord:
        """Persist ``value`` under ``key``; returns the entry record.

        Publication order is payload first, record second: the record's
        arrival is what makes the entry visible, so a reader that sees
        the record always finds a complete payload.
        """
        # Imported lazily: repro.api.session holds a store, so a
        # module-level import here would be circular.
        from repro.api.result import git_describe

        digest = store_digest(key)
        canonical = canonical_key(key)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = StoreRecord(
            digest=digest,
            format=STORE_FORMAT_VERSION,
            key=canonical,
            kind=str(canonical[0]) if canonical else "unknown",
            nbytes=len(blob),
            payload_digest=hashlib.blake2b(blob, digest_size=16).hexdigest(),
            git=git_describe(),
        )
        meta_path, payload_path = self._paths(digest)
        self._stage(blob, payload_path)
        self._stage(
            (json.dumps(record.to_dict(), indent=2) + "\n").encode(),
            meta_path,
        )
        self.counters["puts"] += 1
        tracer = current_tracer()
        if tracer is not None:
            tracer.count("store.puts")
            tracer.count("store.put_bytes", len(blob))
            tracer.point(
                "store.put",
                kind=record.kind,
                digest=digest,
                nbytes=len(blob),
            )
        return record

    # -- lookup ---------------------------------------------------------------
    def _read_record(self, meta_path: Path) -> StoreRecord | None:
        try:
            data = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        try:
            return StoreRecord(
                digest=data["digest"],
                format=data["format"],
                key=data["key"],
                kind=data["kind"],
                nbytes=data["nbytes"],
                payload_digest=data["payload_digest"],
                git=data.get("git"),
            )
        except KeyError:
            # A record missing required fields is by definition not
            # format-current: refuse it like any stale entry.
            return StoreRecord(
                digest=meta_path.stem,
                format=-1,
                key=data.get("key", []),
                kind=str(data.get("kind", "unknown")),
                nbytes=int(data.get("nbytes", 0)),
                payload_digest=str(data.get("payload_digest", "")),
                git=data.get("git"),
            )

    def contains(self, key: Any) -> bool:
        """Whether a *format-current, intact-looking* entry exists."""
        meta_path, payload_path = self._paths(store_digest(key))
        if not meta_path.exists():
            return False
        record = self._read_record(meta_path)
        return (
            record is not None
            and not record.stale
            and payload_path.exists()
        )

    def get(self, key: Any) -> Any:
        """Load the value stored under ``key``.

        Raises :class:`KeyError` on a miss.  Stale-format records and
        payloads whose content digest does not match their record are
        *refused* (counted, reported as misses) — never misread.
        Touches the entry's mtime, which is the LRU clock ``gc`` evicts
        by.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._get_impl(key)
        tracer.count("store.gets")
        try:
            value = self._get_impl(key)
        except KeyError:
            tracer.count("store.misses")
            raise
        tracer.count("store.hits")
        tracer.point("store.get", digest=store_digest(key))
        return value

    def _get_impl(self, key: Any) -> Any:
        digest = store_digest(key)
        meta_path, payload_path = self._paths(digest)
        self.counters["gets"] += 1
        record = (
            self._read_record(meta_path) if meta_path.exists() else None
        )
        if record is None:
            self.counters["misses"] += 1
            raise KeyError(digest)
        if record.stale:
            self.counters["stale_refused"] += 1
            self.counters["misses"] += 1
            raise KeyError(
                f"{digest}: stored with format {record.format}, this tree "
                f"reads format {STORE_FORMAT_VERSION} — entry refused "
                "(re-run without --resume benefits, or `repro store gc`)"
            )
        try:
            blob = payload_path.read_bytes()
        except OSError:
            self.counters["misses"] += 1
            raise KeyError(digest) from None
        if (
            len(blob) != record.nbytes
            or hashlib.blake2b(blob, digest_size=16).hexdigest()
            != record.payload_digest
        ):
            self.counters["misses"] += 1
            raise KeyError(
                f"{digest}: payload does not match its record "
                "(torn or foreign write) — entry refused"
            )
        value = pickle.loads(blob)
        now = None  # let the OS stamp current time
        os.utime(payload_path, now)
        os.utime(meta_path, now)
        self.counters["hits"] += 1
        return value

    # -- enumeration ----------------------------------------------------------
    def records(self) -> list[tuple[StoreRecord, int]]:
        """All entry records with their LRU stamp, least-recent first.

        The stamp is the record file's ``st_mtime_ns`` (touched on every
        ``get``); ties break on digest so the order is deterministic.
        """
        out = []
        # Sorted glob: REP104 — enumeration order must not depend on
        # directory order.
        for meta_path in sorted(self._entries.glob("*.json")):
            record = self._read_record(meta_path)
            if record is None:
                continue
            out.append((record, meta_path.stat().st_mtime_ns))
        out.sort(key=lambda pair: (pair[1], pair[0].digest))
        return out

    def staging_files(self) -> list[Path]:
        """Orphaned in-flight writes (debris of interrupted processes)."""
        return sorted(self._staging.glob(f"{STAGING_PREFIX}*"))

    def stats(self) -> dict:
        """Occupancy + counters (the ``repro store ls`` footer).

        ``format_version`` documents the record schema this tree reads —
        entries recorded under any other version are ``stale_entries``.
        """
        records = self.records()
        return {
            "format_version": STORE_FORMAT_VERSION,
            "entries": len(records),
            "bytes": sum(r.nbytes for r, _ in records),
            "stale_entries": sum(1 for r, _ in records if r.stale),
            "staging_files": len(self.staging_files()),
            **self.counters,
        }

    # -- removal + GC ---------------------------------------------------------
    def _remove_digest(self, digest: str) -> bool:
        meta_path, payload_path = self._paths(digest)
        removed = False
        for path in (meta_path, payload_path):
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                pass
        return removed

    def remove(self, key: Any) -> bool:
        """Remove the entry stored under ``key`` (False = not present)."""
        return self._remove_digest(store_digest(key))

    def remove_prefix(self, digest_prefix: str) -> list[str]:
        """Remove every entry whose digest starts with ``digest_prefix``."""
        removed = []
        for record, _ in self.records():
            if record.digest.startswith(digest_prefix):
                if self._remove_digest(record.digest):
                    removed.append(record.digest)
        return removed

    def gc(
        self,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> dict:
        """Evict to the budgets; purge staging debris.  Returns a report.

        Eviction policy: stale-format entries always go first (they can
        never be read again), then least-recently-used entries until
        both budgets hold.  ``None`` budgets are unbounded — ``gc()``
        with no arguments only clears stale entries and staging files.
        Must not run concurrently with a writer (see module docstring).
        """
        evicted: list[str] = []
        live: list[tuple[StoreRecord, int]] = []
        for record, stamp in self.records():
            if record.stale:
                self._remove_digest(record.digest)
                evicted.append(record.digest)
            else:
                live.append((record, stamp))
        total_bytes = sum(r.nbytes for r, _ in live)
        # ``live`` is least-recent first; evict from the front.
        index = 0
        while index < len(live) and (
            (max_entries is not None and len(live) - index > max_entries)
            or (max_bytes is not None and total_bytes > max_bytes)
        ):
            record, _ = live[index]
            self._remove_digest(record.digest)
            evicted.append(record.digest)
            total_bytes -= record.nbytes
            index += 1
        purged = []
        for path in self.staging_files():
            try:
                path.unlink()
                purged.append(path.name)
            except FileNotFoundError:  # pragma: no cover - racing unlink
                pass
        tracer = current_tracer()
        if tracer is not None:
            tracer.count("store.gc_evicted", len(evicted))
            tracer.point(
                "store.gc",
                evicted=len(evicted),
                staging_purged=len(purged),
                entries=len(live) - index,
            )
        return {
            "evicted": evicted,
            "staging_purged": purged,
            "entries": len(live) - index,
            "bytes": total_bytes,
        }

    # -- convenience ----------------------------------------------------------
    def find(self, kind: str | None = None) -> Iterable[StoreRecord]:
        """Records filtered by kind, least-recently-used first."""
        for record, _ in self.records():
            if kind is None or record.kind == kind:
                yield record
