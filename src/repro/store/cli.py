"""``repro store <ls|rm|gc>`` — inspect and maintain an artifact store.

Follows the repository's CLI conventions: ``--json`` writes a
machine-readable record, exit code 0 on success and 2 on usage errors.
Dispatch happens in :func:`repro.cli.main` before the spec-builder
parser runs, exactly like ``repro lint``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.results import Table
from repro.store.store import ArtifactStore

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="inspect/maintain a persistent artifact store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list entries (least-recently-used first)")
    ls.add_argument("root", help="store directory")
    ls.add_argument("--kind", default=None, help="filter by entry kind")
    ls.add_argument("--json", metavar="PATH", default=None)

    rm = sub.add_parser("rm", help="remove entries by digest prefix")
    rm.add_argument("root", help="store directory")
    rm.add_argument(
        "digests", nargs="*", help="digest prefixes of entries to remove"
    )
    rm.add_argument(
        "--all", action="store_true", help="remove every entry in the store"
    )

    gc = sub.add_parser(
        "gc",
        help="evict stale + least-recently-used entries, purge staging "
        "debris",
    )
    gc.add_argument("root", help="store directory")
    gc.add_argument(
        "--max-bytes", type=int, default=None,
        help="payload byte budget to evict down to (LRU order)",
    )
    gc.add_argument(
        "--max-entries", type=int, default=None,
        help="entry-count budget to evict down to (LRU order)",
    )
    gc.add_argument("--json", metavar="PATH", default=None)
    return parser


def _open_store(root: str) -> ArtifactStore | None:
    path = Path(root)
    if path.exists() and not path.is_dir():
        print(f"store error: {root} is not a directory", file=sys.stderr)
        return None
    return ArtifactStore(path)


def _cmd_ls(args: argparse.Namespace) -> int:
    store = _open_store(args.root)
    if store is None:
        return 2
    records = [
        record
        for record, _ in store.records()
        if args.kind is None or record.kind == args.kind
    ]
    table = Table(
        ["digest", "kind", "bytes", "format", "key"],
        title=f"artifact store {args.root}",
    )
    for record in records:
        suffix = " (stale)" if record.stale else ""
        table.add_row(
            record.digest[:12],
            record.kind,
            record.nbytes,
            f"{record.format}{suffix}",
            json.dumps(record.key)[:60],
        )
    print(table.render())
    stats = store.stats()
    print(
        f"{stats['entries']} entries, {stats['bytes']} bytes "
        f"({stats['stale_entries']} stale, "
        f"{stats['staging_files']} staging files)"
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "entries": [r.to_dict() for r in records],
                    "stats": stats,
                },
                indent=2,
            )
            + "\n"
        )
    return 0


def _cmd_rm(args: argparse.Namespace) -> int:
    if not args.digests and not args.all:
        print(
            "store error: rm needs digest prefixes or --all", file=sys.stderr
        )
        return 2
    store = _open_store(args.root)
    if store is None:
        return 2
    prefixes = [""] if args.all else args.digests
    removed: list[str] = []
    for prefix in prefixes:
        removed.extend(store.remove_prefix(prefix))
    print(f"removed {len(removed)} entries")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = _open_store(args.root)
    if store is None:
        return 2
    report = store.gc(max_bytes=args.max_bytes, max_entries=args.max_entries)
    print(
        f"evicted {len(report['evicted'])} entries, purged "
        f"{len(report['staging_purged'])} staging files; "
        f"{report['entries']} entries / {report['bytes']} bytes remain"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    return 0


_COMMANDS = {"ls": _cmd_ls, "rm": _cmd_rm, "gc": _cmd_gc}


def main(argv: list[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors already; normalize --help's 0.
        return int(exc.code or 0)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
