"""The batched + sharded training runtime (the training-side engine).

Every other execution surface of this reproduction — evaluation, strategy
sweeps, serving — runs on the engine's batched-rank design: fixed-width
vectorized ranks, per-unit spawned RNG streams keyed by stable identity,
and fixed-order reductions, which together make execution mode (scalar /
batched / sharded) a pure performance knob.  This module brings the last
layer, *training*, onto the same design and retires the per-frame
``JointTrainer._train_step`` loop.

:class:`TrainRunner` forms minibatches of teacher-forced frame pairs and
runs each as **one rank**:

* ``eventify`` vectorized over the stacked ``(B, H, W)`` frame pairs;
* the ROI predictor's batched forward/backward (its conv trunk is the
  row-independent GEMM introduced in PR 2);
* :meth:`~repro.training.joint.SoftROIMask.forward_batch` /
  ``backward_batch`` over the ``(B, 4)`` predicted boxes;
* one ViT forward/backward per minibatch;
* per-sample RNG streams for the cue dropout / cue dilation draws and the
  Bernoulli sampling masks, keyed ``[seed, TRAIN_STREAM_TAG, epoch,
  seq_index, t]`` and drawn in fixed sample order — what a sample draws
  never depends on which rank (or worker) it lands in.

Determinism contract (pinned by ``tests/training/``):

* ``batch_size=1`` reproduces the historical per-frame stepping bitwise
  (against a transcription of the retired loop under the per-sample
  stream semantics — the PR 1/2 convention for redefined streams);
* ``batch_size > 1`` is a **documented semantic change**: one Adam step
  per minibatch instead of per frame pair (``docs/training.md``);
* ``grad_accum=True`` is the data-parallel schedule: per-sequence
  gradient sums, reduced in fixed sequence order, one Adam step per
  epoch.  ``workers >= 2`` shards the per-sequence gradient passes over
  processes; because the reduction order is fixed and the streams are
  identity-keyed, **any** worker count produces bitwise-identical
  results to the in-process accumulation.
"""

from __future__ import annotations

import zlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn import Adam, CrossEntropyLoss, MSELoss, clip_grad_norm
from repro.obs.tracer import current_tracer
from repro.nn.functional import grey_dilation, grey_erosion
from repro.sampling.eventification import eventify
from repro.sampling.random_sampling import random_mask_in_box
from repro.sampling.roi import ROIPredictor, box_from_pixels, box_to_pixels
from repro.training.joint import (
    JointTrainConfig,
    JointTrainResult,
    SoftROIMask,
)
from repro.training.loop import TrainResult, batched

__all__ = [
    "TRAIN_STREAM_TAG",
    "TrainSample",
    "TrainRunner",
    "collect_frame_pairs",
    "sample_stream",
    "run_segmentation_epochs",
]

#: Namespaces the training streams away from every other consumer of the
#: same base seed (the serving runtime uses the analogous
#: ``SERVE_STREAM_TAG``).
TRAIN_STREAM_TAG = zlib.crc32(b"repro.training")


def sample_stream(
    seed: int, epoch: int, seq_index: int, t: int
) -> np.random.Generator:
    """The RNG stream of one training sample in one epoch.

    Keyed by stable identity — never by execution order — so the draws
    are invariant to minibatch composition, rank width and shard
    placement.  Fixed draw order within the stream: (1) cue dropout,
    (2) cue dilation (probability, radius, direction), (3) the Bernoulli
    sampling mask.
    """
    return np.random.default_rng([seed, TRAIN_STREAM_TAG, epoch, seq_index, t])


@dataclass
class TrainSample:
    """One teacher-forced frame pair of the joint procedure."""

    seq_index: int
    t: int
    prev_frame: np.ndarray
    frame: np.ndarray
    prev_seg: np.ndarray | None
    target_seg: np.ndarray
    gt_box: tuple | None


def _sequence_samples(seq_index: int, seq) -> list[TrainSample]:
    """The frame pairs of one sequence, in time order.

    Teacher forcing: the previous frame's ground-truth segmentation
    stands in for the host's fed-back map.
    """
    return [
        TrainSample(
            seq_index=seq_index,
            t=t,
            prev_frame=seq.frames[t - 1],
            frame=seq.frames[t],
            prev_seg=seq.segmentations[t - 1],
            target_seg=seq.segmentations[t],
            gt_box=seq.roi_boxes[t],
        )
        for t in range(1, len(seq))
    ]


def collect_frame_pairs(dataset, sequence_indices: Sequence[int]) -> list[TrainSample]:
    """All frame pairs of the given sequences, sequence-major."""
    samples: list[TrainSample] = []
    for seq_index in sequence_indices:
        samples.extend(_sequence_samples(seq_index, dataset[seq_index]))
    return samples


def _augmented_cue(
    sample: TrainSample, config: JointTrainConfig, rng: np.random.Generator
) -> np.ndarray | None:
    """Cue dropout / dilation augmentation for one sample.

    The draw order transcribes the retired per-frame loop exactly; the
    grey morphology is the numpy helper (:func:`repro.nn.functional.
    grey_dilation`), so the training hot path carries no scipy
    dependency.  Symmetric corruption makes the cue's *area*
    uninformative about the true box, forcing the predictor to take the
    extent from the event map and use the cue only for coarse
    localization.
    """
    prev_seg = sample.prev_seg
    if config.cue_dropout and rng.random() < config.cue_dropout:
        return None
    if (
        prev_seg is not None
        and config.cue_dilate_prob
        and rng.random() < config.cue_dilate_prob
    ):
        radius = int(rng.integers(1, config.cue_dilate_max_px + 1))
        size = 2 * radius + 1
        if rng.random() < 0.5:
            return grey_dilation(prev_seg, size)
        return grey_erosion(prev_seg, size)
    return prev_seg


def _rank_backward(
    roi_predictor,
    segmenter,
    config: JointTrainConfig,
    seed: int,
    epoch: int,
    batch: list[TrainSample],
    seg_loss,
    roi_loss,
    soft_mask: SoftROIMask,
    zero_grads: bool,
) -> tuple[float, float]:
    """One minibatch through the joint pipeline as a single rank.

    Leaves the parameter gradients of both networks populated (fresh
    when ``zero_grads``, accumulated on top of the existing ones
    otherwise) and returns ``(seg_loss, roi_loss)`` — the minibatch-mean
    segmentation cross entropy and the mean ROI regression error over
    the box-supervised samples (0.0 when none are).

    The op sequence transcribes the retired ``_train_step`` with the
    batch axis stacked; at ``B=1`` every kernel is bitwise-identical to
    the per-frame loop (the parity test pins this end to end).
    """
    height, width = batch[0].frame.shape
    prev_frames = np.stack([s.prev_frame for s in batch])
    frames = np.stack([s.frame for s in batch])
    targets = np.stack([s.target_seg for s in batch])

    # -- in-sensor stages: vectorized eventification + per-sample cues ----
    event_maps = eventify(prev_frames, frames)  # (B, H, W), elementwise
    streams = [
        sample_stream(seed, epoch, s.seq_index, s.t) for s in batch
    ]
    cues = [
        _augmented_cue(sample, config, rng)
        for sample, rng in zip(batch, streams)
    ]
    roi_in = np.concatenate(
        [
            ROIPredictor.make_input(event_maps[i], cues[i])
            for i in range(len(batch))
        ]
    )
    box_pred = roi_predictor(roi_in)  # (B, 4), sigmoid-activated

    # ROI regression loss against the ground-truth foreground boxes.
    # Blink frames (no GT box) get zero weight: no box supervision, zero
    # gradient, zero reported loss — as in the per-frame loop.
    gt_norm = np.zeros_like(box_pred)
    supervised = np.zeros((len(batch), 1))
    for i, sample in enumerate(batch):
        if sample.gt_box is not None:
            gt_norm[i] = box_from_pixels(sample.gt_box, height, width)
            supervised[i, 0] = 1.0
    roi_loss_val = roi_loss.forward(box_pred, gt_norm, mask=supervised)
    grad_box_mse = roi_loss.backward()

    # Hard sampling for the forward pass (what the sensor actually does),
    # drawn per sample from its own stream, in fixed sample order.
    bern = np.empty((len(batch), height, width), dtype=bool)
    for i, rng in enumerate(streams):
        pixel_box = box_to_pixels(box_pred[i], height, width)
        bern[i] = random_mask_in_box(
            (height, width), pixel_box, config.roi_sampling_rate, rng
        )

    # Soft relaxation for the backward path through sampling: one batched
    # mask rank over the (B, 4) boxes.
    soft = soft_mask.forward_batch(box_pred)
    eff_mask = bern * soft
    sparse = frames * eff_mask

    # -- off-sensor segmentation: one ViT forward/backward per rank -------
    logits = segmenter(sparse, eff_mask)
    seg_loss_val = seg_loss.forward(logits, targets)
    grad_logits = seg_loss.backward()

    if zero_grads:
        segmenter.zero_grad()
    grad_pix, grad_bit = segmenter.backward_to_input(grad_logits)

    # Chain rule into the soft mask, gradient-masked to sampled pixels
    # (the paper's explicit masking rule): bern zeroes unsampled pixels.
    grad_soft = (grad_pix * frames + grad_bit) * bern
    grad_box_seg = soft_mask.backward_batch(grad_soft)

    total_grad_box = grad_box_mse + config.seg_to_roi_weight * grad_box_seg
    if zero_grads:
        roi_predictor.zero_grad()
    roi_predictor.backward(total_grad_box)
    return seg_loss_val, float(roi_loss_val)


@dataclass
class _SequenceGrads:
    """One sequence's accumulated epoch contribution (the reduction atom
    of the data-parallel schedule — sequences are never split across
    shards, so any shard geometry reduces identically)."""

    seq_index: int
    roi_grads: list[np.ndarray]
    seg_grads: list[np.ndarray]
    seg_sum: float
    roi_sum: float
    ranks: int


def _sequence_gradients(
    roi_predictor,
    segmenter,
    config: JointTrainConfig,
    seed: int,
    epoch: int,
    seq_index: int,
    seq,
    seg_loss,
    roi_loss,
    soft_mask: SoftROIMask,
) -> _SequenceGrads:
    """Accumulate one sequence's gradients at the current weights.

    Ranks never span sequences here: each sequence's frame pairs are cut
    into ``batch_size`` minibatches and their gradients accumulate in
    rank order — a pure function of (weights, config, seed, epoch,
    sequence), which is what makes the per-sequence sums shard-placement
    invariant.
    """
    samples = _sequence_samples(seq_index, seq)
    roi_predictor.zero_grad()
    segmenter.zero_grad()
    seg_sum, roi_sum, ranks = 0.0, 0.0, 0
    for rank in batched(samples, config.batch_size):
        seg_l, roi_l = _rank_backward(
            roi_predictor,
            segmenter,
            config,
            seed,
            epoch,
            rank,
            seg_loss,
            roi_loss,
            soft_mask,
            zero_grads=False,
        )
        seg_sum += seg_l
        roi_sum += roi_l
        ranks += 1
    return _SequenceGrads(
        seq_index=seq_index,
        roi_grads=[p.grad.copy() for p in roi_predictor.parameters()],
        seg_grads=[p.grad.copy() for p in segmenter.parameters()],
        seg_sum=seg_sum,
        roi_sum=roi_sum,
        ranks=ranks,
    )


def _dataset_cache_key(dataset_type, dataset_cfg) -> tuple:
    """The worker-cache key of one rebuildable dataset.

    Keyed by the config's *content* (a digest of its pickle), not object
    identity: two runs shipping equal configs share one worker-side
    dataset, and any config change — however small — misses and
    rebuilds.
    """
    import hashlib
    import pickle as _pickle

    blob = _pickle.dumps(dataset_cfg, _pickle.HIGHEST_PROTOCOL)
    return (
        "train_dataset",
        dataset_type.__module__,
        dataset_type.__qualname__,
        hashlib.blake2b(blob, digest_size=16).hexdigest(),
    )


def _resolve_shard(shard_spec) -> list[tuple[int, object]]:
    """Materialize one shard's ``(seq_index, sequence)`` pairs in-worker.

    ``("rebuild", type, config, indices)`` re-renders the sequences from
    the dataset config — sequence ``i`` is a pure function of
    ``(config.seed, i)`` (the dataset's documented contract), so only
    the *indices* ship per epoch, not the frame data; the built dataset
    is cached across epochs (and runs) in the transport layer's keyed
    worker cache (:func:`repro.engine.transport.worker_cached` — the
    generalization of this module's historical single-slot cache), so a
    persistent pool serving interleaved configs keeps each one warm.
    ``("inline", pairs)`` is the fallback for datasets that cannot be
    rebuilt worker-side (no reconstructing ``config``, or sequences the
    parent already materialized and may have mutated).  Inline payloads
    re-ship each epoch: a process pool gives no worker affinity, so a
    once-only transfer could land on a worker that never cached it —
    rebuild mode is the fast path, inline the correctness fallback.
    """
    from repro.engine.transport import worker_cached

    if shard_spec[0] == "inline":
        return shard_spec[1]
    _, dataset_type, dataset_cfg, indices = shard_spec
    dataset = worker_cached(
        _dataset_cache_key(dataset_type, dataset_cfg),
        lambda: dataset_type(dataset_cfg),
    )
    return [(i, dataset[i]) for i in indices]


def _epoch_shard_job(
    roi_predictor,
    segmenter,
    config: JointTrainConfig,
    seed: int,
    epoch: int,
    shard_spec,
) -> list[_SequenceGrads]:
    """Worker-side entry point: per-sequence gradients for one shard.

    Module-level so the pool can pickle it; per epoch only the models
    (carrying the epoch-start weights) and the shard *spec* travel —
    sequence data is rebuilt worker-side from the dataset config (see
    :func:`_resolve_shard`).  Workers rebuild the canonical loss kernels
    — :meth:`TrainRunner.run` refuses to shard when non-canonical
    components were injected, so worker-side and in-process execution
    can never silently diverge.
    """
    seg_loss = CrossEntropyLoss()
    roi_loss = MSELoss()
    soft_mask = SoftROIMask(
        segmenter.config.height, segmenter.config.width, tau=config.tau
    )
    return [
        _sequence_gradients(
            roi_predictor,
            segmenter,
            config,
            seed,
            epoch,
            seq_index,
            seq,
            seg_loss,
            roi_loss,
            soft_mask,
        )
        for seq_index, seq in _resolve_shard(shard_spec)
    ]


def _epoch_shard_job_handles(models_handle, shard_handle, epoch: int):
    """Shared-memory worker entry: resolve handles, run the shard job.

    ``models_handle`` carries ``(roi_predictor, segmenter, config,
    seed)`` published per epoch into a slot (so epoch ``e``'s weights
    replace epoch ``e-1``'s segments); ``shard_handle`` carries the
    run-constant shard spec, published once and digest-cached
    worker-side, so steady-state epochs resolve it without touching the
    bytes again.  Weight arrays arrive as read-only views over the
    mapped segments; ``Parameter.__setstate__`` recreates writable
    gradient buffers, and workers never write ``.data`` — they only
    accumulate gradients — so read-only weights are exactly as safe as
    pickled copies.
    """
    from repro.engine.transport import resolve_payload

    roi_predictor, segmenter, config, seed = resolve_payload(models_handle)
    shard_spec = resolve_payload(shard_handle)
    return _epoch_shard_job(
        roi_predictor, segmenter, config, seed, epoch, shard_spec
    )


class TrainRunner:
    """Executes the joint training procedure in batched ranks.

    Parameters
    ----------
    roi_predictor, segmenter:
        The networks to train (mutated in place).
    config:
        The :class:`~repro.training.joint.JointTrainConfig`;
        ``batch_size`` sets the rank width / step granularity and
        ``grad_accum`` selects the data-parallel epoch schedule.
    rng:
        A generator (one integer is drawn from it to key the per-sample
        streams) or a plain integer seed.
    seg_loss, roi_loss, opt_seg, opt_roi, soft_mask:
        Injectable components, defaulting to the canonical ones; the
        :class:`~repro.training.joint.JointTrainer` front passes its own
        so callers can keep substituting them.
    """

    def __init__(
        self,
        roi_predictor,
        segmenter,
        config: JointTrainConfig,
        rng: np.random.Generator | int,
        *,
        seg_loss=None,
        roi_loss=None,
        opt_seg=None,
        opt_roi=None,
        soft_mask: SoftROIMask | None = None,
    ):
        self.roi_predictor = roi_predictor
        self.segmenter = segmenter
        self.config = config
        if isinstance(rng, np.random.Generator):
            #: One draw keys every per-sample stream (the spawn idiom:
            #: downstream streams derive from identity, not draw order).
            self.seed = int(rng.integers(2**63 - 1))
        else:
            self.seed = int(rng)
        self.seg_loss = seg_loss if seg_loss is not None else CrossEntropyLoss()
        self.roi_loss = roi_loss if roi_loss is not None else MSELoss()
        self.opt_seg = opt_seg or Adam(
            segmenter.parameters(), lr=config.lr_segmenter
        )
        self.opt_roi = opt_roi or Adam(
            roi_predictor.parameters(), lr=config.lr_roi
        )
        self.soft_mask = soft_mask or SoftROIMask(
            segmenter.config.height, segmenter.config.width, tau=config.tau
        )

    # -- the front door -----------------------------------------------------
    def run(
        self,
        dataset,
        sequence_indices: Sequence[int],
        *,
        workers: int | None = None,
        executor=None,
        transport=None,
    ) -> JointTrainResult:
        """Train over ``sequence_indices`` for ``config.epochs`` epochs.

        ``workers >= 2`` shards the data-parallel schedule's per-sequence
        gradient passes over worker processes (``executor`` injects an
        existing pool, e.g. a ``repro.api.Session``'s; otherwise a
        throwaway pool is forked per call).  Requires
        ``config.grad_accum`` — the stepped schedule updates weights
        every minibatch and is inherently sequential.  As with
        :meth:`~repro.engine.SequenceRunner.run`, the worker count is
        clamped to the sequence count: a single-sequence run stays
        in-process (same bits — workers never change results) even when
        an executor was injected.

        ``transport`` follows the engine runner's convention: ``None``
        opens a per-run shared-memory
        :class:`~repro.engine.transport.TransportChannel` (closed on
        return), a channel instance reuses a persistent one (e.g. a
        ``Session``'s), and ``False`` forces the plain-pickle dispatch
        path.  Results are bitwise-identical in every mode.
        """
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        n_workers = workers or 1
        if executor is not None and n_workers < 2:
            raise ValueError(
                "executor was injected but workers < 2 would run in-process "
                "and silently ignore it; pass workers >= 2 to shard"
            )
        if n_workers >= 2 and not self.config.grad_accum:
            raise ValueError(
                "sharded training requires grad_accum=True: the stepped "
                "schedule takes an Adam step per minibatch, which is "
                "inherently sequential; the data-parallel schedule "
                "accumulates per-sequence gradients (fixed reduction "
                "order) and steps once per epoch"
            )
        if n_workers >= 2 and not self._components_canonical():
            # Workers rebuild the canonical kernels (custom objects
            # generally do not pickle); silently diverging from the
            # in-process run would break the worker-count-neutrality
            # contract, so refuse instead.
            raise ValueError(
                "sharded training runs the canonical loss / soft-mask "
                "kernels in worker processes; substituted components "
                "would be silently ignored there — train in-process "
                "(workers=1) or drop the substitution"
            )
        indices = list(sequence_indices)
        self.segmenter.train()
        self.roi_predictor.train()
        return self._execute(dataset, indices, n_workers, executor, transport)

    def _components_canonical(self) -> bool:
        """Whether workers would rebuild exactly the components in use.

        ``_epoch_shard_job`` reconstructs the losses and soft mask from
        the config, so sharding is only allowed when the in-process
        instances are the canonical types *and* the soft mask carries
        the config's parameters (a canonical-type mask with a different
        ``tau`` or geometry would still diverge silently).
        """
        c = self.segmenter.config
        return (
            type(self.seg_loss) is CrossEntropyLoss
            and type(self.roi_loss) is MSELoss
            and type(self.soft_mask) is SoftROIMask
            and self.soft_mask.tau == self.config.tau
            and len(self.soft_mask._rows) == c.height
            and len(self.soft_mask._cols) == c.width
        )

    def _execute(
        self, dataset, indices: list[int], n_workers: int, executor, transport
    ) -> JointTrainResult:
        """Dispatch to the configured schedule; restore eval mode."""
        try:
            if self.config.grad_accum:
                result = self._run_accumulated(
                    dataset, indices, n_workers, executor, transport
                )
            else:
                result = self._run_stepped(
                    collect_frame_pairs(dataset, indices)
                )
        finally:
            self.segmenter.eval()
            self.roi_predictor.eval()
        return result

    # -- stepped schedule (legacy semantics at batch_size=1) ------------------
    def _run_stepped(self, samples: list[TrainSample]) -> JointTrainResult:
        """One Adam step per minibatch, minibatches cut sequence-major."""
        cfg = self.config
        result = JointTrainResult()
        tracer = current_tracer()
        for epoch in range(cfg.epochs):
            epoch_span = (
                tracer.span(
                    "train.epoch",
                    epoch=epoch,
                    schedule="stepped",
                    samples=len(samples),
                )
                if tracer is not None
                else nullcontext()
            )
            if tracer is not None:
                tracer.count("train.epochs")
            with epoch_span:
                self._stepped_epoch(samples, epoch, result)
        return result

    def _stepped_epoch(
        self, samples: list[TrainSample], epoch: int, result: JointTrainResult
    ) -> None:
        cfg = self.config
        seg_total, roi_total, steps = 0.0, 0.0, 0
        for rank in batched(samples, cfg.batch_size):
            seg_l, roi_l = _rank_backward(
                self.roi_predictor,
                self.segmenter,
                cfg,
                self.seed,
                epoch,
                rank,
                self.seg_loss,
                self.roi_loss,
                self.soft_mask,
                zero_grads=True,
            )
            clip_grad_norm(self.roi_predictor.parameters(), cfg.grad_clip)
            clip_grad_norm(self.segmenter.parameters(), cfg.grad_clip)
            self.opt_roi.step()
            self.opt_seg.step()
            seg_total += seg_l
            roi_total += roi_l
            steps += 1
        result.seg_losses.append(seg_total / max(steps, 1))
        result.roi_losses.append(roi_total / max(steps, 1))

    # -- data-parallel schedule (grad_accum) ----------------------------------
    def _run_accumulated(
        self,
        dataset,
        indices: list[int],
        workers: int,
        executor,
        transport,
    ) -> JointTrainResult:
        """One Adam step per epoch over fixed-order per-sequence sums."""
        from repro.engine import contiguous_shards, shard_executor
        from repro.engine.transport import TransportChannel

        cfg = self.config
        n_workers = min(workers, len(indices))
        result = JointTrainResult()
        roi_params = self.roi_predictor.parameters()
        seg_params = self.segmenter.parameters()
        # Shard *specs* are fixed for the whole run; sharded rebuild mode
        # never renders the training sequences in the parent at all.
        shard_specs = (
            [
                self._shard_spec(dataset, shard)
                for shard in contiguous_shards(indices, n_workers)
            ]
            if n_workers >= 2
            else None
        )
        # Shared-memory transport for the shard dispatches: a channel
        # instance is reused (persistent Session channel), ``None`` opens
        # a per-run channel, ``False`` keeps plain-pickle dispatch.
        own_channel = None
        channel = None
        if n_workers >= 2 and transport is not False:
            if isinstance(transport, TransportChannel):
                channel = transport
            else:
                own_channel = channel = TransportChannel()
        # The run-constant shard specs ship once, into slots a later
        # training run on the same channel will recycle.  Published
        # before the throwaway pool forks so its workers inherit the
        # mappings instead of re-attaching.
        shard_handles = (
            [
                channel.publish(spec, slot=("train_shard", i))
                for i, spec in enumerate(shard_specs)
            ]
            if channel is not None
            else None
        )
        # One throwaway pool per *run* (not per epoch) when no executor
        # was injected.
        pool = (
            shard_executor(n_workers)
            if n_workers >= 2 and executor is None
            else None
        )
        tracer = current_tracer()
        try:
            for epoch in range(cfg.epochs):
                epoch_span = (
                    tracer.span(
                        "train.epoch",
                        epoch=epoch,
                        schedule="accumulated",
                        sequences=len(indices),
                        workers=n_workers,
                    )
                    if tracer is not None
                    else nullcontext()
                )
                if tracer is not None:
                    tracer.count("train.epochs")
                with epoch_span:
                    self._accumulate_epoch(
                        dataset, indices, shard_specs, shard_handles, channel,
                        epoch, n_workers, executor or pool, roi_params,
                        seg_params, result,
                    )
        finally:
            if pool is not None:
                pool.shutdown()
            if own_channel is not None:
                own_channel.close()
        return result

    @staticmethod
    def _shard_spec(dataset, shard_indices: list[int]):
        """What one worker needs to materialize its shard.

        With a config-reconstructible dataset only the *indices* ship
        each epoch — sequences re-render worker-side from
        ``(config.seed, index)``, the dataset's determinism contract
        (the same idiom the strategy-sweep fan-out uses).  The
        reconstruction is probed here (dataset constructors are lazy, so
        the probe renders nothing), and rebuild mode is only used when
        the parent has not yet materialized any of the shard's sequences
        — a caller-side mutation requires a materialized sequence, so
        re-rendering can never silently diverge from what the in-process
        path would train on.  Everything else ships the frame data
        inline.
        """
        config = getattr(dataset, "config", None)
        materialized = getattr(dataset, "is_materialized", None)
        pristine = materialized is not None and not any(
            materialized(i) for i in shard_indices
        )
        if config is not None and pristine:
            try:
                type(dataset)(config)
            except Exception:
                pass
            else:
                return ("rebuild", type(dataset), config, shard_indices)
        return ("inline", [(i, dataset[i]) for i in shard_indices])

    def _accumulate_epoch(
        self,
        dataset,
        indices: list[int],
        shard_specs: list | None,
        shard_handles: list | None,
        channel,
        epoch: int,
        workers: int,
        executor,
        roi_params,
        seg_params,
        result: JointTrainResult,
    ) -> None:
        """One data-parallel epoch: reduce per-sequence sums, step once."""
        cfg = self.config
        if workers >= 2:
            per_seq = self._sharded_epoch(
                shard_specs, shard_handles, channel, epoch, executor
            )
        else:
            # Lazy in-process generation: only one sequence's gradient
            # copies are alive at a time — the reduction below consumes
            # them in the same fixed sequence order either way.
            per_seq = (
                _sequence_gradients(
                    self.roi_predictor,
                    self.segmenter,
                    cfg,
                    self.seed,
                    epoch,
                    seq_index,
                    dataset[seq_index],
                    self.seg_loss,
                    self.roi_loss,
                    self.soft_mask,
                )
                for seq_index in indices
            )
        # Fixed-order reduction: per-sequence sums added in sequence
        # order — the bits cannot depend on which worker computed
        # which shard (or on the worker count at all).
        roi_total = [np.zeros_like(p.data) for p in roi_params]
        seg_total = [np.zeros_like(p.data) for p in seg_params]
        seg_sum, roi_sum, ranks = 0.0, 0.0, 0
        for grads in per_seq:
            for acc, grad in zip(roi_total, grads.roi_grads):
                acc += grad
            for acc, grad in zip(seg_total, grads.seg_grads):
                acc += grad
            seg_sum += grads.seg_sum
            roi_sum += grads.roi_sum
            ranks += grads.ranks
        if ranks == 0:
            # No frame pairs at all (empty indices / single-frame
            # sequences): no gradient, so no optimizer step — a warm
            # Adam would otherwise move the weights on pure momentum,
            # which the stepped schedule (and the retired loop) never
            # did for empty input.
            result.seg_losses.append(0.0)
            result.roi_losses.append(0.0)
            return
        scale = 1.0 / ranks
        for param, grad in zip(roi_params, roi_total):
            param.grad[...] = grad * scale
        for param, grad in zip(seg_params, seg_total):
            param.grad[...] = grad * scale
        clip_grad_norm(roi_params, cfg.grad_clip)
        clip_grad_norm(seg_params, cfg.grad_clip)
        self.opt_roi.step()
        self.opt_seg.step()
        result.seg_losses.append(seg_sum / ranks)
        result.roi_losses.append(roi_sum / ranks)

    def _sharded_epoch(
        self, shard_specs: list, shard_handles: list | None, channel,
        epoch: int, executor,
    ):
        """Per-sequence gradients of one epoch, sharded over processes.

        Contiguous shards of whole sequences onto ``executor`` (the
        caller's injected pool, or the one ``_run_accumulated`` opened
        for the whole run); the models ship with each task carrying the
        epoch-start weights (gradient buffers are stripped by
        ``Parameter.__getstate__``).  With a transport channel the
        epoch-start weights are published into the ``"train_models"``
        slot — each epoch's segments *replace* the previous epoch's
        (safe: every epoch-``e`` task completes before epoch ``e+1``
        publishes) — and each dispatch ships two tiny handles instead of
        the models + shard payload.  Yields shard results in shard order
        — exact sequence order for the parent-side reduction.  Peak
        parent-side memory is bounded by the worker count: shards that
        finish early sit buffered in their futures until the in-order
        reduction reaches them.
        """
        if channel is not None:
            models_handle = channel.publish(
                (self.roi_predictor, self.segmenter, self.config, self.seed),
                slot="train_models",
            )
            futures = [
                executor.submit(
                    _epoch_shard_job_handles, models_handle, shard_handle,
                    epoch,
                )
                for shard_handle in shard_handles
            ]
        else:
            futures = [
                executor.submit(
                    _epoch_shard_job,
                    self.roi_predictor,
                    self.segmenter,
                    self.config,
                    self.seed,
                    epoch,
                    shard_spec,
                )
                for shard_spec in shard_specs
            ]
        tracer = current_tracer()
        if tracer is not None:
            tracer.count("train.shard_dispatches", len(futures))
        for future in futures:
            yield from future.result()


# -- generic segmentation training (the train_segmentation backend) ----------
def run_segmentation_epochs(
    model,
    samples: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    epochs: int,
    rng: np.random.Generator,
    lr: float,
    batch_size: int,
    grad_clip: float,
    supervise_sampled_only: bool,
) -> TrainResult:
    """The minibatched epoch loop behind :func:`repro.training.loop.
    train_segmentation`.

    Already a batched-rank computation (one model forward/backward per
    minibatch); it lives here so every training schedule — joint and
    plain segmentation alike — executes in the runtime layer.  The
    numerics are an exact transplant of the historical loop: same
    shuffle draws, same stacking, same step order, bitwise-identical
    results.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1: {epochs}")
    if not samples:
        raise ValueError("no training samples")
    loss_fn = CrossEntropyLoss()
    optimizer = Adam(model.parameters(), lr=lr)
    result = TrainResult()
    order = np.arange(len(samples))
    model.train()
    tracer = current_tracer()
    for epoch in range(epochs):
        epoch_span = (
            tracer.span(
                "train.epoch",
                epoch=epoch,
                schedule="segmentation",
                samples=len(samples),
            )
            if tracer is not None
            else nullcontext()
        )
        if tracer is not None:
            tracer.count("train.epochs")
        with epoch_span:
            rng.shuffle(order)
            epoch_loss = 0.0
            num_batches = 0
            for batch_idx in batched(list(order), batch_size):
                frames = np.stack([samples[i][0] for i in batch_idx])
                masks = np.stack([samples[i][1] for i in batch_idx])
                targets = np.stack([samples[i][2] for i in batch_idx])
                logits = model(frames, masks)
                loss_mask = masks if supervise_sampled_only else None
                loss = loss_fn.forward(logits, targets, mask=loss_mask)
                model.zero_grad()
                model.backward(loss_fn.backward())
                clip_grad_norm(model.parameters(), grad_clip)
                optimizer.step()
                epoch_loss += loss
                num_batches += 1
            result.epoch_losses.append(epoch_loss / num_batches)
    model.eval()
    return result
