"""Generic training utilities for segmentation networks.

:func:`train_segmentation` trains any of the three segmenters (ViT,
RITnet, EdGaze — they share the ``forward(frames, masks)`` /
``backward(grad)`` interface) on a list of ``(frame, mask, target)``
samples.  Used for the baseline (non-joint) experiments and the ablation
benchmarks; the paper's full joint procedure lives in
:mod:`repro.training.joint`.

This module is the thin validating front: execution lives in
:func:`repro.training.runtime.run_segmentation_epochs`, next to the
joint :class:`~repro.training.runtime.TrainRunner`, so every training
schedule runs in the runtime layer (bitwise-identical to the historical
in-place loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrainResult", "train_segmentation", "batched"]


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        return len(self.epoch_losses) >= 2 and (
            self.epoch_losses[-1] < self.epoch_losses[0]
        )


def batched(items: list, batch_size: int):
    """Yield consecutive chunks of at most ``batch_size`` items."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1: {batch_size}")
    for start in range(0, len(items), batch_size):
        yield items[start : start + batch_size]


def train_segmentation(
    model,
    samples: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    epochs: int,
    rng: np.random.Generator,
    lr: float = 3e-3,
    batch_size: int = 4,
    grad_clip: float = 5.0,
    supervise_sampled_only: bool = False,
) -> TrainResult:
    """Train a segmenter on ``(frame, mask, target)`` samples.

    Parameters
    ----------
    model:
        A module with ``forward(frames, masks) -> (B, H, W, K)`` logits.
    samples:
        Each element is ``(frame (H, W), sampling_mask (H, W) bool,
        target (H, W) int)``.
    supervise_sampled_only:
        When True, the cross-entropy is restricted to sampled pixels
        (gradient masking).  The default supervises the full map, teaching
        the network to in-paint labels for unsampled pixels.
    """
    # Imported lazily: the runtime imports this module for TrainResult /
    # batched.  Input validation lives with the execution (the runtime
    # is public surface too).
    from repro.training.runtime import run_segmentation_epochs

    return run_segmentation_epochs(
        model,
        samples,
        epochs=epochs,
        rng=rng,
        lr=lr,
        batch_size=batch_size,
        grad_clip=grad_clip,
        supervise_sampled_only=supervise_sampled_only,
    )
