"""Generic training utilities for segmentation networks.

:func:`train_segmentation` trains any of the three segmenters (ViT,
RITnet, EdGaze — they share the ``forward(frames, masks)`` /
``backward(grad)`` interface) on a list of ``(frame, mask, target)``
samples.  Used for the baseline (non-joint) experiments and the ablation
benchmarks; the paper's full joint procedure lives in
:mod:`repro.training.joint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import Adam, CrossEntropyLoss, clip_grad_norm

__all__ = ["TrainResult", "train_segmentation", "batched"]


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        return len(self.epoch_losses) >= 2 and (
            self.epoch_losses[-1] < self.epoch_losses[0]
        )


def batched(items: list, batch_size: int):
    """Yield consecutive chunks of at most ``batch_size`` items."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1: {batch_size}")
    for start in range(0, len(items), batch_size):
        yield items[start : start + batch_size]


def train_segmentation(
    model,
    samples: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    epochs: int,
    rng: np.random.Generator,
    lr: float = 3e-3,
    batch_size: int = 4,
    grad_clip: float = 5.0,
    supervise_sampled_only: bool = False,
) -> TrainResult:
    """Train a segmenter on ``(frame, mask, target)`` samples.

    Parameters
    ----------
    model:
        A module with ``forward(frames, masks) -> (B, H, W, K)`` logits.
    samples:
        Each element is ``(frame (H, W), sampling_mask (H, W) bool,
        target (H, W) int)``.
    supervise_sampled_only:
        When True, the cross-entropy is restricted to sampled pixels
        (gradient masking).  The default supervises the full map, teaching
        the network to in-paint labels for unsampled pixels.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1: {epochs}")
    if not samples:
        raise ValueError("no training samples")
    loss_fn = CrossEntropyLoss()
    optimizer = Adam(model.parameters(), lr=lr)
    result = TrainResult()
    order = np.arange(len(samples))
    model.train()
    for _ in range(epochs):
        rng.shuffle(order)
        epoch_loss = 0.0
        num_batches = 0
        for batch_idx in batched(list(order), batch_size):
            frames = np.stack([samples[i][0] for i in batch_idx])
            masks = np.stack([samples[i][1] for i in batch_idx])
            targets = np.stack([samples[i][2] for i in batch_idx])
            logits = model(frames, masks)
            loss_mask = masks if supervise_sampled_only else None
            loss = loss_fn.forward(logits, targets, mask=loss_mask)
            model.zero_grad()
            model.backward(loss_fn.backward())
            clip_grad_norm(model.parameters(), grad_clip)
            optimizer.step()
            epoch_loss += loss
            num_batches += 1
        result.epoch_losses.append(epoch_loss / num_batches)
    model.eval()
    return result
