"""Joint training of the ROI predictor and the sparse ViT (Sec. III-C).

Two loss terms drive the end-to-end pipeline:

* **segmentation loss** — cross entropy on the ViT's output;
* **ROI loss** — mean-squared error between the predicted and ground-truth
  normalized ROI boxes.

The segmentation loss back-propagates into the ROI predictor *through the
sampling stage*.  Sampling is a hard, discrete operation, so — like the
paper — we use an approximate differentiable relaxation: the predicted box
is rendered as a **soft ROI mask** (a product of sigmoid edges) that
multiplies both the pixel values and the mask channel the ViT consumes.
The gradient of the segmentation loss w.r.t. the soft mask is then chained
analytically to the four box coordinates.

Gradient masking (the paper's explicit rule): only gradients at pixels
*selected by the random sampling* flow back into the ROI predictor; the
Bernoulli mask multiplies the chain, zeroing everything else.

Execution lives in :mod:`repro.training.runtime`: :class:`JointTrainer`
is the classic front (build the losses/optimizers once, call
:meth:`JointTrainer.train`), but the per-frame stepping loop it used to
carry was retired in favour of the batched-rank :class:`~repro.training.
runtime.TrainRunner`, which also runs minibatched (``batch_size > 1``)
and sharded (``grad_accum`` + ``workers >= 2``) schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import Adam, CrossEntropyLoss, MSELoss
from repro.sampling.roi import ROIPredictor
from repro.segmentation.vit import ViTSegmenter
from repro.synth.dataset import SyntheticEyeDataset

__all__ = ["SoftROIMask", "JointTrainer", "JointTrainConfig", "JointTrainResult"]


class SoftROIMask:
    """Differentiable rectangle: product of four sigmoid edges.

    ``m(r, c) = s((r - r0)/tau) * s((r1 - r)/tau) * s((c - c0)/tau) *
    s((c1 - c)/tau)`` over normalized coordinates, where ``s`` is the
    logistic function and ``tau`` the edge softness.  As ``tau -> 0`` this
    approaches the hard box indicator; gradients w.r.t. the box corners
    are analytic.

    :meth:`forward`/:meth:`backward` handle one box; the training
    runtime's batched ranks use :meth:`forward_batch`/
    :meth:`backward_batch` over ``(B, 4)`` boxes — elementwise over the
    stacked batch, so each row's mask and gradient are bitwise identical
    to the scalar methods (pinned by the batch-invariance tests).
    """

    def __init__(self, height: int, width: int, tau: float = 0.05):
        if tau <= 0:
            raise ValueError(f"tau must be positive: {tau}")
        self.tau = tau
        # Normalized pixel-centre coordinates (fractions of each dimension).
        self._rows = (np.arange(height) + 0.5) / height
        self._cols = (np.arange(width) + 0.5) / width

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def forward(self, box: np.ndarray) -> np.ndarray:
        """Box (r0, c0, r1, c1) -> soft mask (H, W)."""
        r0, c0, r1, c1 = box
        tau = self.tau
        self._sr0 = self._sigmoid((self._rows - r0) / tau)
        self._sr1 = self._sigmoid((r1 - self._rows) / tau)
        self._sc0 = self._sigmoid((self._cols - c0) / tau)
        self._sc1 = self._sigmoid((c1 - self._cols) / tau)
        self._row_term = self._sr0 * self._sr1  # (H,)
        self._col_term = self._sc0 * self._sc1  # (W,)
        return np.outer(self._row_term, self._col_term)

    def backward(self, grad_mask: np.ndarray) -> np.ndarray:
        """Gradient of a scalar loss w.r.t. the four box coordinates."""
        tau = self.tau
        # d sigmoid(u)/du = s(1-s); chain through the signs of the edges.
        d_sr0 = -self._sr0 * (1 - self._sr0) / tau  # d/d r0
        d_sr1 = self._sr1 * (1 - self._sr1) / tau  # d/d r1
        d_sc0 = -self._sc0 * (1 - self._sc0) / tau  # d/d c0
        d_sc1 = self._sc1 * (1 - self._sc1) / tau  # d/d c1
        row_dot = grad_mask @ self._col_term  # (H,)
        col_dot = grad_mask.T @ self._row_term  # (W,)
        return np.array(
            [
                float(np.sum(row_dot * d_sr0 * self._sr1)),
                float(np.sum(col_dot * d_sc0 * self._sc1)),
                float(np.sum(row_dot * d_sr1 * self._sr0)),
                float(np.sum(col_dot * d_sc1 * self._sc0)),
            ]
        )

    def forward_batch(self, boxes: np.ndarray) -> np.ndarray:
        """Boxes ``(B, 4)`` -> soft masks ``(B, H, W)`` in one rank.

        Every operation is elementwise over the stacked batch (broadcast
        subtraction, the piecewise sigmoid, per-row outer products), so
        row ``b`` equals ``forward(boxes[b])`` bitwise.
        """
        r0 = boxes[:, 0:1]
        c0 = boxes[:, 1:2]
        r1 = boxes[:, 2:3]
        c1 = boxes[:, 3:4]
        tau = self.tau
        self._b_sr0 = self._sigmoid((self._rows[None, :] - r0) / tau)  # (B, H)
        self._b_sr1 = self._sigmoid((r1 - self._rows[None, :]) / tau)
        self._b_sc0 = self._sigmoid((self._cols[None, :] - c0) / tau)  # (B, W)
        self._b_sc1 = self._sigmoid((c1 - self._cols[None, :]) / tau)
        self._b_row = self._b_sr0 * self._b_sr1  # (B, H)
        self._b_col = self._b_sc0 * self._b_sc1  # (B, W)
        return self._b_row[:, :, None] * self._b_col[:, None, :]

    def backward_batch(self, grad_masks: np.ndarray) -> np.ndarray:
        """Mask gradients ``(B, H, W)`` -> box gradients ``(B, 4)``.

        The per-sample reductions (mask @ col_term, the edge sums) run as
        stacked matvecs / per-row sums with the same inner shapes as
        :meth:`backward`, so each row is bitwise-equal to the scalar path.
        """
        tau = self.tau
        d_sr0 = -self._b_sr0 * (1 - self._b_sr0) / tau
        d_sr1 = self._b_sr1 * (1 - self._b_sr1) / tau
        d_sc0 = -self._b_sc0 * (1 - self._b_sc0) / tau
        d_sc1 = self._b_sc1 * (1 - self._b_sc1) / tau
        # (B, H, W) @ (B, W, 1) -> (B, H): one matvec per sample, same
        # inner shape as the scalar backward's `grad_mask @ col_term`.
        row_dot = np.matmul(grad_masks, self._b_col[:, :, None])[:, :, 0]
        col_dot = np.matmul(
            grad_masks.transpose(0, 2, 1), self._b_row[:, :, None]
        )[:, :, 0]
        return np.stack(
            [
                np.sum(row_dot * d_sr0 * self._b_sr1, axis=1),
                np.sum(col_dot * d_sc0 * self._b_sc1, axis=1),
                np.sum(row_dot * d_sr1 * self._b_sr0, axis=1),
                np.sum(col_dot * d_sc1 * self._b_sc0, axis=1),
            ],
            axis=1,
        )


def _check(field_name: str, ok: bool, constraint: str) -> None:
    if not ok:
        raise ValueError(f"joint.{field_name}: must be {constraint}")


@dataclass(frozen=True)
class JointTrainConfig:
    """Hyper-parameters of the joint procedure.

    The paper trains segmentation for 250 epochs at batch size 4 and the
    ROI network for 100 epochs at batch size 8; the defaults here are CI
    scale and flow through identical code.

    Validation is eager and names the bad field (``joint.epochs: must be
    >= 1``), mirroring the spec's error style, so a bad config fails at
    construction rather than deep inside an epoch.
    """

    epochs: int = 2
    lr_segmenter: float = 3e-3
    lr_roi: float = 1e-3
    #: In-ROI random sampling rate (paper: ~20 % of ROI pixels).
    roi_sampling_rate: float = 0.2
    #: Weight of the segmentation gradient flowing into the ROI predictor.
    seg_to_roi_weight: float = 0.1
    grad_clip: float = 5.0
    #: Soft-mask edge softness for the differentiable relaxation.
    tau: float = 0.05
    #: Probability of hiding the previous-segmentation cue during training.
    #: At run time the fed-back map is missing on the first frame and noisy
    #: early on; dropping the cue randomly keeps the ROI predictor robust
    #: to that distribution shift (same spirit as the paper's blink/saccade
    #: robustness argument for the cue itself).
    cue_dropout: float = 0.4
    #: Probability of *dilating* the cue's foreground during training, and
    #: the maximum dilation radius (pixels).  At run time the fed-back map
    #: comes from the sparse segmenter, which over-predicts foreground
    #: across the sampled region; without this augmentation the predictor
    #: learns "box = bounding box of the cue" and enters a positive
    #: feedback loop where each frame's box inflates the next (the box
    #: ratchet).  Training on inflated cues teaches it to trust the event
    #: map for the tight extent.
    cue_dilate_prob: float = 0.5
    cue_dilate_max_px: int = 4
    #: Frame pairs per training rank *and* per optimizer step.  1 is the
    #: paper-faithful per-frame stepping; > 1 runs each minibatch as one
    #: vectorized rank with one Adam step per minibatch — a documented
    #: semantic change (see ``docs/training.md``).
    batch_size: int = 1
    #: Switch to the data-parallel schedule: gradients accumulate over
    #: every rank of an epoch (reduced per sequence, in fixed sequence
    #: order) and each epoch takes *one* Adam step.  Required for
    #: sharded training (``workers >= 2``); the worker count itself
    #: never changes the result.
    grad_accum: bool = False

    def __post_init__(self):
        _check("epochs", self.epochs >= 1, ">= 1")
        _check("lr_segmenter", self.lr_segmenter > 0, "> 0")
        _check("lr_roi", self.lr_roi > 0, "> 0")
        _check(
            "roi_sampling_rate",
            0.0 < self.roi_sampling_rate <= 1.0,
            "in (0, 1]",
        )
        _check("seg_to_roi_weight", self.seg_to_roi_weight >= 0, ">= 0")
        _check("grad_clip", self.grad_clip > 0, "> 0")
        _check("tau", self.tau > 0, "> 0")
        _check("cue_dropout", 0.0 <= self.cue_dropout <= 1.0, "in [0, 1]")
        _check(
            "cue_dilate_prob", 0.0 <= self.cue_dilate_prob <= 1.0, "in [0, 1]"
        )
        _check("cue_dilate_max_px", self.cue_dilate_max_px >= 1, ">= 1")
        _check("batch_size", self.batch_size >= 1, ">= 1")


@dataclass
class JointTrainResult:
    seg_losses: list[float] = field(default_factory=list)
    roi_losses: list[float] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        """Whether the *joint* procedure made progress.

        Both trajectories count: the segmentation loss must have dropped
        and the ROI regression loss must not have regressed — a run that
        trades ROI accuracy for segmentation gains is not an improvement
        of the joint objective (the box feeds the sampler that the
        segmenter depends on at run time).
        """
        if len(self.seg_losses) < 2:
            return False
        seg_improved = self.seg_losses[-1] < self.seg_losses[0]
        roi_held = (
            len(self.roi_losses) < 2
            or self.roi_losses[-1] <= self.roi_losses[0]
        )
        return seg_improved and roi_held


class JointTrainer:
    """Trains the ROI predictor and sparse ViT end to end.

    A thin front over :class:`repro.training.runtime.TrainRunner`: this
    class owns the losses, optimizers and soft mask (so callers can
    inspect or substitute them before training) and delegates execution
    — minibatch formation, the batched rank kernels, the optimizer
    schedule and optional sharding — to the runtime.
    """

    def __init__(
        self,
        roi_predictor: ROIPredictor,
        segmenter: ViTSegmenter,
        config: JointTrainConfig,
        rng: np.random.Generator,
    ):
        self.roi_predictor = roi_predictor
        self.segmenter = segmenter
        self.config = config
        self.rng = rng
        self.seg_loss = CrossEntropyLoss()
        self.roi_loss = MSELoss()
        self.opt_seg = Adam(segmenter.parameters(), lr=config.lr_segmenter)
        self.opt_roi = Adam(roi_predictor.parameters(), lr=config.lr_roi)
        self.soft_mask = SoftROIMask(
            segmenter.config.height, segmenter.config.width, tau=config.tau
        )

    def train(
        self,
        dataset: SyntheticEyeDataset,
        sequence_indices: list[int],
        workers: int | None = None,
        executor=None,
        transport=None,
    ) -> JointTrainResult:
        """Run ``config.epochs`` passes over the given sequences.

        ``workers >= 2`` shards the epoch's per-sequence gradient passes
        over worker processes (requires ``config.grad_accum``; see
        :meth:`repro.training.runtime.TrainRunner.run`); ``executor``
        reuses an existing pool (e.g. a ``repro.api.Session``'s) and
        ``transport`` a shared-memory channel (``False`` forces plain
        pickle) — both bitwise-neutral.
        """
        # Imported here: the runtime imports this module for the config/
        # result/soft-mask types.
        from repro.training.runtime import TrainRunner

        runner = TrainRunner(
            self.roi_predictor,
            self.segmenter,
            self.config,
            self.rng,
            seg_loss=self.seg_loss,
            roi_loss=self.roi_loss,
            opt_seg=self.opt_seg,
            opt_roi=self.opt_roi,
            soft_mask=self.soft_mask,
        )
        return runner.run(
            dataset,
            sequence_indices,
            workers=workers,
            executor=executor,
            transport=transport,
        )
