"""Joint training of the ROI predictor and the sparse ViT (Sec. III-C).

Two loss terms drive the end-to-end pipeline:

* **segmentation loss** — cross entropy on the ViT's output;
* **ROI loss** — mean-squared error between the predicted and ground-truth
  normalized ROI boxes.

The segmentation loss back-propagates into the ROI predictor *through the
sampling stage*.  Sampling is a hard, discrete operation, so — like the
paper — we use an approximate differentiable relaxation: the predicted box
is rendered as a **soft ROI mask** (a product of sigmoid edges) that
multiplies both the pixel values and the mask channel the ViT consumes.
The gradient of the segmentation loss w.r.t. the soft mask is then chained
analytically to the four box coordinates.

Gradient masking (the paper's explicit rule): only gradients at pixels
*selected by the random sampling* flow back into the ROI predictor; the
Bernoulli mask multiplies the chain, zeroing everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import Adam, CrossEntropyLoss, MSELoss, clip_grad_norm
from repro.sampling.eventification import eventify
from repro.sampling.random_sampling import random_mask_in_box
from repro.sampling.roi import ROIPredictor, box_from_pixels, box_to_pixels
from repro.segmentation.vit import ViTSegmenter
from repro.synth.dataset import SyntheticEyeDataset

__all__ = ["SoftROIMask", "JointTrainer", "JointTrainConfig", "JointTrainResult"]


class SoftROIMask:
    """Differentiable rectangle: product of four sigmoid edges.

    ``m(r, c) = s((r - r0)/tau) * s((r1 - r)/tau) * s((c - c0)/tau) *
    s((c1 - c)/tau)`` over normalized coordinates, where ``s`` is the
    logistic function and ``tau`` the edge softness.  As ``tau -> 0`` this
    approaches the hard box indicator; gradients w.r.t. the box corners
    are analytic.
    """

    def __init__(self, height: int, width: int, tau: float = 0.05):
        if tau <= 0:
            raise ValueError(f"tau must be positive: {tau}")
        self.tau = tau
        # Normalized pixel-centre coordinates (fractions of each dimension).
        self._rows = (np.arange(height) + 0.5) / height
        self._cols = (np.arange(width) + 0.5) / width

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def forward(self, box: np.ndarray) -> np.ndarray:
        """Box (r0, c0, r1, c1) -> soft mask (H, W)."""
        r0, c0, r1, c1 = box
        tau = self.tau
        self._sr0 = self._sigmoid((self._rows - r0) / tau)
        self._sr1 = self._sigmoid((r1 - self._rows) / tau)
        self._sc0 = self._sigmoid((self._cols - c0) / tau)
        self._sc1 = self._sigmoid((c1 - self._cols) / tau)
        self._row_term = self._sr0 * self._sr1  # (H,)
        self._col_term = self._sc0 * self._sc1  # (W,)
        return np.outer(self._row_term, self._col_term)

    def backward(self, grad_mask: np.ndarray) -> np.ndarray:
        """Gradient of a scalar loss w.r.t. the four box coordinates."""
        tau = self.tau
        # d sigmoid(u)/du = s(1-s); chain through the signs of the edges.
        d_sr0 = -self._sr0 * (1 - self._sr0) / tau  # d/d r0
        d_sr1 = self._sr1 * (1 - self._sr1) / tau  # d/d r1
        d_sc0 = -self._sc0 * (1 - self._sc0) / tau  # d/d c0
        d_sc1 = self._sc1 * (1 - self._sc1) / tau  # d/d c1
        row_dot = grad_mask @ self._col_term  # (H,)
        col_dot = grad_mask.T @ self._row_term  # (W,)
        return np.array(
            [
                float(np.sum(row_dot * d_sr0 * self._sr1)),
                float(np.sum(col_dot * d_sc0 * self._sc1)),
                float(np.sum(row_dot * d_sr1 * self._sr0)),
                float(np.sum(col_dot * d_sc1 * self._sc0)),
            ]
        )


@dataclass(frozen=True)
class JointTrainConfig:
    """Hyper-parameters of the joint procedure.

    The paper trains segmentation for 250 epochs at batch size 4 and the
    ROI network for 100 epochs at batch size 8; the defaults here are CI
    scale and flow through identical code.
    """

    epochs: int = 2
    lr_segmenter: float = 3e-3
    lr_roi: float = 1e-3
    #: In-ROI random sampling rate (paper: ~20 % of ROI pixels).
    roi_sampling_rate: float = 0.2
    #: Weight of the segmentation gradient flowing into the ROI predictor.
    seg_to_roi_weight: float = 0.1
    grad_clip: float = 5.0
    #: Soft-mask edge softness for the differentiable relaxation.
    tau: float = 0.05
    #: Probability of hiding the previous-segmentation cue during training.
    #: At run time the fed-back map is missing on the first frame and noisy
    #: early on; dropping the cue randomly keeps the ROI predictor robust
    #: to that distribution shift (same spirit as the paper's blink/saccade
    #: robustness argument for the cue itself).
    cue_dropout: float = 0.4
    #: Probability of *dilating* the cue's foreground during training, and
    #: the maximum dilation radius (pixels).  At run time the fed-back map
    #: comes from the sparse segmenter, which over-predicts foreground
    #: across the sampled region; without this augmentation the predictor
    #: learns "box = bounding box of the cue" and enters a positive
    #: feedback loop where each frame's box inflates the next (the box
    #: ratchet).  Training on inflated cues teaches it to trust the event
    #: map for the tight extent.
    cue_dilate_prob: float = 0.5
    cue_dilate_max_px: int = 4


@dataclass
class JointTrainResult:
    seg_losses: list[float] = field(default_factory=list)
    roi_losses: list[float] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return (
            len(self.seg_losses) >= 2
            and self.seg_losses[-1] < self.seg_losses[0]
        )


class JointTrainer:
    """Trains the ROI predictor and sparse ViT end to end."""

    def __init__(
        self,
        roi_predictor: ROIPredictor,
        segmenter: ViTSegmenter,
        config: JointTrainConfig,
        rng: np.random.Generator,
    ):
        self.roi_predictor = roi_predictor
        self.segmenter = segmenter
        self.config = config
        self.rng = rng
        self.seg_loss = CrossEntropyLoss()
        self.roi_loss = MSELoss()
        self.opt_seg = Adam(segmenter.parameters(), lr=config.lr_segmenter)
        self.opt_roi = Adam(roi_predictor.parameters(), lr=config.lr_roi)
        self.soft_mask = SoftROIMask(
            segmenter.config.height, segmenter.config.width, tau=config.tau
        )

    def _dilate_cue(self, seg: np.ndarray) -> np.ndarray:
        """Randomly inflate or shrink the cue's foreground (augmentation).

        Symmetric corruption makes the cue's *area* uninformative about
        the true box, forcing the predictor to take the extent from the
        event map and use the cue only for coarse localization.
        """
        from scipy.ndimage import grey_dilation, grey_erosion

        radius = int(self.rng.integers(1, self.config.cue_dilate_max_px + 1))
        size = 2 * radius + 1
        if self.rng.random() < 0.5:
            return grey_dilation(seg, size=(size, size))
        return grey_erosion(seg, size=(size, size))

    def _train_step(
        self,
        prev_frame: np.ndarray,
        frame: np.ndarray,
        prev_seg: np.ndarray | None,
        target_seg: np.ndarray,
        gt_box: np.ndarray | None,
    ) -> tuple[float, float]:
        """One frame pair through the full joint pipeline; returns losses."""
        cfg = self.config
        height, width = frame.shape

        # -- in-sensor stages -------------------------------------------------
        event_map = eventify(prev_frame, frame)
        if cfg.cue_dropout and self.rng.random() < cfg.cue_dropout:
            prev_seg = None
        elif (
            prev_seg is not None
            and cfg.cue_dilate_prob
            and self.rng.random() < cfg.cue_dilate_prob
        ):
            prev_seg = self._dilate_cue(prev_seg)
        roi_in = ROIPredictor.make_input(event_map, prev_seg)
        box_pred = self.roi_predictor(roi_in)  # (1, 4), sigmoid-activated

        # ROI regression loss against the ground-truth foreground box.
        if gt_box is not None:
            gt_norm = box_from_pixels(gt_box, height, width)[None]
            roi_loss_val = self.roi_loss.forward(box_pred, gt_norm)
            grad_box_mse = self.roi_loss.backward()
        else:  # fully occluded frame (blink): no box supervision
            roi_loss_val = 0.0
            grad_box_mse = np.zeros_like(box_pred)

        # Hard sampling for the forward pass (what the sensor actually does).
        pixel_box = box_to_pixels(box_pred[0], height, width)
        bern = random_mask_in_box(
            frame.shape, pixel_box, cfg.roi_sampling_rate, self.rng
        )

        # Soft relaxation for the backward path through sampling.
        soft = self.soft_mask.forward(box_pred[0])
        eff_mask = bern * soft
        sparse = frame * eff_mask

        # -- off-sensor segmentation ------------------------------------------
        logits = self.segmenter(sparse[None], eff_mask[None])
        seg_loss_val = self.seg_loss.forward(logits, target_seg[None])
        grad_logits = self.seg_loss.backward()

        self.segmenter.zero_grad()
        grad_pix, grad_bit = self.segmenter.backward_to_input(grad_logits)

        # Chain rule into the soft mask, gradient-masked to sampled pixels
        # (the paper's explicit masking rule): bern zeroes unsampled pixels.
        grad_soft = (grad_pix[0] * frame + grad_bit[0]) * bern
        grad_box_seg = self.soft_mask.backward(grad_soft)

        # -- updates ---------------------------------------------------------------
        total_grad_box = grad_box_mse + cfg.seg_to_roi_weight * grad_box_seg[None]
        self.roi_predictor.zero_grad()
        self.roi_predictor.backward(total_grad_box)
        clip_grad_norm(self.roi_predictor.parameters(), cfg.grad_clip)
        clip_grad_norm(self.segmenter.parameters(), cfg.grad_clip)
        self.opt_roi.step()
        self.opt_seg.step()
        return seg_loss_val, float(roi_loss_val)

    def train(
        self, dataset: SyntheticEyeDataset, sequence_indices: list[int]
    ) -> JointTrainResult:
        """Run ``config.epochs`` passes over the given sequences."""
        result = JointTrainResult()
        self.segmenter.train()
        self.roi_predictor.train()
        for _ in range(self.config.epochs):
            seg_total, roi_total, steps = 0.0, 0.0, 0
            for seq_index in sequence_indices:
                seq = dataset[seq_index]
                for t in range(1, len(seq)):
                    # Teacher forcing: the previous frame's ground-truth
                    # segmentation stands in for the host's fed-back map.
                    seg_l, roi_l = self._train_step(
                        prev_frame=seq.frames[t - 1],
                        frame=seq.frames[t],
                        prev_seg=seq.segmentations[t - 1],
                        target_seg=seq.segmentations[t],
                        gt_box=seq.roi_boxes[t],
                    )
                    seg_total += seg_l
                    roi_total += roi_l
                    steps += 1
            result.seg_losses.append(seg_total / max(steps, 1))
            result.roi_losses.append(roi_total / max(steps, 1))
        self.segmenter.eval()
        self.roi_predictor.eval()
        return result
