"""Learning-rate schedulers as stateful objects driving an optimizer.

Complements the stateless helpers in :mod:`repro.nn.optim` with the
scheduler classes a longer (paper-scale, 250-epoch) training run wants:
linear warmup into cosine decay, and reduce-on-plateau for the ROI head.
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import Optimizer

__all__ = ["WarmupCosineScheduler", "ReduceOnPlateau"]


class WarmupCosineScheduler:
    """Linear warmup for ``warmup_epochs`` then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        base_lr: float,
        total_epochs: int,
        warmup_epochs: int = 0,
        min_lr: float = 0.0,
    ):
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if not 0 <= warmup_epochs < total_epochs:
            raise ValueError("warmup must be shorter than the schedule")
        if min_lr < 0 or base_lr <= 0:
            raise ValueError("learning rates must be non-negative")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_epochs = total_epochs
        self.warmup_epochs = warmup_epochs
        self.min_lr = min_lr
        self._epoch = -1
        self.step()  # set the epoch-0 learning rate

    def lr_at(self, epoch: int) -> float:
        """The learning rate the schedule prescribes for ``epoch``."""
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / max(self.warmup_epochs, 1)
        span = max(self.total_epochs - self.warmup_epochs, 1)
        frac = min(epoch - self.warmup_epochs, span) / span
        cosine = 0.5 * (1.0 + np.cos(np.pi * frac))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self._epoch += 1
        lr = self.lr_at(self._epoch)
        self.optimizer.lr = lr
        return lr

    @property
    def epoch(self) -> int:
        return self._epoch


class ReduceOnPlateau:
    """Multiply the learning rate by ``factor`` when a metric stalls."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 3,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ):
        if not 0 < factor < 1:
            raise ValueError("factor must be in (0, 1)")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self._best = np.inf
        self._stall = 0

    def step(self, metric: float) -> float:
        """Report the latest validation metric; returns the current lr."""
        if metric < self._best - self.threshold:
            self._best = metric
            self._stall = 0
        else:
            self._stall += 1
            if self._stall >= self.patience:
                self.optimizer.lr = max(
                    self.min_lr, self.optimizer.lr * self.factor
                )
                self._stall = 0
        return self.optimizer.lr
