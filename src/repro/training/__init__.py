"""Training procedures: generic segmentation training and the paper's
joint ROI + ViT procedure with approximate differentiable sampling."""

from repro.training.joint import (
    JointTrainConfig,
    JointTrainer,
    JointTrainResult,
    SoftROIMask,
)
from repro.training.loop import TrainResult, batched, train_segmentation

__all__ = [
    "TrainResult",
    "train_segmentation",
    "batched",
    "SoftROIMask",
    "JointTrainer",
    "JointTrainConfig",
    "JointTrainResult",
]
