"""Training procedures: generic segmentation training and the paper's
joint ROI + ViT procedure with approximate differentiable sampling.

Execution lives in :mod:`repro.training.runtime` — the batched-rank
:class:`TrainRunner` behind :class:`JointTrainer` and
:func:`train_segmentation` (see ``docs/training.md``)."""

from repro.training.joint import (
    JointTrainConfig,
    JointTrainer,
    JointTrainResult,
    SoftROIMask,
)
from repro.training.loop import TrainResult, batched, train_segmentation
from repro.training.runtime import (
    TRAIN_STREAM_TAG,
    TrainRunner,
    TrainSample,
    collect_frame_pairs,
    sample_stream,
)

__all__ = [
    "TrainResult",
    "train_segmentation",
    "batched",
    "SoftROIMask",
    "JointTrainer",
    "JointTrainConfig",
    "JointTrainResult",
    "TrainRunner",
    "TrainSample",
    "TRAIN_STREAM_TAG",
    "collect_frame_pairs",
    "sample_stream",
]
