"""Per-client synthetic eye-streams and their arrival processes.

A :class:`ClientStream` is one live subject: a
:class:`~repro.synth.gaze_dynamics.GazeSequenceGenerator` advances the
eye every tick (the eye keeps moving whether or not a frame is
captured), and the arrival process decides at which ticks the sensor
actually emits a frame:

* ``uniform`` — one frame every tick, the nominal camera cadence;
* ``poisson`` — exponential inter-arrival gaps (at least one tick: a
  camera emits at most one frame per frame period), modelling jittery
  or thinned streams;
* ``trace`` — blink-gated: the stream pauses while the synthetic eye
  blinks, the event-camera-style pattern where occluded frames are
  suppressed at the source.

Randomness follows the repo's spawn convention: every per-client stream
is keyed by ``[seed, SERVE_STREAM_TAG, client_id]`` — order- and
process-insensitive, so a client generates the *same* frames whether it
is served alone, multiplexed with a thousand others, or simulated inside
a sharded worker.  The arrival process draws from its *own* spawn
(``[..., client_id, 1]``), so the eye trace is invariant to the arrival
process chosen.  ``SERVE_STREAM_TAG`` namespaces serving clients away
from dataset sequences (which are keyed ``[seed, index]``): client 0 is
a new subject, not a replay of training sequence 0.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.synth.dataset import DatasetConfig
from repro.synth.eye_model import EyeGeometry
from repro.synth.gaze_dynamics import GazeSequenceGenerator
from repro.synth.noise import SensorNoiseModel, exposure_for_fps
from repro.synth.renderer import EyeRenderer

__all__ = [
    "SERVE_STREAM_TAG",
    "FrameArrival",
    "ClientStream",
    "build_streams",
    "materialize_arrivals",
]

#: RNG namespace separating serving clients from dataset sequences.
SERVE_STREAM_TAG = zlib.crc32(b"repro.serve")


@dataclass
class FrameArrival:
    """One frame arriving at the serving queue."""

    client_id: int
    #: Tick at which the frame arrived (its exposure finished).
    tick: int
    #: Position in the client's emitted stream (the engine's ``t``).
    frame_index: int
    frame: np.ndarray
    gaze_true: np.ndarray
    in_blink: bool
    in_saccade: bool


class ClientStream:
    """One client's lazily-generated eye stream.

    ``poll(tick)`` must be called for every tick in order (the dynamics
    advance exactly once per tick); it returns the frame arriving at
    that tick, or ``None`` when the arrival process emits nothing.
    """

    def __init__(
        self,
        client_id: int,
        dataset: DatasetConfig,
        arrival: str = "uniform",
        seed: int = 0,
    ):
        if arrival not in ("uniform", "poisson", "trace"):
            raise ValueError(f"unknown arrival process: {arrival!r}")
        self.client_id = client_id
        self.arrival = arrival
        self.dataset = dataset
        rng = np.random.default_rng([seed, SERVE_STREAM_TAG, client_id])
        geometry = EyeGeometry.random(rng).scaled(dataset.eye_scale)
        self._renderer = EyeRenderer(
            geometry, dataset.height, dataset.width, rng
        )
        self._dynamics = GazeSequenceGenerator(
            geometry, dataset.fps, rng, dataset.dynamics
        )
        self._noise = SensorNoiseModel(
            dataset.noise, seed=int(rng.integers(0, 2**31))
        )
        self._exposure_s = (
            dataset.exposure_s
            if dataset.exposure_s is not None
            else exposure_for_fps(dataset.fps)
        )
        # The arrival process has its own spawn so the eye trace above is
        # invariant to which process is configured.
        self._arrival_rng = np.random.default_rng(
            [seed, SERVE_STREAM_TAG, client_id, 1]
        )
        self._frame_index = 0
        self._expected_tick = 0
        self._next_poisson_tick = 0

    # -- arrival processes ----------------------------------------------------
    def _arrives(self, tick: int, in_blink: bool) -> bool:
        if self.arrival == "uniform":
            return True
        if self.arrival == "trace":
            return not in_blink
        # poisson: exponential gaps, floored at one tick (one frame per
        # frame period is the camera's physical ceiling).
        if tick < self._next_poisson_tick:
            return False
        gap = max(1, int(np.ceil(self._arrival_rng.exponential(1.0))))
        self._next_poisson_tick = tick + gap
        return True

    # -- stream ---------------------------------------------------------------
    def poll(self, tick: int) -> FrameArrival | None:
        """The frame arriving at ``tick``, or ``None``.

        Ticks must be polled consecutively from 0: the eye advances one
        frame period per call regardless of whether a frame is emitted.
        """
        if tick != self._expected_tick:
            raise ValueError(
                f"client {self.client_id} polled at tick {tick}, expected "
                f"{self._expected_tick} (ticks must be consecutive)"
            )
        self._expected_tick += 1
        state = self._dynamics.step()
        if not self._arrives(tick, state.in_blink):
            return None
        rendered = self._renderer.render(state)
        frame = rendered.image
        if self.dataset.apply_noise:
            frame = self._noise.apply(frame, self._exposure_s)
        arrival = FrameArrival(
            client_id=self.client_id,
            tick=tick,
            frame_index=self._frame_index,
            frame=frame,
            gaze_true=np.asarray(rendered.gaze, dtype=float),
            in_blink=state.in_blink,
            in_saccade=state.in_saccade,
        )
        self._frame_index += 1
        return arrival


def build_streams(
    dataset: DatasetConfig,
    client_ids,
    arrival: str = "uniform",
    seed: int = 0,
) -> list[ClientStream]:
    """One :class:`ClientStream` per id, each with its own RNG spawns."""
    return [
        ClientStream(client_id, dataset, arrival=arrival, seed=seed)
        for client_id in client_ids
    ]


def materialize_arrivals(
    streams: list[ClientStream], duration_ticks: int
) -> list[list[FrameArrival]]:
    """All arrivals, grouped by tick (clients in stream order per tick).

    Materializing up front separates frame *generation* (rendering +
    noise, identical in every dispatch mode) from frame *serving*, so
    benchmarks time the scheduler and kernels, not the scene simulator.
    """
    if duration_ticks < 0:
        raise ValueError("duration_ticks must be non-negative")
    return [
        [
            arrival
            for stream in streams
            if (arrival := stream.poll(tick)) is not None
        ]
        for tick in range(duration_ticks)
    ]
