"""Service-level objectives: deadlines from the modeled hardware latency.

The per-frame deadline is grounded in :mod:`repro.hardware.timing`: the
modeled BlissCam tracking latency (start-of-exposure to gaze-ready) is
the *service time* every processed frame pays, and the deadline allows
on top of it a configurable number of frame periods of queueing slack.
A frame that waited ``w`` ticks completes at virtual latency
``w * tick_s + service_s`` and meets its deadline iff ``w <=
slack_ticks`` — an exact integer comparison, so deadline accounting can
never float-drift between runs or machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.energy import WorkloadProfile
from repro.hardware.timing import TimingModel

__all__ = ["SLOModel"]


@dataclass(frozen=True)
class SLOModel:
    """Deadline arithmetic for one serving scenario."""

    #: One camera frame period, seconds.
    tick_s: float
    #: Modeled per-frame service latency (hardware.timing), seconds.
    service_s: float
    #: Queueing slack before a completion misses its deadline, ticks.
    slack_ticks: int
    #: ``drop`` sheds doomed frames at dispatch; ``best_effort``
    #: processes them and records the miss.
    policy: str = "drop"

    def __post_init__(self) -> None:
        if self.policy not in ("drop", "best_effort"):
            raise ValueError(f"unknown deadline policy: {self.policy!r}")
        if self.slack_ticks < 0:
            raise ValueError(f"slack_ticks must be >= 0: {self.slack_ticks}")

    @classmethod
    def from_hardware(
        cls,
        fps: float,
        slack_ticks: int = 1,
        policy: str = "drop",
        variant: str = "BlissCam",
        profile: WorkloadProfile | None = None,
        timing: TimingModel | None = None,
    ) -> "SLOModel":
        """Derive the service time from the calibrated timing model."""
        timing = timing or TimingModel()
        profile = profile or WorkloadProfile()
        service = timing.tracking_latency(variant, profile, fps).total
        return cls(
            tick_s=1.0 / fps,
            service_s=service,
            slack_ticks=slack_ticks,
            policy=policy,
        )

    @property
    def deadline_s(self) -> float:
        """Latest acceptable completion latency, seconds."""
        return self.service_s + self.slack_ticks * self.tick_s

    def latency_s(self, wait_ticks: int) -> float:
        """Virtual completion latency after ``wait_ticks`` in the queue."""
        return wait_ticks * self.tick_s + self.service_s

    def meets_deadline(self, wait_ticks: int) -> bool:
        return wait_ticks <= self.slack_ticks

    def sheds(self, wait_ticks: int) -> bool:
        """Should a frame this late be dropped instead of processed?"""
        return self.policy == "drop" and not self.meets_deadline(wait_ticks)
