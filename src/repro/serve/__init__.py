"""``repro.serve`` — the streaming multi-client serving runtime.

Everything below this package evaluates *offline batches*: a dataset of
recorded sequences pushed through the staged engine.  ``repro.serve``
turns the same trained tracker into an *online service*: many concurrent
client eye-streams arrive against a deterministic virtual clock, the
scheduler admits them through a bounded queue, collects the frames due
at each tick, and dispatches them as **cross-client micro-batches**
through the engine's existing batched stage kernels — per-client
``SequenceState`` feedback stays isolated, so every client's results are
bitwise-identical to serving that client alone.

The pieces:

* :class:`~repro.serve.clock.VirtualClock` — frame-period ticks; all
  latencies are virtual time, so telemetry is deterministic.
* :class:`~repro.serve.streams.ClientStream` — per-client synthetic eye
  streams (``synth.gaze_dynamics``) with uniform / Poisson / trace
  arrival processes and per-client RNG spawns.
* :class:`~repro.serve.slo.SLOModel` — per-frame deadlines derived from
  the modeled hardware latency (``hardware.timing``).
* :class:`~repro.serve.scheduler.Scheduler` — the event loop: admission
  control, deadline shedding, micro-batch dispatch.
* :class:`~repro.serve.telemetry.Telemetry` — p50/p95/p99 latency,
  goodput, drop rate, queue-depth traces.

The front door is :func:`~repro.serve.scheduler.simulate_serving`;
``repro.api`` exposes it as the ``serve`` workload (see
``docs/serving.md``).
"""

from repro.serve.clock import VirtualClock
from repro.serve.scheduler import (
    ClientSensorFactory,
    Scheduler,
    ServeRun,
    ServeScenario,
    simulate_serving,
)
from repro.serve.slo import SLOModel
from repro.serve.streams import (
    SERVE_STREAM_TAG,
    ClientStream,
    FrameArrival,
    build_streams,
    materialize_arrivals,
)
from repro.serve.telemetry import Telemetry

__all__ = [
    "VirtualClock",
    "ClientStream",
    "FrameArrival",
    "SERVE_STREAM_TAG",
    "build_streams",
    "materialize_arrivals",
    "SLOModel",
    "Telemetry",
    "Scheduler",
    "ServeScenario",
    "ServeRun",
    "ClientSensorFactory",
    "simulate_serving",
]
