"""The serving runtime's virtual clock.

Serving is simulated against *virtual time*: one tick is one camera
frame period, every arrival/dispatch/completion timestamp is a tick
count, and latencies are derived from the modeled hardware service time
(:mod:`repro.serve.slo`) — never from wall-clock.  That is what makes a
serving run a deterministic function of ``(spec, seed)``: the same
scenario produces byte-identical telemetry on any machine, while the
*throughput* of the simulation itself (how fast the host executes the
micro-batched kernels) is measured separately by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VirtualClock"]


@dataclass
class VirtualClock:
    """Discrete frame-period ticks with a seconds view.

    ``tick`` counts frame periods since the scenario started; ``now_s``
    is the equivalent virtual seconds.  The scheduler advances the clock
    exactly once per event-loop iteration.
    """

    #: Seconds per tick (one camera frame period, ``1 / fps``).
    tick_s: float
    tick: int = field(default=0)

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise ValueError(f"tick_s must be positive: {self.tick_s}")

    @classmethod
    def for_fps(cls, fps: float) -> "VirtualClock":
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        return cls(tick_s=1.0 / fps)

    @property
    def now_s(self) -> float:
        """Virtual seconds elapsed since tick 0."""
        return self.tick * self.tick_s

    def advance(self) -> int:
        """Move to the next tick; returns the new tick index."""
        self.tick += 1
        return self.tick

    def seconds(self, ticks: int) -> float:
        """Convert a tick count (e.g. a queue wait) to virtual seconds."""
        return ticks * self.tick_s
