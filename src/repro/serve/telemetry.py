"""Serving telemetry: per-frame records folded into SLO metrics.

The aggregator stores raw per-frame records (completions, drops,
queue-depth samples) and folds them into one JSON-able summary:
latency percentiles (p50/p95/p99), goodput, drop rate, per-reason drop
counts, queue-depth traces, and per-client accounting.  All reductions
are computed over *sorted* operands, so a summary is a pure function of
the record multiset — merging shard telemetries (clients partitioned
across worker replicas) yields the same summary bytes as one scheduler
observing every client, regardless of shard boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.names import QUEUE_DEPTH_FIELDS

__all__ = ["FrameRecord", "DropRecord", "Telemetry"]


@dataclass(frozen=True)
class FrameRecord:
    """One frame that went through the pipeline."""

    client_id: int
    arrival_tick: int
    dispatch_tick: int
    latency_s: float
    met_deadline: bool
    #: Bootstrap frames prime the sensor's analog memory and produce no
    #: gaze; they count as processed but not as completions.
    bootstrap: bool
    gaze_error_deg: float | None


@dataclass(frozen=True)
class DropRecord:
    """One frame shed before processing."""

    client_id: int
    tick: int
    #: ``queue_full`` (admission control) or ``deadline`` (doomed frame).
    reason: str


class Telemetry:
    """Accumulates serving records; :meth:`summary` folds them to JSON."""

    def __init__(self, tick_s: float, deadline_s: float, duration_ticks: int):
        self.tick_s = tick_s
        self.deadline_s = deadline_s
        self.duration_ticks = duration_ticks
        self.frames: list[FrameRecord] = []
        self.drops: list[DropRecord] = []
        #: Queue depth after each tick's dispatch (one entry per tick).
        self.queue_depths: list[int] = []
        #: Client ids of frames still queued when the scenario ended —
        #: admitted but never served; counted as arrived, not dropped.
        self.backlog: list[int] = []

    # -- recording ------------------------------------------------------------
    def record_frame(self, record: FrameRecord) -> None:
        self.frames.append(record)

    def record_drop(self, client_id: int, tick: int, reason: str) -> None:
        self.drops.append(DropRecord(client_id, tick, reason))

    def record_queue_depth(self, depth: int) -> None:
        self.queue_depths.append(depth)

    def record_backlog(self, client_id: int) -> None:
        self.backlog.append(client_id)

    # -- merging (sharded replicas) -------------------------------------------
    def merge(self, other: "Telemetry") -> None:
        """Fold a replica's records in.

        Queue depths are summed element-wise: replicas tick in lockstep
        over the same virtual clock, so the sum is the fleet-wide queued
        backlog at each tick.
        """
        if (self.tick_s, self.duration_ticks) != (
            other.tick_s,
            other.duration_ticks,
        ):
            raise ValueError("cannot merge telemetry of different scenarios")
        self.frames.extend(other.frames)
        self.drops.extend(other.drops)
        self.backlog.extend(other.backlog)
        if not self.queue_depths:
            self.queue_depths = list(other.queue_depths)
        else:
            self.queue_depths = [
                a + b for a, b in zip(self.queue_depths, other.queue_depths)
            ]

    # -- summary --------------------------------------------------------------
    def summary(self) -> dict:
        """The serving scorecard; deterministic for a given record set."""
        completions = [f for f in self.frames if not f.bootstrap]
        bootstraps = len(self.frames) - len(completions)
        # Every admitted-or-refused frame is accounted for: processed,
        # dropped, or still queued when the scenario ended (backlog).
        arrived = len(self.frames) + len(self.drops) + len(self.backlog)
        met = sum(1 for f in completions if f.met_deadline)
        duration_s = self.duration_ticks * self.tick_s
        # Sorting before reducing makes every statistic order-insensitive
        # (shard merge order must not perturb float sums).
        latencies_ms = np.sort(
            np.array([f.latency_s for f in completions]) * 1e3
        )
        gaze_errors = np.sort(
            np.array(
                [
                    f.gaze_error_deg
                    for f in completions
                    if f.gaze_error_deg is not None
                ]
            )
        )
        reasons: dict[str, int] = {}
        for drop in self.drops:
            reasons[drop.reason] = reasons.get(drop.reason, 0) + 1

        per_client: dict[str, dict] = {}
        client_ids = sorted(
            {f.client_id for f in self.frames}
            | {d.client_id for d in self.drops}
            | set(self.backlog)
        )
        for cid in client_ids:
            mine = [f for f in completions if f.client_id == cid]
            mine_lat = np.sort(np.array([f.latency_s for f in mine]) * 1e3)
            per_client[str(cid)] = {
                "arrived": sum(
                    1 for f in self.frames if f.client_id == cid
                )
                + sum(1 for d in self.drops if d.client_id == cid)
                + sum(1 for b in self.backlog if b == cid),
                "completed": len(mine),
                "dropped": sum(1 for d in self.drops if d.client_id == cid),
                "met_deadline": sum(1 for f in mine if f.met_deadline),
                "mean_latency_ms": _mean(mine_lat),
            }

        return {
            "frames": {
                "arrived": arrived,
                "processed": len(self.frames),
                "completed": len(completions),
                "bootstrap": bootstraps,
                "dropped": len(self.drops),
                "backlog": len(self.backlog),
            },
            "latency_ms": {
                "p50": _percentile(latencies_ms, 50),
                "p95": _percentile(latencies_ms, 95),
                "p99": _percentile(latencies_ms, 99),
                "mean": _mean(latencies_ms),
                "max": float(latencies_ms[-1]) if latencies_ms.size else None,
            },
            "deadline_ms": self.deadline_s * 1e3,
            "deadline_met": met,
            "deadline_miss_rate": (
                1.0 - met / len(completions) if completions else 0.0
            ),
            "goodput_fps": met / duration_s if duration_s > 0 else 0.0,
            "drop_rate": len(self.drops) / arrived if arrived else 0.0,
            "drops_by_reason": dict(sorted(reasons.items())),
            # Built from the obs naming table: the same field names the
            # exported trace's serve.queue_depth.* gauges use, so the
            # metrics block and the trace can never drift apart.
            "queue_depth": {
                field: value
                for field, value in zip(
                    QUEUE_DEPTH_FIELDS,
                    (
                        max(self.queue_depths, default=0),
                        _mean(np.sort(np.array(self.queue_depths, float))),
                        list(self.queue_depths),
                    ),
                )
            },
            "gaze_error_deg": {
                "mean": _mean(gaze_errors),
                "p95": _percentile(gaze_errors, 95),
            },
            "per_client": per_client,
        }


def _mean(sorted_values: np.ndarray) -> float | None:
    return float(np.mean(sorted_values)) if sorted_values.size else None


def _percentile(sorted_values: np.ndarray, q: float) -> float | None:
    return float(np.percentile(sorted_values, q)) if sorted_values.size else None
