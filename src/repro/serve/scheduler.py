"""The serving event loop: admission, deadline shedding, micro-batching.

One :class:`Scheduler` owns a FIFO queue of :class:`FrameArrival`\\ s and
walks the virtual clock.  Each tick it

1. **admits** the frames arriving from every client stream, dropping
   beyond the bounded queue (``queue_full``);
2. **sheds** frames that can no longer meet their deadline (``drop``
   policy) instead of wasting host compute on them;
3. **dispatches** up to ``max_batch`` queued frames as one cross-client
   micro-batch through the tracking stage graph's ``process_batch``
   kernels — the same vectorized kernels the offline engine's lockstep
   mode uses.  Every client keeps its own
   :class:`~repro.engine.context.SequenceState` (spawned sensor, fed-back
   segmentation, gaze fallback), and the kernels are bitwise
   batch-invariant, so a client's outputs are identical no matter which
   other clients share its micro-batches — the serve parity tests pin
   this against serving each client alone.

``workers >= 2`` partitions the client fleet into contiguous shards and
runs one independent scheduler *replica* per worker process — the
horizontal-scaling story: each replica has its own queue and per-tick
batch budget, exactly like a fleet of serving processes behind a
client-affine load balancer.  Per-client results are unchanged by
partitioning (streams and sensor spawns are keyed by client id), and
merged telemetry summaries are byte-identical to a single scheduler
whenever no queueing interaction occurs (no drops / no waits).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine.context import FrameContext, SequenceState
from repro.engine.stage import StageGraph
from repro.obs.names import SERVE_QUEUE_DEPTH
from repro.obs.tracer import current_tracer
from repro.serve.slo import SLOModel
from repro.serve.streams import (
    SERVE_STREAM_TAG,
    FrameArrival,
    build_streams,
    materialize_arrivals,
)
from repro.serve.telemetry import FrameRecord, Telemetry

__all__ = [
    "ServeScenario",
    "ClientSensorFactory",
    "Scheduler",
    "ServeRun",
    "simulate_serving",
]


@dataclass(frozen=True)
class ServeScenario:
    """A serving scenario: the arrival side plus the SLO knobs.

    Field-compatible with the spec's ``execution.serve`` section —
    field names *and* defaults must match (``repro.api`` passes that
    section straight through, and ``tests/serve`` pins the parity), so
    direct-library users and spec users describe identical scenarios.
    """

    num_clients: int = 4
    arrival: str = "uniform"
    duration_ticks: int = 12
    deadline_policy: str = "drop"
    max_batch: int | None = None
    queue_capacity: int | None = None
    deadline_slack_ticks: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        # Mirrors the spec-level validation for direct-library users who
        # never go through ExperimentSpec.validate().
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1: {self.num_clients}")
        if self.duration_ticks < 2:
            raise ValueError(
                f"duration_ticks must be >= 2: {self.duration_ticks}"
            )
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {self.max_batch}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1: {self.queue_capacity}"
            )
        if self.deadline_slack_ticks < 0:
            raise ValueError(
                f"deadline_slack_ticks must be >= 0: "
                f"{self.deadline_slack_ticks}"
            )


@dataclass
class ClientSensorFactory:
    """``client_id -> SequenceState`` with a per-client sensor spawn.

    Mirrors the engine's ``SensorSpawnFactory`` but in the serve RNG
    namespace: runtime noise streams are keyed ``[sensor_seed,
    SERVE_STREAM_TAG, client_id]``, so a client's sensor draws are
    independent of admission order, micro-batch composition and shard
    placement.  A plain class so sharded replicas can pickle it.
    """

    sensor_template: Any
    sensor_seed: int

    def __call__(self, client_id: int) -> SequenceState:
        state = SequenceState(seq_index=client_id)
        state.sensor = self.sensor_template.spawn(
            [self.sensor_seed, SERVE_STREAM_TAG, client_id]
        )
        return state


@dataclass
class ServeRun:
    """Everything one serving simulation produced."""

    telemetry: Telemetry
    #: ``(client_id, frame_index, gaze_pred)`` per completed frame, in
    #: dispatch order — the raw material of the per-client parity tests.
    gaze_log: list[tuple[int, int, tuple[float, float]]]
    #: Wall-clock seconds of the serving loop (dispatch + kernels only;
    #: stream generation is materialized beforehand).
    wall_seconds: float
    #: Scheduler replicas the fleet was partitioned into.
    workers: int = 1

    @property
    def summary(self) -> dict:
        return self.telemetry.summary()


class Scheduler:
    """Event-loop over a virtual clock, serving one client partition."""

    def __init__(
        self,
        graph: StageGraph,
        state_factory,
        slo: SLOModel,
        max_batch: int | None = None,
        queue_capacity: int | None = None,
        micro_batch: bool = True,
    ):
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1: {queue_capacity}")
        self.graph = graph
        self.state_factory = state_factory
        self.slo = slo
        self.max_batch = max_batch
        self.queue_capacity = queue_capacity
        self.micro_batch = micro_batch
        self._states: dict[int, SequenceState] = {}

    # -- client admission -----------------------------------------------------
    def _state_for(self, client_id: int) -> SequenceState:
        if client_id not in self._states:
            state = self.state_factory(client_id)
            for stage in self.graph:
                stage.start_sequence(state)
            self._states[client_id] = state
        return self._states[client_id]

    # -- the loop -------------------------------------------------------------
    def run(
        self,
        arrivals_by_tick: list[list[FrameArrival]],
        telemetry: Telemetry,
    ) -> list[tuple[int, int, tuple[float, float]]]:
        """Serve the scenario; records into ``telemetry``, returns the
        gaze log."""
        # Virtual time: tick t of the loop IS VirtualClock tick t (the
        # clock's seconds view lives in the SLO's latency arithmetic).
        queue: deque[FrameArrival] = deque()
        gaze_log: list[tuple[int, int, tuple[float, float]]] = []
        tracer = current_tracer()
        for tick, arrivals in enumerate(arrivals_by_tick):
            # Per-tick spans are the high-volume series; summary detail
            # keeps only the counters/gauge below.
            tick_span = (
                tracer.span("serve.tick", tick=tick, arrivals=len(arrivals))
                if tracer is not None and tracer.detail == "full"
                else nullcontext()
            )
            with tick_span:
                # 1. Admission control: a bounded queue is the backpressure
                # mechanism — beyond it, load shedding beats unbounded delay.
                admitted = 0
                shed_full = 0
                shed_deadline = 0
                for arrival in arrivals:
                    if (
                        self.queue_capacity is not None
                        and len(queue) >= self.queue_capacity
                    ):
                        telemetry.record_drop(
                            arrival.client_id, tick, "queue_full"
                        )
                        shed_full += 1
                    else:
                        queue.append(arrival)
                        admitted += 1
                # 2./3. Pop up to max_batch serviceable frames, shedding the
                # doomed ones (drop policy) without charging the batch budget.
                budget = (
                    self.max_batch if self.max_batch is not None else len(queue)
                )
                jobs: list[FrameArrival] = []
                while queue and len(jobs) < budget:
                    arrival = queue.popleft()
                    if self.slo.sheds(tick - arrival.tick):
                        telemetry.record_drop(
                            arrival.client_id, tick, "deadline"
                        )
                        shed_deadline += 1
                        continue
                    jobs.append(arrival)
                if jobs:
                    self._dispatch(tick, jobs, telemetry, gaze_log)
                telemetry.record_queue_depth(len(queue))
                if tracer is not None:
                    tracer.count("serve.ticks")
                    if admitted:
                        tracer.count("serve.admitted", admitted)
                    if shed_full:
                        tracer.count("serve.shed.queue_full", shed_full)
                    if shed_deadline:
                        tracer.count("serve.shed.deadline", shed_deadline)
                    if jobs:
                        tracer.count("serve.dispatched", len(jobs))
                    tracer.gauge(SERVE_QUEUE_DEPTH, len(queue), tick=tick)
        # Frames still queued when the scenario ends were admitted but
        # never served; account them as backlog so 'arrived' and the
        # drop-rate denominator cover every frame under overload.
        for arrival in queue:
            telemetry.record_backlog(arrival.client_id)
        return gaze_log

    def _dispatch(
        self,
        tick: int,
        jobs: list[FrameArrival],
        telemetry: Telemetry,
        gaze_log: list,
    ) -> None:
        ctxs = [
            FrameContext(
                seq_index=job.client_id,
                t=job.frame_index,
                frame=job.frame,
                gaze_true=job.gaze_true,
            )
            for job in jobs
        ]
        states = [self._state_for(job.client_id) for job in jobs]
        if self.micro_batch:
            rank = list(zip(ctxs, states))
            for stage in self.graph:
                live = [(c, s) for c, s in rank if not c.skipped]
                if not live:
                    break
                stage.process_batch(
                    [c for c, _ in live], [s for _, s in live]
                )
        else:
            # The per-client-sequential baseline: same kernels, one frame
            # at a time (what a naive per-stream serving loop would do).
            for ctx, state in zip(ctxs, states):
                for stage in self.graph:
                    if ctx.skipped:
                        break
                    stage.process(ctx, state)
        for job, ctx in zip(jobs, ctxs):
            wait = tick - job.tick
            if ctx.skipped:
                # Bootstrap: the sensor latched its first analog frame.
                telemetry.record_frame(
                    FrameRecord(
                        client_id=job.client_id,
                        arrival_tick=job.tick,
                        dispatch_tick=tick,
                        latency_s=self.slo.latency_s(wait),
                        met_deadline=self.slo.meets_deadline(wait),
                        bootstrap=True,
                        gaze_error_deg=None,
                    )
                )
            else:
                error = float(
                    np.hypot(
                        ctx.gaze_pred[0] - job.gaze_true[0],
                        ctx.gaze_pred[1] - job.gaze_true[1],
                    )
                )
                telemetry.record_frame(
                    FrameRecord(
                        client_id=job.client_id,
                        arrival_tick=job.tick,
                        dispatch_tick=tick,
                        latency_s=self.slo.latency_s(wait),
                        met_deadline=self.slo.meets_deadline(wait),
                        bootstrap=False,
                        gaze_error_deg=error,
                    )
                )
                gaze_log.append(
                    (
                        job.client_id,
                        job.frame_index,
                        (float(ctx.gaze_pred[0]), float(ctx.gaze_pred[1])),
                    )
                )
            ctx.release_intermediates()


# -- simulation entry points --------------------------------------------------
def _serve_partition(
    graph: StageGraph,
    state_factory,
    dataset_cfg,
    scenario,
    slo: SLOModel,
    client_ids: list[int],
    micro_batch: bool,
) -> tuple[Telemetry, list, float]:
    """Run one scheduler replica over a client partition.

    Module-level so sharded serving can ship it to worker processes
    (the graph, state factory and dataset config all pickle; streams are
    rebuilt in-worker from their client ids — cheaper than pickling
    frames).
    """
    streams = build_streams(
        dataset_cfg,
        client_ids,
        arrival=scenario.arrival,
        seed=scenario.seed,
    )
    arrivals = materialize_arrivals(streams, scenario.duration_ticks)
    telemetry = Telemetry(
        tick_s=slo.tick_s,
        deadline_s=slo.deadline_s,
        duration_ticks=scenario.duration_ticks,
    )
    scheduler = Scheduler(
        graph,
        state_factory,
        slo,
        max_batch=scenario.max_batch,
        queue_capacity=scenario.queue_capacity,
        micro_batch=micro_batch,
    )
    start = time.perf_counter()  # repro: allow[REP102] wall_seconds metric (non-deterministic by contract)
    gaze_log = scheduler.run(arrivals, telemetry)
    wall = time.perf_counter() - start  # repro: allow[REP102] wall_seconds metric (non-deterministic by contract)
    return telemetry, gaze_log, wall


def _serve_partition_handles(bundle_handle, client_ids: list[int]):
    """Shared-memory worker entry for one scheduler replica.

    The replica-invariant bundle — graph, state factory (carrying the
    calibrated sensor template), dataset config, scenario, SLO model and
    micro-batch flag — is published once per serve run and ships as one
    tiny handle; only the partition's client ids travel per dispatch.
    Workers resolve the bundle through the digest-keyed payload cache,
    so a persistent pool serving repeated scenarios skips the
    deserialization entirely.
    """
    from repro.engine.transport import resolve_payload

    graph, state_factory, dataset_cfg, scenario, slo, micro_batch = (
        resolve_payload(bundle_handle)
    )
    return _serve_partition(
        graph, state_factory, dataset_cfg, scenario, slo, client_ids,
        micro_batch,
    )


def simulate_serving(
    *,
    graph: StageGraph,
    state_factory,
    dataset_cfg,
    scenario,
    slo: SLOModel | None = None,
    micro_batch: bool = True,
    workers: int | None = None,
    executor=None,
    transport=None,
    client_ids: list[int] | None = None,
) -> ServeRun:
    """Serve ``scenario``'s client fleet through a tracking stage graph.

    ``scenario`` is a :class:`ServeScenario` or anything field-compatible
    (the spec's ``execution.serve`` section).  ``micro_batch=False``
    dispatches frames one at a time — the per-client-sequential baseline
    the serving benchmark compares against.  ``workers >= 2`` partitions
    the fleet into that many independent scheduler replicas executed in
    worker processes (``executor`` injects a persistent pool, e.g. the
    session's, and ``transport`` its shared-memory channel — ``None``
    opens a per-run channel, ``False`` forces plain-pickle dispatch;
    telemetry is identical in every mode).  Telemetry latencies are
    virtual-clock, hence deterministic; ``wall_seconds`` measures the
    real serving loop.
    """
    from repro.engine.runner import contiguous_shards
    from repro.engine.transport import TransportChannel

    if slo is None:
        slo = SLOModel.from_hardware(
            fps=dataset_cfg.fps,
            slack_ticks=scenario.deadline_slack_ticks,
            policy=scenario.deadline_policy,
        )
    if client_ids is None:
        client_ids = list(range(scenario.num_clients))
    n_workers = max(1, min(workers or 1, len(client_ids)))
    if n_workers >= 2:
        partitions = contiguous_shards(client_ids, n_workers)
        own_channel = None
        channel = None
        if transport is not False:
            if isinstance(transport, TransportChannel):
                channel = transport
            else:
                own_channel = channel = TransportChannel()
        try:
            if channel is not None:
                # The replica-invariant bundle ships once (slot-keyed, so
                # a later serve run on a persistent channel replaces this
                # generation's segments); published before any throwaway
                # pool forks so workers inherit the mappings.
                bundle_handle = channel.publish(
                    (graph, state_factory, dataset_cfg, scenario, slo,
                     micro_batch),
                    slot="serve_bundle",
                )
                args = [(bundle_handle, part) for part in partitions]
                job = _serve_partition_handles
            else:
                args = [
                    (graph, state_factory, dataset_cfg, scenario, slo, part,
                     micro_batch)
                    for part in partitions
                ]
                job = _serve_partition
            if executor is not None:
                futures = [executor.submit(job, *a) for a in args]
                results = [f.result() for f in futures]
            else:
                from repro.engine.runner import shard_executor

                with shard_executor(len(partitions)) as pool:
                    futures = [pool.submit(job, *a) for a in args]
                    results = [f.result() for f in futures]
        finally:
            if own_channel is not None:
                own_channel.close()
        telemetry, gaze_log, _ = results[0]
        for part_telemetry, part_log, _ in results[1:]:
            telemetry.merge(part_telemetry)
            gaze_log = gaze_log + part_log
        # Replicas serve concurrently: the fleet's serving time is the
        # slowest replica's loop, not the sum.
        wall = max(w for _, _, w in results)
    else:
        n_workers = 1
        telemetry, gaze_log, wall = _serve_partition(
            graph, state_factory, dataset_cfg, scenario, slo,
            client_ids, micro_batch,
        )
    return ServeRun(
        telemetry=telemetry,
        gaze_log=gaze_log,
        wall_seconds=wall,
        workers=n_workers,
    )
