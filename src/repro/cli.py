"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``quickstart``   train + evaluate the end-to-end pipeline (CI scale)
``throughput``   staged-engine frames/sec: sequential vs batched lockstep
                 (``--workers N`` also times the sharded multi-process mode)
``energy``       per-frame energy breakdown of the four variants
``latency``      tracking-latency breakdown of the four variants
``area``         Sec. VI-D area estimate
``power``        headset power-budget report
``sweep-fps``    energy saving vs frame rate
``sweep-node``   energy saving vs process nodes

All hardware commands accept ``--fps`` (default 120).  The accuracy
commands run on the shared :mod:`repro.engine` stage runtime.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import BlissCamPipeline, Table, ci
from repro.hardware import (
    AreaModel,
    ProcessNodes,
    SystemEnergyModel,
    TimingModel,
    VARIANTS,
    WorkloadProfile,
)
from repro.hardware.power_budget import HeadsetBudget

__all__ = ["main"]


def _cmd_quickstart(args: argparse.Namespace) -> int:
    pipeline = BlissCamPipeline(ci())
    print("training...")
    pipeline.train()
    result = pipeline.evaluate()
    table = Table(["metric", "value"], title="quickstart results")
    table.add_row("horizontal error (deg)", round(result.horizontal.mean, 2))
    table.add_row("vertical error (deg)", round(result.vertical.mean, 2))
    table.add_row("compression (x)", round(result.stats.mean_compression, 1))
    table.add_row("ROI IoU", round(result.stats.mean_roi_iou, 2))
    print(table.render())
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from repro.core.throughput import measure_throughput, throughput_tables

    pipeline = BlissCamPipeline(ci(num_sequences=10, frames_per_sequence=10))
    print("training...")
    pipeline.train([0, 1])
    record = measure_throughput(
        pipeline, list(range(2, 10)), repeats=1, workers=args.workers
    )
    for table in throughput_tables(record):
        print(table.render())
    modes = "batched/sharded" if "sharded_s" in record else "batched"
    print(f"{modes} == sequential (bitwise): {record['bitwise_identical']}")
    return 0 if record["bitwise_identical"] else 1


def _cmd_energy(args: argparse.Namespace) -> int:
    model = SystemEnergyModel()
    profile = WorkloadProfile()
    table = Table(
        ["variant", "total (uJ/frame)", "saving vs NPU-Full"],
        title=f"energy @ {args.fps:g} FPS",
    )
    full = model.frame_energy("NPU-Full", profile, args.fps).total
    for variant in VARIANTS:
        total = model.frame_energy(variant, profile, args.fps).total
        table.add_row(variant, round(total * 1e6, 1), f"{full / total:.2f}x")
    print(table.render())
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    timing = TimingModel()
    profile = WorkloadProfile()
    table = Table(
        ["variant", "latency (ms)", "sustains rate"],
        title=f"tracking latency @ {args.fps:g} FPS",
    )
    for variant in VARIANTS:
        lat = timing.tracking_latency(variant, profile, args.fps)
        table.add_row(
            variant,
            round(lat.total * 1e3, 2),
            str(timing.schedule_feasible(variant, profile, args.fps)),
        )
    print(table.render())
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    report = AreaModel().estimate(400, 640)
    table = Table(["component", "mm^2"], title="area (640x400, 5 um pitch)")
    table.add_row("pixel array", round(report.pixel_array_mm2, 2))
    table.add_row("in-sensor NPU", report.in_sensor_npu_mm2)
    table.add_row("output buffer + RLE", report.output_buffer_mm2)
    table.add_row("TOTAL", round(report.total_mm2, 2))
    print(table.render())
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    budget = HeadsetBudget()
    table = Table(
        ["variant", "power (mW, 2 eyes)", "budget share"],
        title=f"headset budget @ {args.fps:g} FPS",
    )
    for variant in VARIANTS:
        report = budget.report(variant, args.fps)
        table.add_row(
            variant,
            round(report.power_w * 1e3, 1),
            f"{report.budget_fraction:.1%}",
        )
    print(table.render())
    return 0


def _cmd_sweep_fps(args: argparse.Namespace) -> int:
    model = SystemEnergyModel()
    profile = WorkloadProfile()
    table = Table(["FPS", "BlissCam saving"], title="saving vs frame rate")
    for fps in (30, 60, 120, 240, 500):
        table.add_row(
            fps,
            f"{model.savings_over('NPU-Full', 'BlissCam', profile, fps):.2f}x",
        )
    print(table.render())
    return 0


def _cmd_sweep_node(args: argparse.Namespace) -> int:
    base = SystemEnergyModel()
    profile = WorkloadProfile()
    table = Table(
        ["logic node", "7 nm SoC", "22 nm SoC"], title="saving vs process node"
    )
    for logic in (16, 22, 40, 65):
        row = []
        for soc in (7, 22):
            model = base.with_nodes(
                ProcessNodes(sensor_logic_nm=logic, host_nm=soc)
            )
            row.append(
                f"{model.savings_over('NPU-Full', 'BlissCam', profile, args.fps):.2f}x"
            )
        table.add_row(f"{logic} nm", *row)
    print(table.render())
    return 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "throughput": _cmd_throughput,
    "energy": _cmd_energy,
    "latency": _cmd_latency,
    "area": _cmd_area,
    "power": _cmd_power,
    "sweep-fps": _cmd_sweep_fps,
    "sweep-node": _cmd_sweep_node,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BlissCam reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        cmd = sub.add_parser(name)
        cmd.add_argument("--fps", type=float, default=120.0)
        if name == "throughput":
            cmd.add_argument(
                "--workers",
                type=int,
                default=0,
                help="also time the sharded mode over N worker processes "
                "(0 disables; >= 2 shards the sequence rank)",
            )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
