"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``run``          execute a declarative experiment spec (JSON file);
                 ``--store DIR`` attaches a persistent artifact store and
                 ``--resume`` replays completed work from it bitwise
                 (``--backend`` overrides ``execution.backend``)
``quickstart``   train + evaluate the end-to-end pipeline (CI scale;
                 ``--train-batch-size``/``--grad-accum`` select the
                 training-runtime schedule, see docs/training.md)
``serve``        streaming multi-client serving with cross-client
                 micro-batching (``--workers N`` partitions the fleet
                 into scheduler replicas; see docs/serving.md)
``throughput``   staged-engine frames/sec: sequential vs batched lockstep
                 (``--workers N`` also times the sharded multi-process mode)
``energy``       per-frame energy breakdown of the four variants
``latency``      tracking-latency breakdown of the four variants
``area``         Sec. VI-D area estimate
``power``        headset power-budget report
``sweep-fps``    energy saving vs frame rate
``sweep-node``   energy saving vs process nodes
``lint``         static determinism & cross-process-safety checks
                 (REP101-REP108, see docs/linting.md; gating in CI)
``store``        inspect/maintain a persistent artifact store
                 (``ls``/``rm``/``gc``; see docs/architecture.md)
``trace``        inspect an exported run trace (``summary``/``export``
                 ``--perfetto``/``diff``; see docs/observability.md)

Every subcommand is a thin *spec builder*: it assembles an
:class:`~repro.api.ExperimentSpec` and hands it to one
:class:`~repro.api.Session` — the same front door ``repro run
<spec.json>`` exposes directly, and the same code path the benchmarks
and examples use.  ``--json <path>`` writes the uniform
:class:`~repro.api.RunResult` serialization; all hardware commands
accept ``--fps`` (default 120).

Exit codes: 0 success, 2 spec-validation error (1 is reserved for
workload-reported failures, e.g. a bitwise-equivalence miss in
``throughput``).  ``lint`` follows the same convention: 0 clean, 1
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import ExperimentSpec, Session, SpecError

__all__ = ["main"]


def _spec_run(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec.from_file(args.spec)


def _spec_quickstart(args: argparse.Namespace) -> ExperimentSpec:
    training: dict = {}
    # None = flag not passed (keep the preset's value); an explicit
    # `--train-batch-size 1` is a real override, not a no-op.
    if args.train_batch_size is not None:
        training["batch_size"] = args.train_batch_size
    if args.grad_accum:
        training["grad_accum"] = True
    spec: dict = {"workload": "evaluate"}
    if training:
        spec["training"] = training
    return ExperimentSpec.from_dict(spec)


def _spec_serve(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "workload": "serve",
            # A small tracker is enough to exercise the serving runtime;
            # the scenario knobs are what the subcommand parameterizes.
            "dataset": {
                "num_sequences": 3,
                "frames_per_sequence": 8,
                "dynamics": "lively",
            },
            "training": {"train_indices": [0, 1], "epochs": 2},
            "execution": {
                "serve": {
                    "num_clients": args.clients,
                    "duration_ticks": args.ticks,
                    "arrival": args.arrival,
                    "deadline_policy": args.deadline_policy,
                    **(
                        {"max_batch": args.max_batch}
                        if args.max_batch
                        else {}
                    ),
                }
            },
        }
    )


def _spec_throughput(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "workload": "throughput",
            "dataset": {"num_sequences": 10, "frames_per_sequence": 10},
            "training": {"train_indices": [0, 1]},
            "execution": {
                "repeats": 1,
                "eval_indices": list(range(2, 10)),
            },
        }
    )


def _hardware_spec(workload: str):
    def build(args: argparse.Namespace) -> ExperimentSpec:
        return ExperimentSpec.from_dict(
            {"workload": workload, "execution": {"fps": args.fps}}
        )

    return build


_SPEC_BUILDERS = {
    "run": _spec_run,
    "quickstart": _spec_quickstart,
    "serve": _spec_serve,
    "throughput": _spec_throughput,
    "energy": _hardware_spec("energy"),
    "latency": _hardware_spec("latency"),
    "area": _hardware_spec("area"),
    "power": _hardware_spec("power"),
    "sweep-fps": _hardware_spec("fps_sweep"),
    "sweep-node": _hardware_spec("node_sweep"),
}

#: Workloads that train a pipeline before producing output (announce it,
#: or the terminal sits silent for the whole joint training).
_TRAINING_WORKLOADS = {"evaluate", "strategy_sweep", "throughput", "serve"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BlissCam reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _SPEC_BUILDERS:
        cmd = sub.add_parser(name)
        cmd.add_argument(
            "--json",
            metavar="PATH",
            default=None,
            help="write the RunResult (shared serializer) to this path",
        )
        if name == "run":
            cmd.add_argument("spec", help="path to an ExperimentSpec JSON file")
            cmd.add_argument(
                "--workers",
                type=int,
                default=None,
                help="override the spec's execution.workers",
            )
            cmd.add_argument(
                "--backend",
                default=None,
                help="override the spec's execution.backend "
                "(process_pool / thread / file_queue / in_process)",
            )
            cmd.add_argument(
                "--store",
                metavar="DIR",
                default=None,
                help="attach a persistent artifact store: trained "
                "pipelines, per-strategy trainings and the RunResult "
                "are written through to this directory",
            )
            cmd.add_argument(
                "--resume",
                action="store_true",
                help="replay completed work from --store instead of "
                "recomputing it (byte-identical results; "
                "provenance.cache_hits records what was skipped)",
            )
            cmd.add_argument(
                "--trace",
                metavar="PATH",
                nargs="?",
                const=True,
                default=None,
                help="record a repro.obs trace of the run (JSONL sink; "
                "default sink trace-<spec_hash>.jsonl, or give a path); "
                "inspect it with `repro trace`",
            )
            continue
        if name == "serve":
            cmd.add_argument(
                "--clients", type=int, default=4,
                help="concurrent client eye-streams (default 4)",
            )
            cmd.add_argument(
                "--ticks", type=int, default=12,
                help="virtual-clock frame periods to simulate (default 12)",
            )
            cmd.add_argument(
                "--arrival", default="uniform",
                choices=("uniform", "poisson", "trace"),
                help="client arrival process",
            )
            cmd.add_argument(
                "--deadline-policy", default="drop",
                choices=("drop", "best_effort"),
                help="shed doomed frames, or serve them late",
            )
            cmd.add_argument(
                "--max-batch", type=int, default=0,
                help="host micro-batch capacity per tick (0 = unbounded)",
            )
            cmd.add_argument(
                "--workers", type=int, default=0,
                help="partition the fleet into N scheduler replicas "
                "(0/1 = one scheduler)",
            )
            continue
        if name == "quickstart":
            cmd.add_argument(
                "--train-batch-size", type=int, default=None,
                help="frame pairs per training rank / Adam step (default: "
                "the preset's, 1 — the paper-faithful per-frame stepping; "
                "> 1 batches the joint training, a documented semantic "
                "change)",
            )
            cmd.add_argument(
                "--grad-accum", action="store_true",
                help="data-parallel training schedule: accumulate each "
                "epoch's gradients (fixed reduction order) and take one "
                "Adam step per epoch",
            )
        cmd.add_argument("--fps", type=float, default=120.0)
        if name == "throughput":
            cmd.add_argument(
                "--workers",
                type=int,
                default=0,
                help="also time the sharded mode over N worker processes "
                "(0 disables; >= 2 shards the sequence rank)",
            )
    # Registered for `repro --help` discoverability only; main()
    # dispatches `lint` to the linter's own parser before parsing here.
    sub.add_parser(
        "lint",
        add_help=False,
        help="static determinism checks (REP101-REP108); "
        "see `repro lint --help`",
    )
    sub.add_parser(
        "store",
        add_help=False,
        help="artifact-store maintenance (ls/rm/gc); "
        "see `repro store --help`",
    )
    sub.add_parser(
        "trace",
        add_help=False,
        help="trace inspection (summary/export/diff); "
        "see `repro trace --help`",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # The linter is spec-free: its own parser, its own exit codes
        # (0 clean / 1 findings / 2 usage error — same convention).
        from repro.analysis.lint import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "store":
        # Store maintenance is spec-free too: its own parser/exit codes.
        from repro.store.cli import main as store_main

        return store_main(argv[1:])
    if argv and argv[0] == "trace":
        # Trace inspection works on exported files, not specs.
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        spec = _SPEC_BUILDERS[args.command](args)
        workers = getattr(args, "workers", None)
        backend = getattr(args, "backend", None)
        if workers or backend:  # None or 0 keep the spec's value
            # Re-validate: the override must fail here (exit 2), not as
            # a traceback out of Session.run.
            spec = (
                spec.with_workers(workers or None)
                .with_backend(backend)
                .validate()
            )
        trace = getattr(args, "trace", None)
        if trace is not None:  # --trace or --trace PATH
            spec = spec.with_trace(
                sink=None if trace is True else trace
            ).validate()
        store = getattr(args, "store", None)
        if getattr(args, "resume", False) and not store:
            print(
                "spec error: --resume needs --store (nowhere to resume "
                "from)",
                file=sys.stderr,
            )
            return 2
    except (SpecError, OSError) as exc:
        print(f"spec error: {exc}", file=sys.stderr)
        return 2
    with Session(
        store=store, resume=getattr(args, "resume", False)
    ) as session:
        if spec.workload in _TRAINING_WORKLOADS:
            print("training...")
        result = session.run(spec)
    print(result.render_tables())
    trace_info = result.provenance.get("trace")
    if trace_info and "path" in trace_info:
        print(
            f"trace written: {trace_info['path']} "
            f"({trace_info['spans']} spans)"
        )
    if args.json:
        result.write_json(args.json)
    if spec.workload == "throughput":
        record = result.metrics
        modes = "batched/sharded" if "sharded_s" in record else "batched"
        print(f"{modes} == sequential (bitwise): {record['bitwise_identical']}")
        return 0 if record["bitwise_identical"] else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
