"""Image-sensor noise model: photon shot noise, read noise, quantization.

Follows the classic analytical treatment the paper cites (Sec. V,
"Experimental Methodology"): the clean frame is interpreted as normalized
irradiance, scaled by exposure into an expected photo-electron count, and
the measured count is drawn from a Poisson distribution — so the SNR grows
as the square root of exposure time and "drops quadratically" as exposure
shrinks (Sec. II-C).  Gaussian read noise and 10-bit ADC quantization (the
paper's DPS stores 10-bit pixel values) are applied on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SensorNoiseModel", "NoiseConfig", "exposure_for_fps"]

#: Fraction of the frame period spent exposing (the remainder covers readout
#: and, for BlissCam, the in-sensor stages — see the timing model).
DEFAULT_EXPOSURE_DUTY = 0.996


def exposure_for_fps(fps: float, duty: float = DEFAULT_EXPOSURE_DUTY) -> float:
    """Exposure time (seconds) available at a given frame rate.

    At 120 FPS with the default duty this is ~8.3 ms, the paper's number.
    """
    if fps <= 0:
        raise ValueError(f"fps must be positive: {fps}")
    return duty / fps


@dataclass(frozen=True)
class NoiseConfig:
    """Physical parameters of the simulated sensor."""

    #: Expected photo-electrons at full-scale signal for a 1-second exposure.
    #: Sized so that at 120 FPS (8.3 ms) full scale collects ~4000 e-,
    #: a typical small-pixel full-well operating point.
    electrons_per_second_full_scale: float = 480_000.0
    #: RMS read noise in electrons (paper cites 2.45 e- rms sensors).
    read_noise_electrons: float = 2.45
    #: ADC bit depth (the DPS uses per-pixel 10-bit SRAM).
    bit_depth: int = 10


class SensorNoiseModel:
    """Apply exposure-dependent sensor noise to clean frames."""

    def __init__(self, config: NoiseConfig | None = None, seed: int = 0):
        self.config = config or NoiseConfig()
        self.rng = np.random.default_rng(seed)

    def snr_db(self, signal_level: float, exposure_s: float) -> float:
        """Shot-noise-limited SNR (dB) at a given normalized signal level."""
        cfg = self.config
        electrons = signal_level * cfg.electrons_per_second_full_scale * exposure_s
        if electrons <= 0:
            return -np.inf
        noise = np.sqrt(electrons + cfg.read_noise_electrons**2)
        return float(20 * np.log10(electrons / noise))

    def apply(self, clean: np.ndarray, exposure_s: float) -> np.ndarray:
        """Return a noisy, quantized frame in [0, 1].

        Parameters
        ----------
        clean:
            Normalized irradiance frame in [0, 1].
        exposure_s:
            Exposure time in seconds; shorter exposures collect fewer
            photons and are therefore noisier.
        """
        if exposure_s <= 0:
            raise ValueError(f"exposure must be positive: {exposure_s}")
        cfg = self.config
        full_scale = cfg.electrons_per_second_full_scale * exposure_s
        expected = np.clip(clean, 0.0, 1.0) * full_scale
        # Poisson shot noise; for large means numpy's Poisson is exact and
        # fast enough at our resolutions.
        counts = self.rng.poisson(expected).astype(np.float64)
        counts += self.rng.normal(0.0, cfg.read_noise_electrons, size=counts.shape)
        normalized = np.clip(counts / full_scale, 0.0, 1.0)
        # 10-bit quantization (per-pixel SS ADC).
        levels = 2**cfg.bit_depth - 1
        return np.round(normalized * levels) / levels

    def quantize(self, frame: np.ndarray) -> np.ndarray:
        """Quantize without adding noise (used by digital-domain variants)."""
        levels = 2**self.config.bit_depth - 1
        return np.round(np.clip(frame, 0.0, 1.0) * levels) / levels
