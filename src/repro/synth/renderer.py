"""Rasterizer: eye geometry + state -> IR frame + ground-truth labels.

Produces, for each :class:`~repro.synth.eye_model.EyeState`:

* a grayscale intensity frame in ``[0, 1]`` (pre-noise, "clean" signal),
* a per-pixel segmentation map with the OpenEDS four-class convention
  (background / sclera / iris / pupil),
* the ground-truth gaze vector and foreground bounding box.

The renderer is fully vectorized over the pixel grid and deterministic
given the subject seed, so datasets are reproducible.  The *background*
texture (skin around the eye) is generated once per subject and never
moves — this is the stationarity property the eventification stage relies
on (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.eye_model import SEG_CLASSES, EyeGeometry, EyeState

__all__ = ["RenderedFrame", "EyeRenderer"]

# Base reflectances of the eye regions under IR illumination.  The pupil is
# dark (IR absorbed through the aperture), the iris mid-gray, the sclera
# bright; skin sits between iris and sclera.
_ALBEDO = {"pupil": 0.06, "iris": 0.35, "sclera": 0.82, "skin": 0.55}
_GLINT_INTENSITY = 1.0
_EDGE_SOFTNESS = 0.35  # anti-aliasing width in pixels, as a fraction of height


@dataclass
class RenderedFrame:
    """One rendered frame with its ground truth."""

    image: np.ndarray  # (H, W) float in [0, 1], clean signal
    segmentation: np.ndarray  # (H, W) int labels per SEG_CLASSES
    gaze: tuple[float, float]  # (horizontal, vertical) degrees
    state: EyeState
    #: Ground-truth foreground bounding box (row0, col0, row1, col1),
    #: inclusive-exclusive, or None when the eye is fully occluded.
    roi_box: tuple[int, int, int, int] | None


class EyeRenderer:
    """Rasterize frames for one subject at a fixed resolution."""

    def __init__(
        self,
        geometry: EyeGeometry,
        height: int,
        width: int,
        rng: np.random.Generator,
    ):
        if height < 8 or width < 8:
            raise ValueError(f"resolution too small: {height}x{width}")
        self.geometry = geometry
        self.height = height
        self.width = width
        rows, cols = np.mgrid[0:height, 0:width]
        # Normalized coordinates: everything in the geometry is a fraction
        # of the image height so shapes stay round on non-square frames.
        self._nr = (rows + 0.5) / height
        self._nc = (cols + 0.5) / height
        self._aspect = width / height
        self._background = self._make_background(rng)

    def _make_background(self, rng: np.random.Generator) -> np.ndarray:
        """Static smooth skin texture: low-frequency random field."""
        coarse = rng.normal(0.0, 1.0, size=(8, 8))
        # Bilinear upsample to full resolution (separable interpolation).
        ys = np.linspace(0, 7, self.height)
        xs = np.linspace(0, 7, self.width)
        yi = np.clip(ys.astype(int), 0, 6)
        xi = np.clip(xs.astype(int), 0, 6)
        fy = (ys - yi)[:, None]
        fx = (xs - xi)[None, :]
        c00 = coarse[yi][:, xi]
        c01 = coarse[yi][:, xi + 1]
        c10 = coarse[yi + 1][:, xi]
        c11 = coarse[yi + 1][:, xi + 1]
        smooth = (
            c00 * (1 - fy) * (1 - fx)
            + c01 * (1 - fy) * fx
            + c10 * fy * (1 - fx)
            + c11 * fy * fx
        )
        texture = _ALBEDO["skin"] * (1.0 + 0.12 * smooth)
        return np.clip(texture, 0.0, 1.0)

    @staticmethod
    def _soft_disc(dist2: np.ndarray, radius: float, soft: float) -> np.ndarray:
        """Anti-aliased disc coverage in [0, 1] from squared distances."""
        dist = np.sqrt(np.maximum(dist2, 0.0))
        return np.clip((radius + soft - dist) / (2 * soft + 1e-12), 0.0, 1.0)

    def render(self, state: EyeState) -> RenderedFrame:
        """Render one frame for the given eye state."""
        geo = self.geometry
        nr, nc = self._nr, self._nc
        soft = _EDGE_SOFTNESS / self.height

        image = self._background.copy()
        seg = np.full((self.height, self.width), SEG_CLASSES["background"], dtype=np.int64)

        # -- eye opening (sclera ellipse), shrunk vertically by the eyelids --
        aperture = state.lid_aperture * geo.lid_open
        av = max(geo.sclera_axes[0] * aperture, 1e-6)
        ah = geo.sclera_axes[1]
        dr = nr - geo.center[0]
        dc = nc - geo.center[1]
        sclera_d2 = (dr / av) ** 2 + (dc / ah) ** 2
        # Coverage via normalized radial distance; softness scaled to axes.
        sclera_cov = np.clip(
            (1.0 - np.sqrt(sclera_d2)) / (soft / min(av, ah)) + 0.5, 0.0, 1.0
        )
        open_mask = sclera_cov > 0.5

        if aperture > 0.02 and open_mask.any():
            image = np.where(open_mask, _ALBEDO["sclera"], image)
            seg[open_mask] = SEG_CLASSES["sclera"]

            # -- iris disc, foreshortened by gaze eccentricity --
            pr, pc = geo.pupil_center(state.gaze_h, state.gaze_v)
            fv, fh = geo.foreshortening(state.gaze_h, state.gaze_v)
            ir_v = geo.iris_radius * fv
            ir_h = geo.iris_radius * fh
            iris_d2 = ((nr - pr) / ir_v) ** 2 + ((nc - pc) / ir_h) ** 2
            iris_cov = self._soft_disc(iris_d2, 1.0, soft / geo.iris_radius)
            iris_mask = (iris_cov > 0.5) & open_mask
            image = np.where(iris_mask, _ALBEDO["iris"], image)
            seg[iris_mask] = SEG_CLASSES["iris"]

            # -- pupil disc --
            pu_r = geo.pupil_radius * state.dilation
            pu_v = pu_r * fv
            pu_h = pu_r * fh
            pupil_d2 = ((nr - pr) / pu_v) ** 2 + ((nc - pc) / pu_h) ** 2
            pupil_cov = self._soft_disc(pupil_d2, 1.0, soft / pu_r)
            pupil_mask = (pupil_cov > 0.5) & open_mask
            image = np.where(pupil_mask, _ALBEDO["pupil"], image)
            seg[pupil_mask] = SEG_CLASSES["pupil"]

            # -- corneal glints (bright IR LED reflections) --
            # Glints ride on the cornea: they shift by a fraction of the
            # pupil displacement.
            shift_r = 0.3 * (pr - geo.center[0])
            shift_c = 0.3 * (pc - geo.center[1])
            for g_dr, g_dc in geo.glints:
                gr = geo.center[0] + g_dr + shift_r
                gc = geo.center[1] + g_dc + shift_c
                glint_d2 = (nr - gr) ** 2 + (nc - gc) ** 2
                glint_cov = self._soft_disc(glint_d2, geo.glint_radius, soft)
                glint_on = (glint_cov > 0.5) & open_mask
                image = np.where(glint_on, _GLINT_INTENSITY, image)
                # Glints keep the label of what they cover (sensor artifact).

        roi_box = self._roi_from_segmentation(seg)
        return RenderedFrame(
            image=np.clip(image, 0.0, 1.0),
            segmentation=seg,
            gaze=(state.gaze_h, state.gaze_v),
            state=state,
            roi_box=roi_box,
        )

    @staticmethod
    def _roi_from_segmentation(seg: np.ndarray) -> tuple[int, int, int, int] | None:
        """Tight bounding box of the non-background pixels."""
        fg_rows, fg_cols = np.nonzero(seg != SEG_CLASSES["background"])
        if fg_rows.size == 0:
            return None
        return (
            int(fg_rows.min()),
            int(fg_cols.min()),
            int(fg_rows.max()) + 1,
            int(fg_cols.max()) + 1,
        )
