"""Oculomotor dynamics: fixations, saccades, smooth pursuit, and blinks.

The generator reproduces the statistics that motivate the paper's system
requirements (Sec. II-A): saccades reach up to ~700 deg/s, which is why a
120 Hz tracking rate is needed, and blinks are the corner case where the
event map stops being indicative of the foreground (Sec. III-A, hence the
previous-segmentation-map feedback into the ROI predictor).

The model is a continuous-time state machine sampled at the camera frame
rate:

* **fixation** — gaze holds with small ocular drift + tremor;
* **saccade**  — a ballistic jump following the *main sequence*: peak
  velocity grows with amplitude and saturates near 700 deg/s, with a
  minimum-jerk velocity profile;
* **pursuit**  — occasional smooth motion at 10-30 deg/s;
* **blink**    — the eyelid closes and reopens over ~150-300 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.eye_model import EyeGeometry, EyeState

__all__ = ["GazeDynamicsConfig", "GazeSequenceGenerator", "main_sequence_peak_velocity"]


def main_sequence_peak_velocity(amplitude_deg: float) -> float:
    """Peak saccade velocity (deg/s) for a given amplitude (deg).

    The classic main-sequence fit ``V = Vmax * (1 - exp(-A / c))`` with
    ``Vmax = 700`` deg/s (the figure quoted in Sec. II-A) and ``c = 11``
    degrees, matching published oculomotor data to first order.
    """
    return 700.0 * (1.0 - np.exp(-amplitude_deg / 11.0))


@dataclass(frozen=True)
class GazeDynamicsConfig:
    """Tunable statistics of the synthetic gaze traces."""

    #: Mean fixation duration, seconds.
    fixation_mean_s: float = 0.30
    #: Fixation drift RMS, deg/s.
    drift_rms: float = 0.8
    #: Tremor amplitude, degrees.
    tremor_amp: float = 0.05
    #: Probability that a movement is a smooth pursuit instead of a saccade.
    pursuit_prob: float = 0.15
    #: Pursuit speed range, deg/s.
    pursuit_speed: tuple[float, float] = (10.0, 30.0)
    #: Blink rate, blinks per second (~15-20 per minute for humans).
    blink_rate_hz: float = 0.28
    #: Blink total duration range, seconds.
    blink_duration_s: tuple[float, float] = (0.15, 0.30)
    #: Saccade amplitude range, degrees.
    saccade_amplitude: tuple[float, float] = (2.0, 20.0)


class GazeSequenceGenerator:
    """Generate frame-rate samples of :class:`EyeState` for one recording.

    Parameters
    ----------
    geometry:
        Subject geometry; gaze targets stay within its valid cone.
    fps:
        Camera frame rate; one state is emitted per frame.
    config:
        Dynamics statistics.
    rng:
        Random generator; a fixed seed reproduces the exact trace.
    """

    def __init__(
        self,
        geometry: EyeGeometry,
        fps: float,
        rng: np.random.Generator,
        config: GazeDynamicsConfig | None = None,
    ):
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        self.geometry = geometry
        self.fps = fps
        self.dt = 1.0 / fps
        self.config = config or GazeDynamicsConfig()
        self.rng = rng
        self._gaze = np.array([0.0, 0.0])  # (h, v) degrees
        self._dilation = float(rng.uniform(0.85, 1.15))
        self._mode = "fixation"
        self._mode_left_s = float(rng.exponential(self.config.fixation_mean_s))
        self._saccade_plan: tuple[np.ndarray, np.ndarray, float, float] | None = None
        self._pursuit_velocity = np.zeros(2)
        self._blink_left_s = 0.0
        self._blink_total_s = 0.0

    # -- internal transitions -------------------------------------------------
    def _pick_target(self) -> np.ndarray:
        limit = 0.9 * self.geometry.max_angle_deg
        cfg = self.config
        for _ in range(16):
            amp = self.rng.uniform(*cfg.saccade_amplitude)
            direction = self.rng.uniform(0, 2 * np.pi)
            target = self._gaze + amp * np.array(
                [np.cos(direction), np.sin(direction)]
            )
            if np.all(np.abs(target) <= limit):
                return target
        return np.clip(target, -limit, limit)

    def _start_movement(self) -> None:
        cfg = self.config
        if self.rng.random() < cfg.pursuit_prob:
            self._mode = "pursuit"
            speed = self.rng.uniform(*cfg.pursuit_speed)
            direction = self.rng.uniform(0, 2 * np.pi)
            self._pursuit_velocity = speed * np.array(
                [np.cos(direction), np.sin(direction)]
            )
            self._mode_left_s = float(self.rng.uniform(0.3, 1.0))
        else:
            self._mode = "saccade"
            start = self._gaze.copy()
            target = self._pick_target()
            amplitude = float(np.linalg.norm(target - start))
            peak_v = main_sequence_peak_velocity(amplitude)
            # Minimum-jerk profile: duration such that mean velocity is
            # 0.5 * peak (property of the minimum-jerk position curve is
            # peak velocity = 1.875 * mean; 0.5 is a serviceable approx).
            duration = max(2 * self.dt, 1.875 * amplitude / max(peak_v, 1e-9))
            self._saccade_plan = (start, target, duration, 0.0)

    def _start_blink(self) -> None:
        cfg = self.config
        self._blink_total_s = float(self.rng.uniform(*cfg.blink_duration_s))
        self._blink_left_s = self._blink_total_s

    # -- public API -----------------------------------------------------------
    def step(self) -> EyeState:
        """Advance one frame interval and return the new eye state."""
        cfg = self.config
        dt = self.dt
        in_saccade = False

        tremor = np.zeros(2)
        if self._mode == "fixation":
            drift = self.rng.normal(0.0, cfg.drift_rms * np.sqrt(dt), size=2)
            # Tremor perturbs the emitted sample but not the persistent state.
            tremor = self.rng.normal(0.0, cfg.tremor_amp, size=2)
            self._gaze = self._gaze + drift
            self._mode_left_s -= dt
            if self._mode_left_s <= 0:
                self._start_movement()
        elif self._mode == "pursuit":
            self._gaze = self._gaze + self._pursuit_velocity * dt
            limit = 0.95 * self.geometry.max_angle_deg
            if np.any(np.abs(self._gaze) > limit):
                self._gaze = np.clip(self._gaze, -limit, limit)
                self._mode_left_s = 0.0
            self._mode_left_s -= dt
            if self._mode_left_s <= 0:
                self._mode = "fixation"
                self._mode_left_s = float(self.rng.exponential(cfg.fixation_mean_s))
        elif self._mode == "saccade":
            start, target, duration, elapsed = self._saccade_plan
            elapsed += dt
            tau = min(elapsed / duration, 1.0)
            # Minimum-jerk position profile.
            s = 10 * tau**3 - 15 * tau**4 + 6 * tau**5
            self._gaze = start + s * (target - start)
            in_saccade = tau < 1.0
            if tau >= 1.0:
                self._mode = "fixation"
                self._mode_left_s = float(self.rng.exponential(cfg.fixation_mean_s))
                self._saccade_plan = None
            else:
                self._saccade_plan = (start, target, duration, elapsed)

        # Blinks are superimposed on whatever the gaze is doing.
        if self._blink_left_s > 0:
            self._blink_left_s -= dt
            phase = 1.0 - self._blink_left_s / self._blink_total_s
            # Triangular close/open profile.
            aperture = abs(2 * phase - 1.0)
            in_blink = True
        else:
            aperture = 1.0
            in_blink = False
            if self.rng.random() < cfg.blink_rate_hz * dt:
                self._start_blink()

        # Slow pupil dilation random walk.
        self._dilation = float(
            np.clip(self._dilation + self.rng.normal(0, 0.01 * np.sqrt(dt)), 0.7, 1.3)
        )

        state = EyeState(
            gaze_h=float(self._gaze[0] + tremor[0]),
            gaze_v=float(self._gaze[1] + tremor[1]),
            dilation=self._dilation,
            lid_aperture=float(aperture),
            in_saccade=in_saccade,
            in_blink=in_blink,
        )
        return state.clipped(self.geometry)

    def generate(self, num_frames: int) -> list[EyeState]:
        """Emit ``num_frames`` consecutive states."""
        if num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        return [self.step() for _ in range(num_frames)]
