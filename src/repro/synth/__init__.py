"""Synthetic near-eye imagery: the offline substitution for OpenEDS.

Provides a parametric eye model, oculomotor gaze dynamics (fixations,
saccades up to ~700 deg/s, blinks), a deterministic rasterizer producing
frames + segmentation maps + gaze labels, and a physical sensor noise model
(photon shot noise scaling with exposure time).
"""

from repro.synth.dataset import DatasetConfig, EyeSequence, SyntheticEyeDataset
from repro.synth.eye_model import NUM_CLASSES, SEG_CLASSES, EyeGeometry, EyeState
from repro.synth.gaze_dynamics import (
    GazeDynamicsConfig,
    GazeSequenceGenerator,
    main_sequence_peak_velocity,
)
from repro.synth.noise import NoiseConfig, SensorNoiseModel, exposure_for_fps
from repro.synth.openeds_adapter import OpenEDSAdapter, write_sequence_archive
from repro.synth.renderer import EyeRenderer, RenderedFrame

__all__ = [
    "EyeGeometry",
    "EyeState",
    "SEG_CLASSES",
    "NUM_CLASSES",
    "GazeDynamicsConfig",
    "GazeSequenceGenerator",
    "main_sequence_peak_velocity",
    "EyeRenderer",
    "RenderedFrame",
    "NoiseConfig",
    "SensorNoiseModel",
    "exposure_for_fps",
    "DatasetConfig",
    "EyeSequence",
    "SyntheticEyeDataset",
    "OpenEDSAdapter",
    "write_sequence_archive",
]
