"""Synthetic near-eye dataset: sequences of frames with full ground truth.

The public-data substitution for OpenEDS (DESIGN.md §2).  A *sequence* is
one simulated recording of one subject: consecutive frames at a fixed FPS
with per-frame segmentation maps, gaze vectors, foreground boxes, and the
oculomotor state (saccade/blink flags) used to stress corner cases.

Frames carry sensor noise appropriate to the exposure time implied by the
frame rate, so accuracy-vs-frame-rate sensitivity (Fig. 16) exercises the
same SNR mechanism as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.synth.eye_model import NUM_CLASSES, EyeGeometry
from repro.synth.gaze_dynamics import GazeDynamicsConfig, GazeSequenceGenerator
from repro.synth.noise import NoiseConfig, SensorNoiseModel, exposure_for_fps
from repro.synth.renderer import EyeRenderer, RenderedFrame

__all__ = ["SyntheticEyeDataset", "EyeSequence", "DatasetConfig"]


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of the synthetic dataset."""

    height: int = 64
    width: int = 64
    fps: float = 120.0
    frames_per_sequence: int = 24
    num_sequences: int = 4
    seed: int = 0
    #: Scale of the eye relative to the frame (camera distance); 1.0 fills
    #: most of the frame, ~0.6 matches the paper's foreground fraction.
    eye_scale: float = 1.0
    #: Exposure override in seconds.  None derives exposure from ``fps``;
    #: setting it decouples the SNR (exposure-driven shot noise) from the
    #: oculomotor timescale — used by the Fig. 16 frame-rate sensitivity,
    #: which sweeps exposure while holding the gaze dynamics fixed.
    exposure_s: float | None = None
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    dynamics: GazeDynamicsConfig = field(default_factory=GazeDynamicsConfig)
    #: When False, frames are returned clean (useful for unit tests).
    apply_noise: bool = True


@dataclass
class EyeSequence:
    """One recording: stacked arrays over ``T`` frames."""

    frames: np.ndarray  # (T, H, W) noisy frames in [0, 1]
    clean_frames: np.ndarray  # (T, H, W) pre-noise signal
    segmentations: np.ndarray  # (T, H, W) int labels
    gazes: np.ndarray  # (T, 2) (horizontal, vertical) degrees
    roi_boxes: list[tuple[int, int, int, int] | None]
    saccade_flags: np.ndarray  # (T,) bool
    blink_flags: np.ndarray  # (T,) bool
    geometry: EyeGeometry
    fps: float

    def __len__(self) -> int:
        return self.frames.shape[0]

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES


class SyntheticEyeDataset:
    """Reproducible collection of :class:`EyeSequence` recordings.

    Sequences are generated lazily and cached; sequence ``i`` is fully
    determined by ``(config.seed, i)`` so train/validation splits by index
    are stable across runs.
    """

    def __init__(self, config: DatasetConfig | None = None):
        self.config = config or DatasetConfig()
        if self.config.frames_per_sequence < 2:
            raise ValueError("sequences need at least 2 frames for eventification")
        self._cache: dict[int, EyeSequence] = {}
        self._roi_fraction_cache: dict[int, float | None] = {}

    def __len__(self) -> int:
        return self.config.num_sequences

    def __getitem__(self, index: int) -> EyeSequence:
        if not 0 <= index < len(self):
            raise IndexError(index)
        if index not in self._cache:
            self._cache[index] = self._generate(index)
        return self._cache[index]

    def is_materialized(self, index: int) -> bool:
        """Whether sequence ``index`` has already been generated.

        A materialized sequence may have been mutated in place by the
        caller (tests simulate occlusions that way), so consumers that
        re-render from ``(config.seed, index)`` instead of shipping the
        cached object — the sharded training runtime — only do so for
        indices that are still un-materialized here.
        """
        return index in self._cache

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def _generate(self, index: int) -> EyeSequence:
        cfg = self.config
        rng = np.random.default_rng([cfg.seed, index])
        geometry = EyeGeometry.random(rng).scaled(cfg.eye_scale)
        renderer = EyeRenderer(geometry, cfg.height, cfg.width, rng)
        dynamics = GazeSequenceGenerator(geometry, cfg.fps, rng, cfg.dynamics)
        noise = SensorNoiseModel(cfg.noise, seed=int(rng.integers(0, 2**31)))
        exposure = (
            cfg.exposure_s if cfg.exposure_s is not None else exposure_for_fps(cfg.fps)
        )

        rendered: list[RenderedFrame] = [
            renderer.render(state) for state in dynamics.generate(cfg.frames_per_sequence)
        ]
        clean = np.stack([r.image for r in rendered])
        if cfg.apply_noise:
            frames = np.stack([noise.apply(img, exposure) for img in clean])
        else:
            frames = clean.copy()
        return EyeSequence(
            frames=frames,
            clean_frames=clean,
            segmentations=np.stack([r.segmentation for r in rendered]),
            gazes=np.array([r.gaze for r in rendered]),
            roi_boxes=[r.roi_box for r in rendered],
            saccade_flags=np.array([r.state.in_saccade for r in rendered]),
            blink_flags=np.array([r.state.in_blink for r in rendered]),
            geometry=geometry,
            fps=cfg.fps,
        )

    # -- convenience views ---------------------------------------------------
    def typical_roi_fraction(self, index: int = 0) -> float | None:
        """Mean ground-truth foreground-box fraction of sequence ``index``.

        Memoized: callers (sensor sizing, sampling-rate sweeps) ask for
        this repeatedly and the underlying sequence is already cached, so
        the reduction is computed once per index.  Returns None when the
        sequence has no foreground boxes (all-blink pathological case).
        """
        if index not in self._roi_fraction_cache:
            seq = self[index]
            total = self.config.height * self.config.width
            fractions = [
                (b[2] - b[0]) * (b[3] - b[1]) / total
                for b in seq.roi_boxes
                if b is not None
            ]
            self._roi_fraction_cache[index] = (
                float(np.mean(fractions)) if fractions else None
            )
        return self._roi_fraction_cache[index]

    def split(self, train_fraction: float = 0.75) -> tuple[list[int], list[int]]:
        """Deterministic train/validation split by sequence index."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        n_train = max(1, int(round(train_fraction * len(self))))
        n_train = min(n_train, len(self) - 1) if len(self) > 1 else n_train
        indices = list(range(len(self)))
        return indices[:n_train], indices[n_train:]

    def frame_pairs(self, indices: list[int] | None = None):
        """Yield ``(prev_frame, frame, seg, gaze, roi_box, seq_index, t)``.

        Consecutive-frame pairs are the unit the sampling pipeline consumes
        (eventification needs frame t-1 and t).
        """
        for seq_index in indices if indices is not None else range(len(self)):
            seq = self[seq_index]
            for t in range(1, len(seq)):
                yield (
                    seq.frames[t - 1],
                    seq.frames[t],
                    seq.segmentations[t],
                    seq.gazes[t],
                    seq.roi_boxes[t],
                    seq_index,
                    t,
                )
