"""Adapter for real OpenEDS-format recordings.

The reproduction trains on the synthetic generator, but a downstream user
with access to the actual OpenEDS dataset (Garbin et al. 2019) should be
able to drop it in.  This adapter reads a directory of per-sequence
``.npz`` archives and exposes the same :class:`~repro.synth.dataset`
sequence interface the rest of the library consumes, so pipelines,
strategy harnesses and benchmarks run unchanged on real data.

Expected archive layout (one ``.npz`` per recording)::

    frames          (T, H, W) uint8 or float in [0, 1]
    segmentations   (T, H, W) int   labels per SEG_CLASSES
    gazes           (T, 2)    float degrees (horizontal, vertical) —
                              optional; absent for OpenEDS-2019 splits
                              that ship segmentation labels only

Missing gaze labels are tolerated: gaze-dependent evaluations then need a
calibration set, exactly like a real deployment.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.synth.eye_model import SEG_CLASSES, EyeGeometry
from repro.synth.dataset import EyeSequence

__all__ = ["OpenEDSAdapter", "write_sequence_archive"]


def write_sequence_archive(
    path: str | os.PathLike,
    frames: np.ndarray,
    segmentations: np.ndarray,
    gazes: np.ndarray | None = None,
) -> None:
    """Write one recording in the adapter's archive format."""
    frames = np.asarray(frames)
    segmentations = np.asarray(segmentations)
    if frames.ndim != 3 or segmentations.shape != frames.shape:
        raise ValueError(
            f"frames {frames.shape} and segmentations {segmentations.shape} "
            "must be matching (T, H, W) stacks"
        )
    payload = {"frames": frames, "segmentations": segmentations}
    if gazes is not None:
        gazes = np.asarray(gazes)
        if gazes.shape != (frames.shape[0], 2):
            raise ValueError(f"gazes must be (T, 2), got {gazes.shape}")
        payload["gazes"] = gazes
    np.savez_compressed(path, **payload)


class OpenEDSAdapter:
    """Directory of ``.npz`` recordings -> the library's sequence API."""

    def __init__(self, root: str | os.PathLike, fps: float = 120.0):
        self.root = Path(root)
        if not self.root.is_dir():
            raise FileNotFoundError(f"no such dataset directory: {self.root}")
        self.fps = fps
        self._paths = sorted(self.root.glob("*.npz"))
        if not self._paths:
            raise FileNotFoundError(f"no .npz recordings under {self.root}")
        self._cache: dict[int, EyeSequence] = {}

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> EyeSequence:
        if not 0 <= index < len(self):
            raise IndexError(index)
        if index not in self._cache:
            self._cache[index] = self._load(self._paths[index])
        return self._cache[index]

    def _load(self, path: Path) -> EyeSequence:
        with np.load(path) as data:
            frames = data["frames"].astype(np.float64)
            if frames.max() > 1.0:
                frames = frames / 255.0
            segmentations = data["segmentations"].astype(np.int64)
            gazes = (
                data["gazes"].astype(np.float64)
                if "gazes" in data.files
                else np.full((frames.shape[0], 2), np.nan)
            )
        if frames.shape != segmentations.shape:
            raise ValueError(
                f"{path.name}: frames {frames.shape} != "
                f"segmentations {segmentations.shape}"
            )
        valid = (segmentations >= 0) & (segmentations < len(SEG_CLASSES))
        if not valid.all():
            raise ValueError(f"{path.name}: segmentation labels out of range")
        boxes = [self._roi_box(seg) for seg in segmentations]
        return EyeSequence(
            frames=frames,
            clean_frames=frames.copy(),
            segmentations=segmentations,
            gazes=gazes,
            roi_boxes=boxes,
            saccade_flags=np.zeros(frames.shape[0], dtype=bool),
            blink_flags=np.array(
                [b is None for b in boxes]
            ),  # fully occluded frames
            geometry=EyeGeometry(),  # unknown for real data; nominal
            fps=self.fps,
        )

    @staticmethod
    def _roi_box(seg: np.ndarray) -> tuple[int, int, int, int] | None:
        rows, cols = np.nonzero(seg != SEG_CLASSES["background"])
        if rows.size == 0:
            return None
        return (
            int(rows.min()),
            int(cols.min()),
            int(rows.max()) + 1,
            int(cols.max()) + 1,
        )

    # -- the subset of SyntheticEyeDataset's API the harnesses use ----------
    def split(self, train_fraction: float = 0.75) -> tuple[list[int], list[int]]:
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        n_train = max(1, int(round(train_fraction * len(self))))
        n_train = min(n_train, len(self) - 1) if len(self) > 1 else n_train
        indices = list(range(len(self)))
        return indices[:n_train], indices[n_train:]

    def frame_pairs(self, indices: list[int] | None = None):
        for seq_index in indices if indices is not None else range(len(self)):
            seq = self[seq_index]
            for t in range(1, len(seq)):
                yield (
                    seq.frames[t - 1],
                    seq.frames[t],
                    seq.segmentations[t],
                    seq.gazes[t],
                    seq.roi_boxes[t],
                    seq_index,
                    t,
                )
