"""Parametric geometric model of a near-eye camera view.

This is the core of the OpenEDS substitution (DESIGN.md §2): a simplified
but physically-motivated model of what a headset-mounted IR eye camera sees.
It captures exactly the properties BlissCam's algorithms exploit:

* the *background* (skin, eyelids at rest) is **static** — the camera is
  rigidly mounted relative to the face (Sec. III-A's key observation);
* the *foreground* (pupil, iris, sclera boundary, eyelids during blinks)
  moves with gaze and produces inter-frame intensity changes;
* the pupil position is a smooth, invertible function of the gaze angles,
  so a geometric regression can recover gaze from segmentation (Sec. II-A).

Angles are in degrees; image coordinates are ``(row, col)`` with row 0 at
the top.  Gaze ``(horizontal, vertical)`` of (0, 0) looks straight into the
camera.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EyeGeometry", "EyeState", "SEG_CLASSES", "NUM_CLASSES"]

#: Segmentation label convention, matching OpenEDS' four classes.
SEG_CLASSES = {"background": 0, "sclera": 1, "iris": 2, "pupil": 3}
NUM_CLASSES = len(SEG_CLASSES)


@dataclass(frozen=True)
class EyeGeometry:
    """Per-subject geometry of the eye as seen by the near-eye camera.

    All lengths are fractions of the image *height* so the same geometry
    renders consistently at any resolution (64x64 CI frames or the paper's
    640x400 sensor).
    """

    #: Eye-socket centre in normalized (row, col) coordinates.
    center: tuple[float, float] = (0.5, 0.5)
    #: Projected eyeball radius; controls how far the pupil travels per degree.
    eyeball_radius: float = 0.42
    #: Sclera (visible eye opening) half-axes (vertical, horizontal).
    sclera_axes: tuple[float, float] = (0.30, 0.44)
    #: Iris radius.
    iris_radius: float = 0.185
    #: Pupil radius at neutral dilation.
    pupil_radius: float = 0.075
    #: Maximum gaze eccentricity the model supports, degrees.
    max_angle_deg: float = 25.0
    #: Eyelid resting aperture (1 = fully open).
    lid_open: float = 1.0
    #: IR glint positions relative to the eye centre (row, col offsets).
    glints: tuple[tuple[float, float], ...] = ((-0.10, -0.13), (-0.10, 0.13))
    #: Glint radius.
    glint_radius: float = 0.016

    def pupil_center(self, gaze_h: float, gaze_v: float) -> tuple[float, float]:
        """Normalized (row, col) of the pupil centre for a gaze direction.

        A rotating eyeball projects the pupil at ``R * sin(theta)`` from the
        socket centre.  Positive horizontal gaze moves the pupil to larger
        column; positive vertical gaze (looking up) moves it to smaller row.
        """
        r = self.eyeball_radius
        row = self.center[0] - r * np.sin(np.deg2rad(gaze_v))
        col = self.center[1] + r * np.sin(np.deg2rad(gaze_h))
        return float(row), float(col)

    def gaze_from_pupil(self, row: float, col: float) -> tuple[float, float]:
        """Invert :meth:`pupil_center` — the geometric gaze regression.

        This is the "regression model based on the geometric model of human
        eyes" the paper uses for the gaze-prediction stage (Sec. II-A).
        """
        r = self.eyeball_radius
        sin_v = np.clip((self.center[0] - row) / r, -1.0, 1.0)
        sin_h = np.clip((col - self.center[1]) / r, -1.0, 1.0)
        return float(np.rad2deg(np.arcsin(sin_h))), float(np.rad2deg(np.arcsin(sin_v)))

    def foreshortening(self, gaze_h: float, gaze_v: float) -> tuple[float, float]:
        """Apparent (vertical, horizontal) scale of the iris/pupil discs.

        Discs on the eyeball foreshorten by cos(angle) along the direction
        of rotation.
        """
        return (
            float(np.cos(np.deg2rad(gaze_v))),
            float(np.cos(np.deg2rad(gaze_h))),
        )

    def scaled(self, factor: float) -> "EyeGeometry":
        """Shrink/grow the eye relative to the frame (camera distance).

        The paper's 640x400 sensor sees the eye opening as ~13 % of the
        frame; at small CI resolutions the default geometry fills most of
        the image, which removes the value of ROI prediction.  Scaling by
        ~0.6 restores the paper's foreground-to-frame ratio.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        return EyeGeometry(
            center=self.center,
            eyeball_radius=self.eyeball_radius * factor,
            sclera_axes=(
                self.sclera_axes[0] * factor,
                self.sclera_axes[1] * factor,
            ),
            iris_radius=self.iris_radius * factor,
            pupil_radius=self.pupil_radius * factor,
            max_angle_deg=self.max_angle_deg,
            lid_open=self.lid_open,
            glints=tuple((r * factor, c * factor) for r, c in self.glints),
            glint_radius=self.glint_radius * factor,
        )

    @staticmethod
    def random(rng: np.random.Generator) -> "EyeGeometry":
        """Sample a plausible subject-specific geometry (dataset diversity)."""
        return EyeGeometry(
            center=(
                0.5 + float(rng.uniform(-0.04, 0.04)),
                0.5 + float(rng.uniform(-0.04, 0.04)),
            ),
            eyeball_radius=float(rng.uniform(0.38, 0.46)),
            sclera_axes=(
                float(rng.uniform(0.26, 0.33)),
                float(rng.uniform(0.40, 0.48)),
            ),
            iris_radius=float(rng.uniform(0.16, 0.21)),
            pupil_radius=float(rng.uniform(0.055, 0.095)),
            lid_open=float(rng.uniform(0.9, 1.0)),
        )


@dataclass
class EyeState:
    """Instantaneous state of the eye: gaze, dilation, and eyelid aperture."""

    gaze_h: float = 0.0
    gaze_v: float = 0.0
    #: Pupil dilation multiplier (slow physiological variation).
    dilation: float = 1.0
    #: Eyelid aperture in [0, 1]; 0 during the closed phase of a blink.
    lid_aperture: float = 1.0
    #: True while a saccade is in flight (used to label corner cases).
    in_saccade: bool = False
    #: True while a blink occludes the eye.
    in_blink: bool = field(default=False)

    def clipped(self, geometry: EyeGeometry) -> "EyeState":
        """Return a copy with gaze clipped to the geometry's valid range."""
        limit = geometry.max_angle_deg
        return EyeState(
            gaze_h=float(np.clip(self.gaze_h, -limit, limit)),
            gaze_v=float(np.clip(self.gaze_v, -limit, limit)),
            dilation=self.dilation,
            lid_aperture=self.lid_aperture,
            in_saccade=self.in_saccade,
            in_blink=self.in_blink,
        )
