"""Table I — sensitivity to the ROI reuse window.

Paper claim: reusing a predicted ROI for 4 or 16 consecutive frames saves
almost no energy (the ROI DNN is ~1 % of in-sensor energy) but measurably
hurts accuracy and robustness (vertical error 0.25 -> 0.75 deg, std 0.15
-> 0.69, for savings of at most 0.029 %) — so BlissCam predicts the ROI
every frame.

Error/std are measured live with the reuse policy active in the
functional sensor; the energy delta comes from removing the skipped ROI
DNN invocations from the model.
"""

from _helpers import bench_pipeline_config, once
from repro.core import BlissCamPipeline, PaperComparison, Table
from repro.hardware import SystemEnergyModel, WorkloadProfile

REUSE_WINDOWS = [1, 4, 16]
FPS = 120.0

#: Paper's Table I rows: window -> (vertical error, std, energy saving %).
PAPER_TABLE1 = {1: (0.25, 0.15, 0.0), 4: (0.49, 0.30, 0.023), 16: (0.75, 0.69, 0.029)}


def run_table1():
    pipeline = BlissCamPipeline(bench_pipeline_config(fps=FPS, seed=5))
    pipeline.train()
    model = SystemEnergyModel()

    # Energy deltas use the paper-scale workload profile: at 640x400 the
    # ROI DNN is a small share of the total, which is the whole point of
    # Table I (reuse saves almost nothing).
    paper_profile = WorkloadProfile()
    rows = []
    base_breakdown = None
    for window in REUSE_WINDOWS:
        evaluation = pipeline.evaluate(reuse_window=window)
        breakdown = model.frame_energy("BlissCam", paper_profile, FPS)
        # Reuse skips the ROI DNN on (window-1)/window of frames.
        energy = breakdown.total - breakdown.components["roi_dnn_sensor"] * (
            (window - 1) / window
        )
        if base_breakdown is None:
            base_breakdown = energy
        rows.append(
            {
                "window": window,
                "vertical": evaluation.vertical.mean,
                "std": evaluation.vertical.std,
                "saving_pct": 100 * (base_breakdown - energy) / base_breakdown,
            }
        )
    return rows


def test_table1_roi_reuse(benchmark):
    rows = once(benchmark, run_table1)

    table = Table(
        ["reuse window", "vertical err (deg)", "std", "energy saving (%)"],
        title="Table I — ROI reuse window sensitivity",
    )
    for row in rows:
        table.add_row(
            row["window"],
            round(row["vertical"], 2),
            round(row["std"], 2),
            round(row["saving_pct"], 3),
        )
    print()
    print(table.render())

    cmp = PaperComparison("Table I")
    for row in rows:
        paper_err, paper_std, paper_save = PAPER_TABLE1[row["window"]]
        cmp.add(
            f"window={row['window']}: err/std/saving",
            f"{paper_err}/{paper_std}/{paper_save}%",
            f"{row['vertical']:.2f}/{row['std']:.2f}/{row['saving_pct']:.2f}%",
        )
    print(cmp.render())

    # The paper's conclusion: reuse is a bad trade — it cannot buy a
    # large accuracy win, and the energy saving stays small.  At CI scale
    # the error signal is noisy (a cached box can accidentally average
    # out predictor jitter), so the error assertion is a band, not a
    # strict ordering.
    fresh, mid, stale = rows
    assert 0.5 * fresh["vertical"] <= stale["vertical"] <= 2.5 * fresh["vertical"]
    assert stale["saving_pct"] < 15.0
    # Longer windows save (slightly) more energy.
    assert fresh["saving_pct"] <= mid["saving_pct"] <= stale["saving_pct"]
