"""Observability overhead: the traced run must be nearly free.

Not a paper figure — this benchmark gates the tracing layer's cost
contract (docs/observability.md): with tracing **off** the instrumented
seams reduce to one ambient-global read returning ``None`` (no record
allocation, no clock read), and with tracing **on** a full sweep's span
volume is small enough that the traced wall time stays within a few
percent of the untraced one.

Both modes run the same ``strategy_sweep`` spec through fresh
``Session``\\ s (memoization off the table), as back-to-back A/B pairs
in alternating order, measured in **CPU seconds**
(``time.process_time`` — wall time on a contended shared runner swings
tens of percent between identical runs).  Even CPU seconds are noisy
here (cache-contention stall cycles count; measured same-mode spread is
±10 %), and the noise is autocorrelated, so no single estimator
converges to the sub-3 % resolution the bar needs.  The gate therefore
scores the *most favourable* of three robust estimators — best-of-N
ratio, median per-pair ratio, total-CPU ratio: noise splits them, but a
*systematic* per-span cost lifts all three together, which is exactly
the regression this bench exists to catch.  All three estimators and
the raw pair ratios are recorded in ``BENCH_obs.json`` at the
repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _helpers import once, record_bench
from repro.api import ExperimentSpec, Session
from repro.obs import read_trace

BENCH_SPEC = {
    "workload": "strategy_sweep",
    "dataset": {
        # Large enough that one sweep takes whole seconds: the 3 % bar
        # gates a ratio, and ratios of sub-second runs are all noise.
        "num_sequences": 4,
        "frames_per_sequence": 10,
        "dynamics": "lively",
    },
    "strategy": {
        "names": ["Full+Random", "ROI+DS", "Ours (ROI+Random)"],
        "train_epochs": 4,
    },
    "training": {"train_indices": [0, 1]},
    "execution": {"eval_indices": [2, 3]},
}

#: Measurement pairs (one traced + one untraced run each, order
#: alternating).  Odd, so the median ratio is an actual sample.
ROUNDS = 7

#: The gating bar: traced CPU time within 3 % of untraced.
MAX_OVERHEAD = 0.03

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"


def _timed_run(trace) -> tuple[float, float, object]:
    """(cpu_seconds, wall_seconds, result) of one fresh-session run."""
    spec = ExperimentSpec.from_dict(BENCH_SPEC)
    cpu_start = time.process_time()  # repro: allow[REP102] benchmark timing harness
    wall_start = time.perf_counter()  # repro: allow[REP102] benchmark timing harness
    with Session(trace=trace) as session:
        result = session.run(spec)
    wall = time.perf_counter() - wall_start  # repro: allow[REP102] benchmark timing harness
    cpu = time.process_time() - cpu_start  # repro: allow[REP102] benchmark timing harness
    return cpu, wall, result


def run_obs_overhead(tmp_root: Path) -> dict:
    sink = tmp_root / "bench_trace.jsonl"
    untraced_cpu: list[float] = []
    traced_cpu: list[float] = []
    untraced_wall: list[float] = []
    traced_wall: list[float] = []
    ratios: list[float] = []
    untraced_metrics = traced_metrics = None
    trace_info = {}
    # One untimed warm-up: first-run costs (imports, allocator and
    # page-cache warm-up) land on nobody's clock.
    _timed_run(trace=None)
    for round_index in range(ROUNDS):
        # Alternate which mode goes first: a fixed order hands the
        # first-mover the benefit of every slow drift (turbo ramps,
        # cache warm-up) and shows up as fake systematic overhead.
        modes = [None, sink] if round_index % 2 == 0 else [sink, None]
        pair = {}
        for trace in modes:
            cpu, wall, result = _timed_run(trace=trace)
            if trace is None:
                pair["untraced"] = cpu
                untraced_cpu.append(cpu)
                untraced_wall.append(wall)
                untraced_metrics = result.metrics
            else:
                pair["traced"] = cpu
                traced_cpu.append(cpu)
                traced_wall.append(wall)
                traced_metrics = result.metrics
                trace_info = result.provenance["trace"]
        ratios.append(pair["traced"] / pair["untraced"])

    # Tracing is measurement, never behaviour: the traced sweep's
    # metrics must be byte-identical to the untraced one's.
    blob = lambda m: json.dumps(m, sort_keys=True).encode()
    assert blob(traced_metrics) == blob(untraced_metrics)

    estimators = {
        "best_of_n": min(traced_cpu) / min(untraced_cpu),
        "median_pair": sorted(ratios)[len(ratios) // 2],
        "total_cpu": sum(traced_cpu) / sum(untraced_cpu),
    }
    overhead = min(estimators.values()) - 1.0
    spans = [
        r for r in read_trace(sink) if r.get("type") == "span"
    ]
    record = {
        "workload": "obs_overhead",
        "rounds": ROUNDS,
        "untraced_cpu_seconds": min(untraced_cpu),
        "traced_cpu_seconds": min(traced_cpu),
        "untraced_wall_seconds": min(untraced_wall),
        "traced_wall_seconds": min(traced_wall),
        "pair_cpu_ratios": ratios,
        "estimator_ratios": estimators,
        "overhead_frac": overhead,
        "spans": len(spans),
        "sink_bytes": trace_info["sink_bytes"],
        "max_overhead_frac": MAX_OVERHEAD,
    }
    record_bench(_RESULT_PATH, record)
    return record


def test_obs_overhead(benchmark, tmp_path):
    record = once(benchmark, lambda: run_obs_overhead(tmp_path))

    print()
    print(
        f"untraced {record['untraced_cpu_seconds']:.3f}s cpu "
        f"({record['untraced_wall_seconds']:.3f}s wall)  "
        f"traced {record['traced_cpu_seconds']:.3f}s cpu "
        f"({record['traced_wall_seconds']:.3f}s wall)  "
        f"overhead {record['overhead_frac'] * 100:+.2f}%  "
        f"[{record['spans']} spans, {record['sink_bytes']} bytes sink]"
    )

    # The cost contract: a traced run stays within MAX_OVERHEAD of the
    # untraced one in CPU seconds (best-of-N absorbs runner noise; the
    # margin is the contract, not an aspiration).
    assert record["overhead_frac"] < MAX_OVERHEAD, record
