"""Sec. VI-D — area estimation of the BlissCam sensor.

Paper numbers at 640x400 with a 5 um pixel pitch: 6.4 mm^2 pixel array,
0.4 mm^2 in-sensor NPU (~5.8 % overhead), 0.1 mm^2 output buffer + RLE;
the per-pixel augmentation is ~12 SRAM-cell equivalents; the host-side
RLE decoder is <0.1 % of SoC area.
"""

from _helpers import once
from repro.core import PaperComparison, Table
from repro.hardware import AreaModel
from repro.hardware.area import PUBLISHED_PIXELS


def run_area():
    model = AreaModel()
    return model, model.estimate(400, 640)


def test_area_estimation(benchmark):
    model, report = once(benchmark, run_area)

    table = Table(
        ["component", "area"],
        title="Sec. VI-D — area estimate (640x400, 5 um pitch)",
    )
    table.add_row("pixel array (mm^2)", round(report.pixel_array_mm2, 2))
    table.add_row("in-sensor NPU (mm^2)", report.in_sensor_npu_mm2)
    table.add_row("output buffer + RLE (mm^2)", report.output_buffer_mm2)
    table.add_row("TOTAL (mm^2)", round(report.total_mm2, 2))
    table.add_row(
        "per-pixel augmentation (um^2)",
        round(report.augmentation_per_pixel_um2, 2),
    )
    for name, (pitch, node, inventory) in PUBLISHED_PIXELS.items():
        table.add_row(f"anchor: {name}", f"{pitch} um @ {node} nm ({inventory})")
    print()
    print(table.render())

    cmp = PaperComparison("Sec. VI-D")
    cmp.add("pixel array (mm^2)", 6.4, round(report.pixel_array_mm2, 2))
    cmp.add("in-sensor NPU (mm^2)", 0.4, report.in_sensor_npu_mm2)
    cmp.add("output buffer (mm^2)", 0.1, report.output_buffer_mm2)
    cmp.add(
        "NPU area overhead (%)", 5.8, round(100 * report.npu_overhead_fraction, 1)
    )
    cmp.add(
        "host RLE decoder share (%)",
        "<0.1",
        round(100 * model.host_rle_decoder_fraction(), 3),
    )
    print(cmp.render())

    assert abs(report.pixel_array_mm2 - 6.4) < 0.1
    assert abs(report.npu_overhead_fraction - 0.058) < 0.01
