"""Ablations on the eventification stage.

Two design choices the paper makes and defends qualitatively:

* **sigma = 15/255** — "empirically yields good results" (Sec. III-A).
  The sweep shows the trade-off: lower thresholds fire on shot noise
  (density explodes, precision drops), higher thresholds start missing
  the moving foreground (recall drops).
* **no dF/F normalization** — classic event cameras normalize by the
  previous pixel value; the paper drops the divider because it
  "complicates the sensor hardware without noticeable accuracy benefits"
  (Sec. VII).  We verify the foreground-localization quality of the two
  formulations is comparable on near-eye scenes.
"""

from _helpers import bench_dataset, once
from repro.analysis import normalization_ablation, sigma_sensitivity
from repro.core import PaperComparison, Table
from repro.sampling import DEFAULT_SIGMA

SIGMAS = [2 / 255, 8 / 255, 15 / 255, 30 / 255, 60 / 255]


def run_ablation():
    dataset = bench_dataset(seed=11)
    return (
        sigma_sensitivity(dataset, SIGMAS),
        normalization_ablation(dataset),
    )


def test_eventification_ablation(benchmark):
    sigma_rows, norm_results = once(benchmark, run_ablation)

    table = Table(
        ["sigma (x255)", "event density", "box recall", "precision"],
        title="Ablation — eventification threshold sweep",
    )
    for row in sigma_rows:
        table.add_row(
            round(row["sigma"] * 255, 1),
            round(row["density"], 4),
            round(row["recall"], 3),
            round(row["precision"], 3),
        )
    print()
    print(table.render())

    table2 = Table(
        ["formulation", "box recall", "precision", "density"],
        title="Ablation — plain vs normalized eventification",
    )
    for name, stats in norm_results.items():
        table2.add_row(
            name,
            round(stats["recall"], 3),
            round(stats["precision"], 3),
            round(stats["density"], 4),
        )
    print(table2.render())

    plain = norm_results["plain |dF| > sigma (ours)"]
    normalized = norm_results["normalized dF/F (event camera)"]
    at_default = next(r for r in sigma_rows if abs(r["sigma"] - DEFAULT_SIGMA) < 1e-9)

    cmp = PaperComparison("eventification ablations")
    cmp.add("sigma=15 box recall", "high (usable ROI cue)", round(at_default["recall"], 2))
    cmp.add(
        "normalization accuracy benefit",
        "none noticeable",
        f"recall delta {normalized['recall'] - plain['recall']:+.3f}",
    )
    print(cmp.render())

    # Density must fall monotonically as the threshold rises.
    densities = [r["density"] for r in sigma_rows]
    assert all(a >= b for a, b in zip(densities, densities[1:]))
    # The default threshold keeps a usable cue: decent recall, sane density.
    assert at_default["recall"] > 0.5
    assert at_default["density"] < 0.5
    # Sec. VII claim: normalization does not meaningfully improve the cue.
    assert normalized["recall"] < plain["recall"] + 0.1
