"""Joint-training throughput: batched ranks vs per-frame stepping.

Not a paper figure — this benchmark seeds the performance trajectory of
the training runtime (``repro.training.runtime``), the counterpart of
``bench_engine_throughput`` (evaluation) and ``bench_serve`` (serving).
It trains identical CI-scale networks twice over the same dataset:

* **per-frame** — ``batch_size=1``: the paper-faithful stepping, one
  Adam step per frame pair (bitwise-pinned by ``tests/training/``
  against the retired ``JointTrainer`` loop);
* **batched** — ``batch_size=BATCH``: each minibatch is one rank through
  the vectorized kernels (stacked eventification, batched ROI
  forward/backward, batched soft masks, one ViT forward/backward per
  minibatch) with one Adam step per minibatch.

The two schedules optimize differently by design (documented in
``docs/training.md``), so unlike the engine bench there is no bitwise
assertion — the wall-clock ratio is the price the per-frame loop was
paying in python/numpy dispatch.  Appends to ``BENCH_train.json`` at the
repository root (git-stamped ``trajectory`` entries via the shared
``record_bench`` plumbing).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from _helpers import (
    BENCH_DYNAMICS,
    BENCH_EYE_SCALE,
    once,
    record_bench,
)
from repro.sampling import ROIPredictor
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset
from repro.training import JointTrainConfig, JointTrainer

#: CI-scale training geometry: two sequences of 24 frames -> 46 frame
#: pairs per epoch.
HEIGHT = WIDTH = 64
SEQUENCES = 2
FRAMES = 24
EPOCHS = 2
#: Rank width of the batched schedule.
BATCH = 8
#: The PR acceptance bar for batched joint training at CI scale.
TARGET_SPEEDUP = 1.5
#: Best-of repeats per schedule (fresh networks each repeat).
REPEATS = 2

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_train.json"


def _dataset() -> SyntheticEyeDataset:
    return SyntheticEyeDataset(
        DatasetConfig(
            height=HEIGHT,
            width=WIDTH,
            frames_per_sequence=FRAMES,
            num_sequences=SEQUENCES,
            seed=7,
            eye_scale=BENCH_EYE_SCALE,
            dynamics=BENCH_DYNAMICS,
        )
    )


def _components():
    rng = np.random.default_rng(1)
    roi = ROIPredictor(HEIGHT, WIDTH, rng, base_channels=4)
    vit = ViTSegmenter(
        ViTConfig(height=HEIGHT, width=WIDTH, patch=8, dim=24, heads=3,
                  depth=1, decoder_depth=1),
        rng,
    )
    return roi, vit


def _time_schedule(dataset, batch_size: int) -> tuple[float, list[float]]:
    """Best-of-REPEATS wall seconds for one training schedule."""
    best, losses = None, None
    for _ in range(REPEATS):
        roi, vit = _components()
        trainer = JointTrainer(
            roi,
            vit,
            JointTrainConfig(epochs=EPOCHS, batch_size=batch_size),
            np.random.default_rng(3),
        )
        start = time.perf_counter()  # repro: allow[REP102] benchmark timing harness
        result = trainer.train(dataset, list(range(SEQUENCES)))
        elapsed = time.perf_counter() - start  # repro: allow[REP102] benchmark timing harness
        if best is None or elapsed < best:
            best, losses = elapsed, result.seg_losses
    return best, losses


def run_train_bench() -> dict:
    dataset = _dataset()
    pairs = SEQUENCES * (FRAMES - 1)
    per_frame_s, per_frame_losses = _time_schedule(dataset, batch_size=1)
    batched_s, batched_losses = _time_schedule(dataset, batch_size=BATCH)
    record = {
        "sequences": SEQUENCES,
        "frame_pairs_per_epoch": pairs,
        "epochs": EPOCHS,
        "batch_size": BATCH,
        "per_frame_s": per_frame_s,
        "batched_s": batched_s,
        "per_frame_pairs_per_s": pairs * EPOCHS / per_frame_s,
        "batched_pairs_per_s": pairs * EPOCHS / batched_s,
        "speedup": per_frame_s / batched_s,
        "per_frame_final_seg_loss": per_frame_losses[-1],
        "batched_final_seg_loss": batched_losses[-1],
    }
    record_bench(_RESULT_PATH, record)
    return record


def test_train_throughput(benchmark):
    record = once(benchmark, run_train_bench)

    print()
    print(
        f"joint training over {record['frame_pairs_per_epoch']} pairs x "
        f"{EPOCHS} epochs: per-frame {record['per_frame_s']:.2f}s, "
        f"batched(B={BATCH}) {record['batched_s']:.2f}s "
        f"({record['speedup']:.2f}x)"
    )

    assert np.isfinite(record["batched_final_seg_loss"])
    assert record["speedup"] >= TARGET_SPEEDUP, (
        f"batched joint training only {record['speedup']:.2f}x over the "
        f"per-frame loop (target {TARGET_SPEEDUP}x)"
    )
