"""Artifact-store resume: cold sweep vs store replay vs whole-run reuse.

Not a paper figure — this benchmark seeds the performance trajectory of
the persistence layer (``repro.store``).  It runs one declarative
``strategy_sweep`` spec three ways through ``repro.api``:

1. **cold** — a fresh ``Session(store=...)`` against an empty store:
   every strategy trains and writes through to disk;
2. **replay** — a second fresh session against the populated store:
   every strategy hydrates from disk (``store_hydrations`` == the
   strategy count, zero retraining), metrics byte-identical to cold;
3. **resume** — ``Session(store=..., resume=True)``: the completed
   run's stored ``RunResult`` is reused wholesale by spec hash.

``replay_speedup``/``resume_speedup`` are the cold-vs-warm ratios —
what the store buys a killed-and-restarted sweep.  Bitwise identity is
asserted here and pinned by ``tests/store/test_resume.py``; the
wall-clock ratios are advisory on shared runners but replay must not
*lose* to retraining.

Appends to ``BENCH_store.json`` at the repository root (git-stamped
``trajectory`` entries) so successive PRs accumulate the history.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _helpers import once, record_bench
from repro.api import ExperimentSpec, Session
from repro.store import ArtifactStore

STRATEGIES = ["Full+Random", "ROI+DS", "Ours (ROI+Random)"]

BENCH_SPEC = {
    "workload": "strategy_sweep",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 6,
        "dynamics": "lively",
    },
    "strategy": {"names": STRATEGIES, "train_epochs": 2},
    "training": {"train_indices": [0, 1]},
    "execution": {"eval_indices": [2]},
}

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _metrics_bytes(result) -> bytes:
    return json.dumps(result.metrics, sort_keys=True).encode()


def _timed_run(store_root, resume=False):
    spec = ExperimentSpec.from_dict(BENCH_SPEC)
    start = time.perf_counter()  # repro: allow[REP102] benchmark timing harness
    with Session(store=store_root, resume=resume) as session:
        result = session.run(spec)
        stats = session.stats()
    elapsed = time.perf_counter() - start  # repro: allow[REP102] benchmark timing harness
    return result, stats, elapsed


def run_store_resume(tmp_root: Path) -> dict:
    store_root = tmp_root / "store"

    cold, cold_stats, cold_s = _timed_run(store_root)
    replay, replay_stats, replay_s = _timed_run(store_root)
    resumed, resume_stats, resume_s = _timed_run(store_root, resume=True)

    assert _metrics_bytes(replay) == _metrics_bytes(cold)
    assert _metrics_bytes(resumed) == _metrics_bytes(cold)
    assert cold_stats["train_cache_misses"] == len(STRATEGIES)
    assert replay_stats["store_hydrations"] == len(STRATEGIES)
    assert replay_stats["train_cache_misses"] == 0
    assert [h["kind"] for h in resumed.provenance["cache_hits"]] == [
        "run_result"
    ]

    occupancy = ArtifactStore(store_root).stats()
    record = {
        "workload": "store_resume",
        "strategies": len(STRATEGIES),
        "cold_seconds": cold_s,
        "replay_seconds": replay_s,
        "resume_seconds": resume_s,
        "replay_speedup": cold_s / replay_s,
        "resume_speedup": cold_s / resume_s,
        "store_entries": occupancy["entries"],
        "store_bytes": occupancy["bytes"],
        "bitwise_identical": True,
    }
    record_bench(_RESULT_PATH, record)
    return record


def test_store_resume(benchmark, tmp_path):
    record = once(benchmark, lambda: run_store_resume(tmp_path))

    print()
    print(
        f"cold {record['cold_seconds']:.2f}s  "
        f"replay {record['replay_seconds']:.2f}s "
        f"({record['replay_speedup']:.1f}x)  "
        f"resume {record['resume_seconds']:.2f}s "
        f"({record['resume_speedup']:.1f}x)  "
        f"[{record['store_entries']} entries, "
        f"{record['store_bytes']} bytes on disk]"
    )

    # Replaying trained artifacts from disk must beat retraining them;
    # whole-run reuse must beat both.  Advisory margins (shared
    # runners), but losing outright means the store costs more than it
    # saves.
    assert record["replay_speedup"] > 1.0, record
    assert record["resume_speedup"] > record["replay_speedup"], record
