"""Fig. 13 — per-frame energy of the four sensor-SoC designs at 120 FPS.

Paper numbers: BlissCam saves 4.0x over NPU-Full, 1.6x over NPU-ROI and
1.7x over S+NPU; S+NPU is ~1.1x *worse* than NPU-ROI because its digital
frame buffer leaks; off-sensor work is ~60 % of NPU-Full; the seg-map
backhaul and RLE overheads are 0.6 % and 0.04 % of BlissCam's total.

The workload fractions (ROI size, sampled pixels, valid tokens) are
*measured* by running the trained functional pipeline — through the
``repro.api`` front door, whose ``RunResult`` also carries the engine's
measured wall-clock stage shares — then fed into the calibrated
component-level energy model, so modeled joules and measured seconds
print side by side.
"""

from _helpers import bench_evaluate_spec, once
from repro.api import ExperimentSpec, Session, stage_timing_table
from repro.core import PaperComparison, Table
from repro.hardware import SystemEnergyModel, VARIANTS, WorkloadProfile

FPS = 120.0


def run_fig13():
    # Headline numbers use the paper-scale workload profile (640x400,
    # 13.4 % ROI, 4.85 % sampled, 10.8 % tokens); the live pipeline's
    # measured fractions are reported alongside.  At CI scale (64x64,
    # patch 8) the eye covers a larger frame fraction, so the measured
    # fractions are honest but not the paper's operating point.
    with Session() as session:
        run_result = session.run(
            ExperimentSpec.from_dict(bench_evaluate_spec(fps=FPS))
        )
    measured = WorkloadProfile(**run_result.workload_profile)
    model = SystemEnergyModel()
    paper_profile = WorkloadProfile()
    breakdowns = {v: model.frame_energy(v, paper_profile, FPS) for v in VARIANTS}
    measured_totals = {
        v: model.frame_energy(v, measured, FPS).total for v in VARIANTS
    }
    return measured, breakdowns, measured_totals, run_result.stage_timings


def test_fig13_energy(benchmark):
    profile, breakdowns, measured_totals, stage_timings = once(
        benchmark, run_fig13
    )

    components = sorted({k for b in breakdowns.values() for k in b.components})
    table = Table(
        ["component (uJ/frame)"] + list(VARIANTS),
        title="Fig. 13 — energy breakdown at 120 FPS "
        "(65 nm analog / 22 nm logic / 7 nm SoC)",
    )
    for comp in components:
        table.add_row(
            comp,
            *(round(breakdowns[v].components.get(comp, 0.0) * 1e6, 2) for v in VARIANTS),
        )
    table.add_row(
        "TOTAL", *(round(breakdowns[v].total * 1e6, 1) for v in VARIANTS)
    )
    print()
    print(table.render())

    full = breakdowns["NPU-Full"].total
    bliss = breakdowns["BlissCam"].total
    roi = breakdowns["NPU-ROI"].total
    snpu = breakdowns["S+NPU"].total

    cmp = PaperComparison("Fig. 13 @ 120 FPS")
    cmp.add("BlissCam saving over NPU-Full (x)", 4.0, round(full / bliss, 2))
    cmp.add("BlissCam saving over NPU-ROI (x)", 1.6, round(roi / bliss, 2))
    cmp.add("BlissCam saving over S+NPU (x)", 1.7, round(snpu / bliss, 2))
    cmp.add("S+NPU vs NPU-ROI (x, >1 is worse)", 1.1, round(snpu / roi, 2))
    cmp.add(
        "off-sensor share of NPU-Full (%)",
        60.1,
        round(100 * breakdowns["NPU-Full"].off_sensor / full, 1),
    )
    cmp.add(
        "seg-map backhaul share of BlissCam (%)",
        0.6,
        round(100 * breakdowns["BlissCam"].fraction("seg_map_backhaul"), 2),
    )
    cmp.add(
        "RLE share of BlissCam (%)",
        0.04,
        round(100 * breakdowns["BlissCam"].fraction("rle"), 3),
    )
    cmp.add(
        "measured ROI fraction (frame)", 0.134, round(profile.roi_fraction, 3)
    )
    cmp.add(
        "measured sampled fraction (frame)",
        0.0485,
        round(profile.sampled_fraction, 3),
    )
    cmp.add(
        "saving with CI-measured fractions (x)",
        "(smaller frame, bigger eye)",
        round(measured_totals["NPU-Full"] / measured_totals["BlissCam"], 2),
    )
    print(cmp.render())

    # The modeled joules above attribute energy per stage; this is the
    # *measured* wall-clock share of the same evaluation run (engine
    # stage timings, routed through RunResult).
    print()
    print(
        stage_timing_table(
            stage_timings,
            title="measured engine wall-clock shares (same run)",
        ).render()
    )

    assert full > snpu > roi > bliss
    assert 3.0 < full / bliss < 8.0
    assert 1.0 < snpu / roi < 1.5
