"""Shared plumbing for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure from the paper's
evaluation section: it prints the same rows/series the paper reports plus
a ``[paper-vs-measured]`` comparison block.  Accuracy experiments run the
*live* pipeline (train tiny networks on the synthetic dataset); energy,
latency and area experiments query the calibrated hardware models.

Run with ``pytest benchmarks/ --benchmark-only``.

All live-pipeline benchmarks (Figs. 12-16, Table I, ablations) execute on
the shared :mod:`repro.engine` stage runtime — the same graphs the CLI
and the test suite run — so the numbers they report exercise the
production code path, not a parallel harness.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.api.result import git_describe
from repro.api.session import LIVELY_DYNAMICS
from repro.core import ci
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset

#: Common CI-scale experiment geometry (kept small so the whole harness
#: finishes in minutes of pure-numpy compute).
BENCH_HEIGHT = BENCH_WIDTH = 64
#: Eye scale matching the paper's foreground-to-frame ratio (~13-20 % ROI).
BENCH_EYE_SCALE = 0.6
BENCH_SEQUENCES = 4
BENCH_FRAMES = 24
BENCH_EPOCHS = 6

#: Livelier oculomotor statistics so short sequences still contain
#: saccades and pursuits — otherwise a degenerate "predict the centre"
#: tracker looks perfect and the accuracy figures lose their signal.
#: This is the spec's ``dataset.dynamics == "lively"`` preset, shared by
#: construction so the declarative benches cannot drift from the
#: imperative ones.
BENCH_DYNAMICS = LIVELY_DYNAMICS


def bench_dataset(seed: int = 0, fps: float = 120.0) -> SyntheticEyeDataset:
    return SyntheticEyeDataset(
        DatasetConfig(
            height=BENCH_HEIGHT,
            width=BENCH_WIDTH,
            fps=fps,
            frames_per_sequence=BENCH_FRAMES,
            num_sequences=BENCH_SEQUENCES,
            seed=seed,
            eye_scale=BENCH_EYE_SCALE,
            dynamics=BENCH_DYNAMICS,
        )
    )


def bench_vit(seed: int = 1) -> ViTSegmenter:
    cfg = ViTConfig(
        height=BENCH_HEIGHT,
        width=BENCH_WIDTH,
        patch=8,
        dim=24,
        heads=3,
        depth=1,
        decoder_depth=1,
    )
    return ViTSegmenter(cfg, np.random.default_rng(seed))


def bench_pipeline_config(
    fps: float = 120.0,
    seed: int = 0,
    num_sequences: int = BENCH_SEQUENCES,
    frames_per_sequence: int = BENCH_FRAMES,
):
    from dataclasses import replace

    config = ci(
        seed=seed,
        num_sequences=num_sequences,
        frames_per_sequence=frames_per_sequence,
        fps=fps,
    )
    return replace(
        config,
        dataset=replace(
            config.dataset, dynamics=BENCH_DYNAMICS, eye_scale=BENCH_EYE_SCALE
        ),
        joint=replace(config.joint, epochs=BENCH_EPOCHS),
    )


def bench_evaluate_spec(fps: float = 120.0, seed: int = 0) -> dict:
    """The ``bench_pipeline_config`` geometry as a declarative
    ``repro.api`` evaluate spec — for benchmarks that route through the
    front door (and get ``RunResult.stage_timings`` for free)."""
    return {
        "workload": "evaluate",
        "dataset": {
            "num_sequences": BENCH_SEQUENCES,
            "frames_per_sequence": BENCH_FRAMES,
            "fps": fps,
            "seed": seed,
            "eye_scale": BENCH_EYE_SCALE,
            "dynamics": "lively",
        },
        "training": {"epochs": BENCH_EPOCHS},
        "execution": {"fps": fps},
    }


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def record_bench(path: str | Path, record: dict) -> dict:
    """Append a benchmark run to ``path``'s performance trajectory.

    ``BENCH_*.json`` files are the perf history successive PRs track:
    ``latest`` holds this run's record and ``trajectory`` accumulates
    every run, each entry stamped with ``git describe`` — appending
    instead of overwriting is what makes the history non-empty across
    PRs.  Entries from a dirty working tree carry an explicit
    ``"dirty": true`` flag (not just the ``-dirty`` describe suffix), so
    trajectory consumers can filter uncommitted-state runs without
    string-parsing the stamp.  A re-run whose git stamp *and* record are
    identical to the previous trajectory entry refreshes ``latest`` but
    appends nothing — deterministic benches re-run at the same commit
    must not inflate the history.  Unrecognized existing content (the
    pre-trajectory flat ``RunResult`` envelope) is absorbed as the first
    trajectory entry rather than discarded.
    """
    path = Path(path)
    git = git_describe()
    entry = {"git": git, "dirty": git.endswith("-dirty"), **record}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        data = {}
    trajectory = data.get("trajectory")
    if trajectory is None:
        # Migrate a legacy flat record into the history it belongs to.
        trajectory = [data] if data else []
    if not trajectory or trajectory[-1] != entry:
        trajectory.append(entry)
    out = {"latest": entry, "trajectory": trajectory}
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out
