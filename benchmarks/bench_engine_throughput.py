"""Engine throughput: sequential loop vs batched lockstep vs sharded.

Not a paper figure — this benchmark seeds the performance trajectory of
the staged execution engine (``repro.engine``).  It trains one tracker,
evaluates the same held-out sequences in all execution modes (via the
shared :mod:`repro.core.throughput` harness the CLI also uses), verifies
the results are bitwise identical, and reports frames/sec plus the
per-stage wall-clock attribution the engine collects (the measured
counterpart of the Figs. 13/14 breakdowns).

Writes ``BENCH_engine.json`` at the repository root so successive PRs can
track the loop-vs-batched-vs-sharded trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path

from _helpers import bench_pipeline_config, once
from repro.core import BlissCamPipeline
from repro.core.throughput import measure_throughput, throughput_tables

#: Wide evaluation rank: lockstep batching pays off when many sequences
#: run together (production batch serving), so the bench evaluates 30.
SEQUENCES = 32
FRAMES = 12
TRAIN_INDICES = [0, 1]
EVAL_INDICES = list(range(2, SEQUENCES))

#: The PR acceptance bar for the batched mode at CI scale.
TARGET_SPEEDUP = 1.5
#: Worker processes for the sharded mode.  Its *speedup* is recorded but
#: not gated: it tracks available cores (this container may have one),
#: while its bitwise identity to the sequential loop is always enforced.
WORKERS = 2

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def run_engine_throughput() -> dict:
    config = bench_pipeline_config(
        seed=11, num_sequences=SEQUENCES, frames_per_sequence=FRAMES
    )
    pipeline = BlissCamPipeline(config)
    pipeline.train(TRAIN_INDICES)
    record = measure_throughput(
        pipeline, EVAL_INDICES, repeats=3, workers=WORKERS
    )
    _RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_engine_throughput(benchmark):
    record = once(benchmark, run_engine_throughput)

    print()
    for table in throughput_tables(record):
        print(table.render())

    assert record["bitwise_identical"], (
        "batched/sharded mode diverged from sequential"
    )
    assert record["speedup"] >= TARGET_SPEEDUP, (
        f"batched mode only {record['speedup']:.2f}x over sequential "
        f"(target {TARGET_SPEEDUP}x)"
    )
    # The sharded trajectory is recorded for successive PRs to track.
    assert record["workers"] == WORKERS
    assert record["sharded_speedup"] > 0
