"""Engine throughput: sequential vs batched vs sharded (fresh + persistent pool).

Not a paper figure — this benchmark seeds the performance trajectory of
the staged execution engine (``repro.engine``).  It runs one declarative
``throughput`` spec through ``repro.api`` — the same front door the CLI
uses — which trains one tracker (session-memoized), evaluates the same
held-out sequences in all execution modes, verifies the results are
bitwise identical, and reports frames/sec plus the per-stage wall-clock
attribution the engine collects (the measured counterpart of the
Figs. 13/14 breakdowns).

The sharded mode runs the production sharded configuration — batched
kernels inside each worker — and is timed three ways: forking a fresh
pool per call (the pre-``Session`` behaviour), dispatching work-stealing
shards onto the session's *persistent* pool over the shared-memory
transport channel (``pool_reuse_speedup`` is the fresh-vs-persistent
ratio), and the same persistent pool over plain-pickle dispatch
(``transport_speedup`` is pickle-vs-channel — what the zero-copy
transport alone buys).  The record's ``transport`` block reports
per-dispatch payload bytes for both paths, so the trajectory shows *why*
the sharded numbers moved, not just that they did.

Appends to ``BENCH_engine.json`` at the repository root (the shared
``RunResult`` serialization inside a git-stamped ``trajectory`` entry)
so successive PRs accumulate the perf history.
"""

from __future__ import annotations

from pathlib import Path

from _helpers import BENCH_EPOCHS, BENCH_EYE_SCALE, once, record_bench
from repro.api import ExperimentSpec, Session
from repro.core.throughput import throughput_tables

#: Wide evaluation rank: lockstep batching pays off when many sequences
#: run together (production batch serving), so the bench evaluates 30.
SEQUENCES = 32
FRAMES = 12
TRAIN_INDICES = [0, 1]
EVAL_INDICES = list(range(2, SEQUENCES))

#: The PR acceptance bar for the batched mode at CI scale.
TARGET_SPEEDUP = 1.5
#: Worker processes for the sharded modes.  Their *speedups* are recorded
#: but not gated: they track available cores (this container may have
#: one), while bitwise identity to the sequential loop is always enforced.
WORKERS = 2

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: The bench as a declarative spec.  Dynamics/eye-scale/epochs match the
#: historical ``bench_pipeline_config`` by construction: the "lively"
#: spec preset *is* ``BENCH_DYNAMICS`` (same object) and the epochs come
#: from ``BENCH_EPOCHS``.
BENCH_SPEC = {
    "workload": "throughput",
    "dataset": {
        "num_sequences": SEQUENCES,
        "frames_per_sequence": FRAMES,
        "seed": 11,
        "eye_scale": BENCH_EYE_SCALE,
        "dynamics": "lively",
    },
    "training": {"train_indices": TRAIN_INDICES, "epochs": BENCH_EPOCHS},
    "execution": {
        "workers": WORKERS,
        "repeats": 3,
        "eval_indices": EVAL_INDICES,
    },
}


def run_engine_throughput() -> dict:
    spec = ExperimentSpec.from_dict(BENCH_SPEC)
    with Session() as session:
        result = session.run(spec)
        record_bench(_RESULT_PATH, result.to_dict())
    return result.metrics


def test_engine_throughput(benchmark):
    record = once(benchmark, run_engine_throughput)

    print()
    for table in throughput_tables(record):
        print(table.render())

    assert record["bitwise_identical"], (
        "batched/sharded mode diverged from sequential"
    )
    assert record["speedup"] >= TARGET_SPEEDUP, (
        f"batched mode only {record['speedup']:.2f}x over sequential "
        f"(target {TARGET_SPEEDUP}x)"
    )
    # The sharded trajectories: with batched kernels in the workers and
    # the zero-copy transport, `workers=N` must actually win — both over
    # the sequential loop (fresh pool, fork cost included) and over
    # re-forking (persistent pool) — even on a single-core host.
    assert record["workers"] == WORKERS
    assert record["sharded_kernels"] == "batched"
    assert record["sharded_speedup"] > 1.0, (
        f"sharded mode lost to sequential: {record['sharded_speedup']:.2f}x"
    )
    assert record["pool_reuse_speedup"] > 1.0, (
        f"persistent pool lost to per-call forking: "
        f"{record['pool_reuse_speedup']:.2f}x"
    )
    # The transport evidence: the shared-memory path must ship orders of
    # magnitude fewer bytes per dispatch than plain pickle.
    paths = record["transport"]
    assert paths["channel"]["mode"] in ("shm", "pickle")
    assert paths["pickle"]["mode"] == "pickle"
    if paths["channel"]["mode"] == "shm":
        assert (
            paths["channel"]["payload_bytes_per_dispatch"]
            < paths["pickle"]["payload_bytes_per_dispatch"] / 100
        )
