"""Fig. 4 — readout circuitry's share of image-sensor power.

The paper surveys six recent sensors and finds the readout chain consumes
~66 % of sensor power on average.  We reproduce the survey table and show
that our modelled conventional sensor (NPU-Full's sensor side) lands in
the same regime — which is what makes skipping ADC conversions worthwhile.
"""

import numpy as np

from repro.core import PaperComparison, Table
from repro.hardware import SystemEnergyModel, WorkloadProfile

#: The six surveyed sensors of Fig. 4 (approximate readout-power shares).
SURVEY = {
    "JSSC'19": 0.71,
    "TCAS-1'20": 0.58,
    "TCAS-2'21": 0.62,
    "ISSCC'21": 0.74,
    "JSSC'22": 0.61,
    "IISW'23": 0.70,
}


def readout_shares() -> dict[str, float]:
    shares = dict(SURVEY)
    model = SystemEnergyModel()
    breakdown = model.frame_energy("NPU-Full", WorkloadProfile(), 120)
    shares["our model (NPU-Full)"] = (
        breakdown.components["readout"] / breakdown.sensor_side
    )
    return shares


def test_fig04_readout_power(benchmark):
    shares = benchmark(readout_shares)

    table = Table(
        ["sensor", "readout share (%)"],
        title="Fig. 4 — readout power share of sensor power",
    )
    for name, share in shares.items():
        table.add_row(name, round(100 * share, 1))
    print()
    print(table.render())

    survey_mean = float(np.mean(list(SURVEY.values())))
    cmp = PaperComparison("Fig. 4")
    cmp.add("survey mean (%)", 66, round(100 * survey_mean, 1))
    cmp.add(
        "our conventional sensor (%)",
        "~66",
        round(100 * shares["our model (NPU-Full)"], 1),
    )
    print(cmp.render())

    assert 0.60 < survey_mean < 0.72
    assert 0.5 < shares["our model (NPU-Full)"] < 0.9
