"""Strategy-sweep throughput: batched strategy-graph kernels vs per-row.

Not a paper figure — this benchmark seeds the performance trajectory of
the Fig. 15 strategy harness (``repro.core.variants.evaluate_strategy``
over the eventify/sample/segment/regress strategy graph).  It evaluates
the same (strategy, segmenter) pair three ways:

* **per-row** — the sequential reference: each sequence stepped frame by
  frame through scalar ``Stage.process`` kernels;
* **batched** — full-rank lockstep through the stages' ``process_batch``
  kernels (stacked eventification, batched sampling draws, one dense
  segmenter forward per rank, vectorized centroid regression);
* **sharded** — ``workers=2`` over the zero-copy shard fabric (reported
  for the trajectory; at this scale process spin-up dominates, so no
  speedup bar is placed on it).

Unlike the training bench, all three modes are bitwise-pinned: the
``StrategyEvaluation`` metrics must be byte-identical, asserted inline
before any timing is reported.  The geometry uses a wide rank of small
frames — batching pays off in python/numpy dispatch amortization, so the
sweep-shaped workload (many sequences, modest resolution, exactly the
Fig. 15 shape) is where the kernels earn their keep.  Appends to
``BENCH_strategy.json`` at the repository root (git-stamped
``trajectory`` entries via the shared ``record_bench`` plumbing).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from _helpers import (
    BENCH_DYNAMICS,
    BENCH_EYE_SCALE,
    once,
    record_bench,
)
from repro.core.variants import evaluate_strategy, make_strategy
from repro.segmentation import ViTConfig, ViTSegmenter
from repro.synth import DatasetConfig, SyntheticEyeDataset

#: Sweep-shaped geometry: a wide rank (8 sequences) of small frames.
HEIGHT = WIDTH = 32
SEQUENCES = 8
FRAMES = 24
#: The paper's headline policy — exercises ROI boxes, stochastic in-box
#: sampling, segmentation and gaze regression in one sweep.
STRATEGY = "Ours (ROI+Random)"
COMPRESSION = 8.0
EVAL_IDX = list(range(SEQUENCES))
#: Replica count of the sharded mode.
WORKERS = 2
#: The PR acceptance bar for the batched strategy sweep at CI scale.
TARGET_SPEEDUP = 1.5
#: Best-of repeats per mode (fresh strategy + RNG each repeat).
REPEATS = 2

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_strategy.json"


def _dataset() -> SyntheticEyeDataset:
    return SyntheticEyeDataset(
        DatasetConfig(
            height=HEIGHT,
            width=WIDTH,
            frames_per_sequence=FRAMES,
            num_sequences=SEQUENCES,
            seed=0,
            eye_scale=BENCH_EYE_SCALE,
            dynamics=BENCH_DYNAMICS,
        )
    )


def _segmenter() -> ViTSegmenter:
    return ViTSegmenter(
        ViTConfig(height=HEIGHT, width=WIDTH, patch=8, dim=24, heads=3,
                  depth=1, decoder_depth=1),
        np.random.default_rng(1),
    )


def _metrics_bytes(evaluation) -> bytes:
    """Canonical byte serialization of a ``StrategyEvaluation``."""
    return json.dumps(asdict(evaluation), sort_keys=True).encode()


def _time_mode(dataset, segmenter, **kwargs) -> tuple[float, object]:
    """Best-of-REPEATS wall seconds for one execution mode."""
    best, evaluation = None, None
    for _ in range(REPEATS):
        strategy = make_strategy(STRATEGY, COMPRESSION, dataset=dataset)
        rng = np.random.default_rng(
            int(np.random.default_rng(7).integers(2**32))
        )
        start = time.perf_counter()  # repro: allow[REP102] benchmark timing harness
        result = evaluate_strategy(
            strategy, segmenter, dataset, EVAL_IDX, rng, **kwargs
        )
        elapsed = time.perf_counter() - start  # repro: allow[REP102] benchmark timing harness
        if best is None or elapsed < best:
            best, evaluation = elapsed, result
    return best, evaluation


def run_strategy_bench() -> dict:
    dataset = _dataset()
    segmenter = _segmenter()
    per_row_s, per_row = _time_mode(dataset, segmenter)
    batched_s, batched = _time_mode(dataset, segmenter, batched=True)
    sharded_s, sharded = _time_mode(dataset, segmenter, workers=WORKERS)

    # The speedup only counts if the metrics are byte-identical — a
    # faster sweep that drifts is a broken sweep.
    reference = _metrics_bytes(per_row)
    assert _metrics_bytes(batched) == reference, "batched sweep drifted"
    assert _metrics_bytes(sharded) == reference, "sharded sweep drifted"

    frames = per_row.frames
    record = {
        "strategy": STRATEGY,
        "compression": COMPRESSION,
        "sequences": SEQUENCES,
        "frames_per_sequence": FRAMES,
        "frames": frames,
        "workers": WORKERS,
        "per_row_s": per_row_s,
        "batched_s": batched_s,
        "sharded_s": sharded_s,
        "per_row_fps": frames / per_row_s,
        "batched_fps": frames / batched_s,
        "sharded_fps": frames / sharded_s,
        "speedup": per_row_s / batched_s,
        "sharded_speedup": per_row_s / sharded_s,
        "bitwise_identical": True,
    }
    record_bench(_RESULT_PATH, record)
    return record


def test_strategy_throughput(benchmark):
    record = once(benchmark, run_strategy_bench)

    print()
    print(
        f"strategy sweep ({STRATEGY}, {record['frames']} frames): "
        f"per-row {record['per_row_s']:.2f}s, "
        f"batched {record['batched_s']:.2f}s "
        f"({record['speedup']:.2f}x), "
        f"sharded(workers={WORKERS}) {record['sharded_s']:.2f}s "
        f"({record['sharded_speedup']:.2f}x)"
    )

    assert record["bitwise_identical"]
    assert record["speedup"] >= TARGET_SPEEDUP, (
        f"batched strategy sweep only {record['speedup']:.2f}x over the "
        f"per-row loop (target {TARGET_SPEEDUP}x)"
    )
