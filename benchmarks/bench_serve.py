"""Serving throughput: cross-client micro-batching vs per-client dispatch.

Not a paper figure — this benchmark seeds the performance trajectory of
the serving runtime (``repro.serve``).  It trains one CI-scale tracker
through ``repro.api`` (session-memoized), materializes a fleet of
synthetic client eye-streams, and serves the *same* frames twice:

* **per-client sequential** — every queued frame dispatched alone
  through the scalar stage kernels (the naive one-loop-per-stream
  server);
* **micro-batched** — each tick's due frames dispatched as one
  cross-client rank through the engine's batched ``process_batch``
  kernels (vectorized eventification, grouped packed-ViT inference).

Both modes produce bitwise-identical per-client gaze streams (asserted
here and pinned by ``tests/serve/``); the wall-clock ratio is the
benefit of batching *across tenants* rather than across a dataset.
Appends to ``BENCH_serve.json`` at the repository root (git-stamped
``trajectory`` entries, shared ``record_bench`` plumbing).
"""

from __future__ import annotations

import time
from pathlib import Path

from _helpers import BENCH_EPOCHS, BENCH_EYE_SCALE, once, record_bench
from repro.api import ExperimentSpec, Session
from repro.serve import ClientSensorFactory, ServeScenario, simulate_serving

#: Wide client fleet: micro-batching pays off when many tenants are due
#: per tick (the production multi-user story), so the bench serves 24.
CLIENTS = 24
TICKS = 10
#: The PR acceptance bar for micro-batched serving at CI scale.
TARGET_SPEEDUP = 1.5
#: Best-of repeats per mode (the served frames are identical each time).
REPEATS = 3

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

BENCH_SPEC = {
    "workload": "serve",
    "dataset": {
        "num_sequences": 3,
        "frames_per_sequence": 8,
        "seed": 11,
        "eye_scale": BENCH_EYE_SCALE,
        "dynamics": "lively",
    },
    "training": {"train_indices": [0, 1], "epochs": BENCH_EPOCHS},
}

SCENARIO = ServeScenario(num_clients=CLIENTS, duration_ticks=TICKS)


def run_serve_bench() -> dict:
    spec = ExperimentSpec.from_dict(BENCH_SPEC)
    with Session() as session:
        pipeline = session.pipeline(spec)
    graph, template = pipeline.tracking_setup()
    factory = ClientSensorFactory(template, spec.sensor.sensor_seed)
    dataset_cfg = pipeline.config.dataset

    def serve(micro_batch: bool):
        best = None
        for _ in range(REPEATS):
            run = simulate_serving(
                graph=graph,
                state_factory=factory,
                dataset_cfg=dataset_cfg,
                scenario=SCENARIO,
                micro_batch=micro_batch,
            )
            if best is None or run.wall_seconds < best.wall_seconds:
                best = run
        return best

    sequential = serve(micro_batch=False)
    batched = serve(micro_batch=True)
    frames = batched.summary["frames"]["processed"]
    record = {
        "clients": CLIENTS,
        "duration_ticks": TICKS,
        "frames": frames,
        "sequential_s": sequential.wall_seconds,
        "batched_s": batched.wall_seconds,
        "sequential_fps": frames / sequential.wall_seconds,
        "batched_fps": frames / batched.wall_seconds,
        "speedup": sequential.wall_seconds / batched.wall_seconds,
        "bitwise_identical": batched.gaze_log == sequential.gaze_log,
        "telemetry": batched.summary,
    }
    record_bench(_RESULT_PATH, record)
    return record


def test_serve_throughput(benchmark):
    record = once(benchmark, run_serve_bench)

    print()
    print(
        f"served {record['frames']} frames from {CLIENTS} clients: "
        f"per-client {record['sequential_fps']:.0f} fps, "
        f"micro-batched {record['batched_fps']:.0f} fps "
        f"({record['speedup']:.2f}x)"
    )

    assert record["bitwise_identical"], (
        "micro-batched serving diverged from per-client dispatch"
    )
    assert record["speedup"] >= TARGET_SPEEDUP, (
        f"cross-client micro-batching only {record['speedup']:.2f}x over "
        f"per-client sequential dispatch (target {TARGET_SPEEDUP}x)"
    )
