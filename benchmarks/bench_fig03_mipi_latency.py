"""Fig. 3 — MIPI CSI-2 transfer latency vs. image resolution.

Paper claim: by 4K, the per-frame MIPI transfer (~22 ms) alone exceeds the
15 ms end-to-end tracking-latency budget, so it can no longer be hidden by
pipelining — motivating in-sensor data reduction.
"""

from repro.core import PaperComparison, Table
from repro.hardware import LATENCY_REQUIREMENT_S, STANDARD_RESOLUTIONS, MipiLink


def mipi_sweep() -> dict[str, float]:
    link = MipiLink()
    return {
        name: link.frame_latency(*hw)
        for name, hw in STANDARD_RESOLUTIONS.items()
    }


def test_fig03_mipi_latency(benchmark):
    latencies = benchmark(mipi_sweep)

    table = Table(
        ["resolution", "latency (ms)", "exceeds 15 ms budget"],
        title="Fig. 3 — MIPI CSI-2 latency vs resolution",
    )
    for name, latency in latencies.items():
        table.add_row(
            name,
            round(latency * 1e3, 2),
            "YES" if latency > LATENCY_REQUIREMENT_S else "no",
        )
    print()
    print(table.render())

    cmp = PaperComparison("Fig. 3")
    cmp.add("4K latency (ms)", 22, round(latencies["4K"] * 1e3, 1))
    cmp.add(
        "first resolution over budget",
        "4K",
        next(n for n, l in latencies.items() if l > LATENCY_REQUIREMENT_S),
    )
    print(cmp.render())

    assert latencies["720P"] < LATENCY_REQUIREMENT_S
    assert latencies["2K"] < LATENCY_REQUIREMENT_S
    assert latencies["4K"] > LATENCY_REQUIREMENT_S
    assert latencies["8K"] > latencies["4K"]
