"""System-context check: eye tracking within a VR headset's power budget.

Sec. II-C's framing: commercial eye trackers draw >2 W against a 3-6 W
standalone-headset budget.  This bench converts the per-frame energy
model into sustained two-eye tracking power and battery-life impact.
"""

from _helpers import once
from repro.core import PaperComparison, Table
from repro.hardware import VARIANTS
from repro.hardware.power_budget import HeadsetBudget

FPS = 120.0


def run_power_budget():
    budget = HeadsetBudget()
    reports = {v: budget.report(v, FPS) for v in VARIANTS}
    gain = budget.battery_gain_hours("NPU-Full", "BlissCam", FPS)
    return budget, reports, gain


def test_power_budget(benchmark):
    budget, reports, gain_hours = once(benchmark, run_power_budget)

    table = Table(
        ["variant", "tracking power (mW, 2 eyes)", "share of 5 W budget"],
        title="Headset power budget at 120 FPS",
    )
    for variant, report in reports.items():
        table.add_row(
            variant,
            round(report.power_w * 1e3, 1),
            f"{report.budget_fraction:.1%}",
        )
    print()
    print(table.render())

    cmp = PaperComparison("Sec. II power context")
    cmp.add(
        "conventional tracker is a major consumer",
        ">10 % of budget (paper: sensors alone 10-60 %)",
        f"{reports['NPU-Full'].budget_fraction:.1%}",
    )
    cmp.add(
        "BlissCam share of budget",
        "small",
        f"{reports['BlissCam'].budget_fraction:.1%}",
    )
    cmp.add("battery life gained (min)", ">0", round(gain_hours * 60, 1))
    print(cmp.render())

    assert reports["NPU-Full"].power_w > reports["BlissCam"].power_w
    assert gain_hours > 0
    # Every variant must fit the headset budget at the paper's frame rate.
    assert all(r.budget_fraction < 1.0 for r in reports.values())
