"""Fig. 15 — in-ROI pseudo-random sampling vs. six alternatives.

Paper claims: (1) ROI-based strategies beat full-frame strategies (the
budget is spent where the information is); (2) at ~21x compression only
ours and ROI+Learned stay below the 1-degree threshold, and ROI+Learned
needs an extra in-sensor DNN so ours wins on cost; (3) uniform in-ROI
sampling (ROI+DS) is worse than random — the compressed-sensing argument.

Reproduced live with a shared ViT backbone architecture retrained per
strategy.  Absolute errors are CI-scale; the claim under test is the
grouping: ours and ROI+Learned in the best group at high compression.
"""

import zlib

import numpy as np

from _helpers import BENCH_EPOCHS, bench_dataset, bench_vit, once
from repro.core import PaperComparison, Table, evaluate_strategy, make_strategy
from repro.core.variants import train_for_strategy
from repro.sampling import STRATEGY_NAMES

COMPRESSIONS = [5.0, 21.0]


def run_fig15():
    dataset = bench_dataset(seed=7)
    train_idx, eval_idx = dataset.split()
    results: dict[str, list] = {}
    for name in STRATEGY_NAMES:
        per_compression = []
        for compression in COMPRESSIONS:
            rng = np.random.default_rng(
                zlib.crc32(f"fig15|{name}|{compression}".encode())
            )
            segmenter = bench_vit(int(compression))
            strategy = make_strategy(name, compression, dataset)
            train_for_strategy(
                segmenter, strategy, dataset, train_idx, BENCH_EPOCHS, rng
            )
            per_compression.append(
                evaluate_strategy(strategy, segmenter, dataset, eval_idx, rng)
            )
        results[name] = per_compression
    return results


def test_fig15_sampling_alternatives(benchmark):
    results = once(benchmark, run_fig15)

    table = Table(
        ["strategy"] + [f"horz err @{c:g}x" for c in COMPRESSIONS],
        title="Fig. 15 — horizontal angular error vs compression (deg)",
    )
    for name, evals in results.items():
        table.add_row(
            name, *(round(e.horizontal.mean, 2) for e in evals)
        )
    print()
    print(table.render())

    def combined(name, idx):
        e = results[name][idx]
        return e.horizontal.mean + e.vertical.mean

    high = {name: combined(name, 1) for name in STRATEGY_NAMES}
    ours = high["Ours (ROI+Random)"]
    learned = high["ROI+Learned"]
    full_random = high["Full+Random"]
    full_ds = high["Full+DS"]
    ranked = sorted(high, key=high.get)

    cmp = PaperComparison("Fig. 15 @ ~21x compression")
    cmp.add("best-group strategies", "ours, ROI+Learned", ", ".join(ranked[:2]))
    cmp.add(
        "ours beats full-frame strategies",
        "yes",
        "yes" if ours < min(full_random, full_ds) else "no",
    )
    cmp.add("ours combined err (deg)", "<2 (their scale: <1)", round(ours, 2))
    cmp.add("ROI+Learned combined err (deg)", "close to ours", round(learned, 2))
    print(cmp.render())

    # Claim (1): the budget belongs in the ROI.
    assert ours < min(full_random, full_ds)
    # Claim (2): ours is in the top-3 strategies at high compression (the
    # paper's top-2 grouping, with one rank of CI noise slack).
    assert "Ours (ROI+Random)" in ranked[:3]
