"""Fig. 17 — energy saving vs. the sensor logic layer's process node.

Paper claims: sweeping the sensor logic layer from 16 nm to 65 nm under a
7 nm SoC and a 22 nm SoC, (1) newer logic nodes increase BlissCam's
saving; (2) the saving is *more sensitive* to the logic node when the SoC
is 7 nm — with a 22 nm SoC the off-sensor work dominates the total and
leaves less room for in-sensor optimization.
"""

from _helpers import once
from repro.core import PaperComparison, Table
from repro.hardware import ProcessNodes, SystemEnergyModel, WorkloadProfile

LOGIC_NODES = [16, 22, 40, 65]
SOC_NODES = [7, 22]
FPS = 120.0


def run_fig17():
    profile = WorkloadProfile()
    base = SystemEnergyModel()
    savings: dict[int, dict[int, float]] = {}
    for soc in SOC_NODES:
        savings[soc] = {}
        for logic in LOGIC_NODES:
            model = base.with_nodes(
                ProcessNodes(sensor_logic_nm=logic, host_nm=soc)
            )
            savings[soc][logic] = model.savings_over(
                "NPU-Full", "BlissCam", profile, FPS
            )
    return savings


def test_fig17_process_node(benchmark):
    savings = once(benchmark, run_fig17)

    table = Table(
        ["logic node (nm)"] + [f"{soc} nm SoC" for soc in SOC_NODES],
        title="Fig. 17 — BlissCam energy saving vs process nodes",
    )
    for logic in LOGIC_NODES:
        table.add_row(logic, *(round(savings[soc][logic], 2) for soc in SOC_NODES))
    print()
    print(table.render())

    spread = {
        soc: savings[soc][LOGIC_NODES[0]] - savings[soc][LOGIC_NODES[-1]]
        for soc in SOC_NODES
    }
    cmp = PaperComparison("Fig. 17")
    cmp.add("saving grows with newer logic node", "yes", "yes")
    cmp.add("7 nm SoC sweep spread (x)", "larger", round(spread[7], 2))
    cmp.add("22 nm SoC sweep spread (x)", "smaller", round(spread[22], 2))
    print(cmp.render())

    for soc in SOC_NODES:
        series = [savings[soc][logic] for logic in LOGIC_NODES]
        assert all(a > b for a, b in zip(series, series[1:])), series
    assert spread[7] > spread[22]
