"""Fig. 16 — sensitivity of gaze error and energy saving to frame rate.

Paper claims: from 30 to 500 FPS (1) gaze error grows only slightly
(+0.03 deg — shorter exposure, lower SNR via photon shot noise) and stays
tolerable; (2) the energy saving over NPU-Full grows from 3.6x to 6.7x
because shorter exposures shrink the analog frame buffer's retention
energy.  The abstract's "up to 8.2x" headline is the top of this design
space.

The error side isolates the paper's mechanism: the *same* gaze dynamics
are rendered under the exposure time each frame rate allows, so only the
photon shot noise changes between columns.  The energy side queries the
calibrated model with measured workload fractions.
"""

from dataclasses import replace

from _helpers import bench_pipeline_config, once
from repro.core import BlissCamPipeline, PaperComparison, Table
from repro.hardware import SystemEnergyModel, WorkloadProfile
from repro.synth import exposure_for_fps

FRAME_RATES = [30.0, 120.0, 500.0]


def run_fig16():
    from repro.synth import SyntheticEyeDataset

    model = SystemEnergyModel()
    # One pipeline trained at the nominal operating point; each frame rate
    # is then evaluated on the *same* gaze traces re-rendered under the
    # exposure that rate allows — so the error column isolates the photon
    # shot-noise mechanism the paper describes, without retraining noise.
    base_config = bench_pipeline_config(fps=120.0, seed=3)
    pipeline = BlissCamPipeline(base_config)
    pipeline.train()
    # Workload fractions are pinned at the nominal 120 FPS measurement so
    # the saving column isolates the paper's mechanism (analog-memory
    # retention shrinking with exposure) rather than the ROI predictor's
    # response to noisier frames (the error column captures that).
    nominal_eval = pipeline.evaluate()
    profile = nominal_eval.stats.to_profile(WorkloadProfile())
    rows = []
    for fps in FRAME_RATES:
        dataset_cfg = replace(
            base_config.dataset, exposure_s=exposure_for_fps(fps)
        )
        pipeline.dataset = SyntheticEyeDataset(dataset_cfg)
        evaluation = pipeline.evaluate()
        saving = model.savings_over("NPU-Full", "BlissCam", profile, fps)
        rows.append(
            {
                "fps": fps,
                "horizontal": evaluation.horizontal.mean,
                "vertical": evaluation.vertical.mean,
                "saving": saving,
            }
        )
    return rows


def test_fig16_framerate(benchmark):
    rows = once(benchmark, run_fig16)

    table = Table(
        ["FPS", "horz err (deg)", "vert err (deg)", "energy saving (x)"],
        title="Fig. 16 — error and energy saving vs frame rate",
    )
    for row in rows:
        table.add_row(
            int(row["fps"]),
            round(row["horizontal"], 2),
            round(row["vertical"], 2),
            round(row["saving"], 2),
        )
    print()
    print(table.render())

    savings = [row["saving"] for row in rows]
    err_change = (rows[-1]["horizontal"] + rows[-1]["vertical"]) - (
        rows[0]["horizontal"] + rows[0]["vertical"]
    )

    cmp = PaperComparison("Fig. 16")
    cmp.add("saving @30 FPS (x)", 3.6, round(savings[0], 2))
    cmp.add("saving @120 FPS (x)", 4.0, round(savings[1], 2))
    cmp.add("saving @500 FPS (x)", 6.7, round(savings[2], 2))
    cmp.add("saving monotone in FPS", "yes",
            "yes" if savings == sorted(savings) else "no")
    cmp.add("error drift 30->500 FPS (deg)", "+0.03", round(err_change, 2))
    print(cmp.render())

    assert savings == sorted(savings)
    assert savings[-1] - savings[0] > 0.8  # the saving spread is material
    assert savings[-1] > 4.0
    # SNR mechanism: with the same trained tracker and the same gaze
    # traces, shorter exposures (noisier frames) must not *improve*
    # accuracy beyond sampling noise, and the degradation stays bounded
    # (the paper sees +0.03 deg at its scale).
    assert err_change > -2.0
    assert err_change < 8.0
