"""Microbenchmarks of the hot kernels (conventional pytest-benchmark use).

These are not paper figures; they track the library's own performance:
ViT forward, ViT train step, the functional sensor's capture path, the
run-length codec, and the synthetic renderer.
"""

import numpy as np

from _helpers import BENCH_HEIGHT, BENCH_WIDTH, bench_vit
from repro.hardware.sensor import BlissCamSensor, RunLengthCodec
from repro.nn import Adam, CrossEntropyLoss
from repro.synth import EyeGeometry, EyeRenderer, EyeState

RNG = np.random.default_rng(0)


def test_vit_forward(benchmark):
    vit = bench_vit()
    frame = RNG.random((1, BENCH_HEIGHT, BENCH_WIDTH))
    mask = RNG.random((1, BENCH_HEIGHT, BENCH_WIDTH)) < 0.1
    result = benchmark(lambda: vit(frame * mask, mask))
    assert result.shape == (1, BENCH_HEIGHT, BENCH_WIDTH, 4)


def test_vit_train_step(benchmark):
    vit = bench_vit()
    frame = RNG.random((2, BENCH_HEIGHT, BENCH_WIDTH))
    mask = RNG.random((2, BENCH_HEIGHT, BENCH_WIDTH)) < 0.1
    target = RNG.integers(0, 4, size=(2, BENCH_HEIGHT, BENCH_WIDTH))
    loss_fn = CrossEntropyLoss()
    optimizer = Adam(vit.parameters(), lr=1e-3)

    def step():
        loss = loss_fn.forward(vit(frame * mask, mask), target)
        vit.zero_grad()
        vit.backward(loss_fn.backward())
        optimizer.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_sensor_capture(benchmark):
    sensor = BlissCamSensor(
        BENCH_HEIGHT,
        BENCH_WIDTH,
        roi_predictor=lambda e, s: np.array([0.25, 0.25, 0.75, 0.75]),
        sampling_rate=0.2,
        seed=0,
    )
    frames = [RNG.random((BENCH_HEIGHT, BENCH_WIDTH)) for _ in range(2)]
    sensor.capture(frames[0], None)

    out = benchmark(lambda: sensor.capture(frames[1], None))
    assert out is not None and out.sampled_pixels > 0


def test_rle_roundtrip(benchmark):
    codec = RunLengthCodec()
    stream = np.where(
        RNG.random(40_000) < 0.2, RNG.integers(1, 1024, 40_000), 0
    )

    def roundtrip():
        tokens, stats = codec.encode(stream)
        return codec.decode(tokens), stats

    decoded, stats = benchmark(roundtrip)
    np.testing.assert_array_equal(decoded, stream)
    assert stats.compression_ratio > 1.0


def test_renderer_frame(benchmark):
    renderer = EyeRenderer(
        EyeGeometry(), BENCH_HEIGHT, BENCH_WIDTH, np.random.default_rng(1)
    )
    state = EyeState(gaze_h=8.0, gaze_v=-4.0)
    frame = benchmark(lambda: renderer.render(state))
    assert frame.image.shape == (BENCH_HEIGHT, BENCH_WIDTH)
