"""Ablation — joint training (Sec. III-C) vs training the stages apart.

The paper's pitch is that the sampling and tracking algorithms are
"(approximately) differentiable, which allows us to jointly train the
in-sensor and off-sensor operations to maximize end-to-end accuracy".
This bench runs the same architectures with (a) the full joint procedure
and (b) the ROI predictor cut off from the segmentation gradient, and
compares end-to-end gaze error and ROI quality.

Also sweeps the in-ROI sampling rate around the paper's ~20 % operating
point (Sec. VI-F territory).
"""

import numpy as np

from _helpers import bench_pipeline_config, bench_dataset, bench_vit, once
from repro.analysis import joint_vs_separate, sampling_rate_sweep
from repro.core import PaperComparison, Table

RATES = [0.05, 0.2, 0.6]


def run_ablation():
    comparison = joint_vs_separate(bench_pipeline_config(seed=9), seed=9)
    sweep = sampling_rate_sweep(
        bench_dataset(seed=13),
        segmenter_factory=lambda rng: bench_vit(int(rng.integers(0, 1 << 31))),
        rates=RATES,
        epochs=4,
        seed=13,
    )
    return comparison, sweep


def test_joint_training_ablation(benchmark):
    comparison, sweep = once(benchmark, run_ablation)

    table = Table(
        ["mode", "horz err (deg)", "vert err (deg)", "ROI IoU"],
        title="Ablation — joint vs separate training",
    )
    for mode, stats in comparison.items():
        table.add_row(
            mode,
            round(stats["horizontal"], 2),
            round(stats["vertical"], 2),
            round(stats["roi_iou"], 2),
        )
    print()
    print(table.render())

    table2 = Table(
        ["in-ROI rate", "compression (x)", "horz err", "vert err"],
        title="Ablation — in-ROI sampling-rate sweep (GT ROI)",
    )
    for row in sweep:
        table2.add_row(
            row["rate"],
            round(row["compression"], 1),
            round(row["horizontal"], 2),
            round(row["vertical"], 2),
        )
    print(table2.render())

    joint = comparison["joint"]
    separate = comparison["separate"]
    joint_err = joint["horizontal"] + joint["vertical"]
    separate_err = separate["horizontal"] + separate["vertical"]

    cmp = PaperComparison("joint-training ablation")
    cmp.add(
        "joint no worse than separate",
        "yes (joint maximizes end-to-end accuracy)",
        "yes" if joint_err <= separate_err * 1.25 else "no",
    )
    densest = sweep[-1]
    sparsest = sweep[0]
    cmp.add(
        "denser sampling helps accuracy",
        "yes (less compression, lower error)",
        "yes"
        if densest["horizontal"] + densest["vertical"]
        <= sparsest["horizontal"] + sparsest["vertical"] + 0.5
        else "no",
    )
    print(cmp.render())

    # Joint training must not lose to separate training (CI noise slack).
    assert joint_err <= separate_err * 1.25
    # The sweep's densest point must not be the worst one.
    errors = [row["horizontal"] + row["vertical"] for row in sweep]
    assert errors[-1] <= max(errors) + 1e-9
