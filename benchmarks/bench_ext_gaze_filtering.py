"""Extension — temporal gaze filtering on top of the BlissCam pipeline.

Not a paper figure: the paper's gaze stage is memoryless.  This bench
quantifies the obvious production extension — a constant-velocity Kalman
filter with a saccade gate over the per-frame gaze estimates — on the
same synthetic evaluation sequences.  Fixation jitter drops while
saccade tracking stays responsive.
"""

import numpy as np

from _helpers import bench_pipeline_config, once
from repro.core import BlissCamPipeline, Table
from repro.gaze import KalmanGazeFilter
from repro.gaze.metrics import angular_errors


def run_extension():
    pipeline = BlissCamPipeline(bench_pipeline_config(seed=21))
    pipeline.train()
    result = pipeline.evaluate()
    filt = KalmanGazeFilter(fps=pipeline.config.dataset.fps)
    filtered = filt.filter_sequence(result.predictions)
    raw_h, raw_v = angular_errors(result.predictions, result.truths)
    f_h, f_v = angular_errors(filtered, result.truths)
    return (raw_h, raw_v), (f_h, f_v)


def test_ext_gaze_filtering(benchmark):
    (raw_h, raw_v), (f_h, f_v) = once(benchmark, run_extension)

    table = Table(
        ["pipeline", "horz err (deg)", "vert err (deg)", "horz std", "vert std"],
        title="Extension — Kalman-filtered gaze vs raw per-frame estimates",
    )
    table.add_row(
        "raw (paper's memoryless)",
        round(raw_h.mean, 2), round(raw_v.mean, 2),
        round(raw_h.std, 2), round(raw_v.std, 2),
    )
    table.add_row(
        "Kalman + saccade gate",
        round(f_h.mean, 2), round(f_v.mean, 2),
        round(f_h.std, 2), round(f_v.std, 2),
    )
    print()
    print(table.render())

    raw_total = raw_h.mean + raw_v.mean
    filt_total = f_h.mean + f_v.mean
    print(f"combined error: raw {raw_total:.2f} deg -> filtered {filt_total:.2f} deg")

    # Filtering must not make tracking meaningfully worse; with jittery
    # CI-scale estimates it typically helps.
    assert filt_total <= raw_total * 1.15
