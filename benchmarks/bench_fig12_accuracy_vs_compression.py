"""Fig. 12 — end-to-end gaze error vs. compression rate.

The paper's headline accuracy result: the jointly-designed pipeline
(NPU-ROI-Sample: ROI prediction + in-ROI random sampling + sparse ViT)
keeps both angular errors low across compression rates, while dense CNN
baselines (RITnet, EdGaze) degrade as their inputs are downsampled.

Reproduced live: every (variant, compression) point trains a small
segmenter on the synthetic dataset and evaluates gaze error on held-out
sequences.  Absolute errors differ from the paper (tiny models, synthetic
data); the reproduced claim is the *ordering* — ours stays accurate and
flat where the CNN baselines blow up.
"""

import zlib

import numpy as np

from _helpers import BENCH_EPOCHS, bench_dataset, bench_vit, once
from repro.core import PaperComparison, Table, evaluate_strategy, make_strategy
from repro.core.variants import train_for_strategy
from repro.segmentation import EdGazeNet, RITNet

COMPRESSIONS = [2.0, 8.0, 20.0]

#: (display name, segmenter factory, sampling strategy name)
VARIANTS = [
    ("RITnet (Full+DS)", lambda rng: RITNet(rng, base_channels=4), "Full+DS"),
    ("EdGaze (Full+DS)", lambda rng: EdGazeNet(rng, base_channels=4), "Full+DS"),
    ("NPU-Full (ViT, Full+DS)", lambda rng: bench_vit(2), "Full+DS"),
    ("NPU-ROI (ViT, ROI+DS)", lambda rng: bench_vit(3), "ROI+DS"),
    ("NPU-ROI-Sample (ours)", lambda rng: bench_vit(4), "Ours (ROI+Random)"),
]


def run_fig12():
    dataset = bench_dataset()
    train_idx, eval_idx = dataset.split()
    results = {}
    for name, factory, strategy_name in VARIANTS:
        errors = []
        for compression in COMPRESSIONS:
            rng = np.random.default_rng(zlib.crc32(f"{name}|{compression}".encode()))
            segmenter = factory(rng)
            strategy = make_strategy(strategy_name, compression, dataset)
            train_for_strategy(
                segmenter, strategy, dataset, train_idx, BENCH_EPOCHS, rng
            )
            evaluation = evaluate_strategy(
                strategy, segmenter, dataset, eval_idx, rng
            )
            errors.append(evaluation)
        results[name] = errors
    return results


def test_fig12_accuracy_vs_compression(benchmark):
    results = once(benchmark, run_fig12)

    for axis in ("vertical", "horizontal"):
        table = Table(
            ["variant"] + [f"{c:g}x" for c in COMPRESSIONS],
            title=f"Fig. 12 — {axis} angular error (deg, mean +/- std)",
        )
        for name, evals in results.items():
            cells = [
                f"{getattr(e, axis).mean:.2f}+/-{getattr(e, axis).std:.2f}"
                for e in evals
            ]
            table.add_row(name, *cells)
        print()
        print(table.render())

    ours = results["NPU-ROI-Sample (ours)"][-1]
    rit = results["RITnet (Full+DS)"][-1]
    edg = results["EdGaze (Full+DS)"][-1]
    ours_err = ours.horizontal.mean + ours.vertical.mean
    rit_err = rit.horizontal.mean + rit.vertical.mean
    edg_err = edg.horizontal.mean + edg.vertical.mean

    cmp = PaperComparison("Fig. 12 @ ~20x compression")
    cmp.add("ours vertical err (deg)", 0.8, round(ours.vertical.mean, 2))
    cmp.add("ours horizontal err (deg)", 0.7, round(ours.horizontal.mean, 2))
    cmp.add(
        "ours beats CNN baselines",
        "yes",
        "yes" if ours_err <= min(rit_err, edg_err) * 1.1 else "no",
    )
    cmp.add(
        "ours std < baselines' std (robustness)",
        "yes",
        "yes"
        if ours.horizontal.std <= max(rit.horizontal.std, edg.horizontal.std)
        else "no",
    )
    print(cmp.render())

    # Ordering claim: at the highest compression, the co-designed sparse
    # pipeline is no worse than the dense CNN baselines.
    assert ours_err <= min(rit_err, edg_err) * 1.1
