"""Fig. 2 — mobile GPU capability vs. eye-tracking algorithm demand.

The paper's point: compute throughput of successive Jetson-class mobile
GPUs has outgrown the GFLOPS that state-of-the-art eye-tracking algorithms
need at 120 Hz, so *tracking rate* is not the bottleneck — latency and
energy are.  We regenerate the figure with the MAC counts of our own
implementations (RITnet-style, EdGaze-style, our ViT dense and sparse) at
the paper's 640x400 resolution, against published GPU peak numbers.
"""

import numpy as np

from repro.core import PaperComparison, Table
from repro.segmentation import EdGazeNet, RITNet, ViTConfig, ViTSegmenter

#: Published peak FP16 GFLOPS of Nvidia Jetson modules (release year).
JETSON_GFLOPS = {
    "TX1 (2015)": 512,
    "TX2 (2017)": 1330,
    "Xavier (2018)": 11000,
    "Xavier-NX (2020)": 6000,
    "Orin-NX (2023)": 50000,
    "Orin (2023)": 170000,
}

TRACKING_HZ = 120


def algorithm_demands() -> dict[str, float]:
    """GFLOPS required at 120 Hz by our implementations (2 FLOPs per MAC)."""
    rng = np.random.default_rng(0)
    height, width = 400, 640
    ritnet = RITNet(rng, base_channels=16)
    edgaze = EdGazeNet(rng, base_channels=16)
    vit = ViTSegmenter(ViTConfig.paper(height, width), rng)
    sparse_tokens = int(vit.config.tokens * 0.108)
    to_gflops = lambda macs: 2 * macs * TRACKING_HZ / 1e9
    return {
        "RITnet-style (dense)": to_gflops(ritnet.mac_count(height, width)),
        "EdGaze-style (dense)": to_gflops(edgaze.mac_count(height, width)),
        "Our ViT (dense)": to_gflops(vit.mac_count()),
        "Our ViT (sparse, 10.8% tokens)": to_gflops(vit.mac_count(sparse_tokens)),
    }


def test_fig02_gflops(benchmark):
    demands = benchmark(algorithm_demands)

    table = Table(
        ["algorithm / GPU", "GFLOPS"],
        title="Fig. 2 — compute supply vs demand @120 Hz",
    )
    for name, gflops in JETSON_GFLOPS.items():
        table.add_row(f"GPU: {name}", float(gflops))
    for name, gflops in demands.items():
        table.add_row(f"ALG: {name}", round(gflops, 1))
    print()
    print(table.render())

    newest_gpu = max(JETSON_GFLOPS.values())
    cmp = PaperComparison("Fig. 2")
    cmp.add(
        "all algorithms fit the newest mobile GPU",
        "yes",
        "yes" if all(d < newest_gpu for d in demands.values()) else "no",
    )
    cmp.add(
        "sparse ViT demand vs dense (x)",
        ">4 (robustness at 4x fewer MACs vs RITnet)",
        round(demands["Our ViT (dense)"] / demands["Our ViT (sparse, 10.8% tokens)"], 1),
    )
    print(cmp.render())

    assert all(demand < newest_gpu for demand in demands.values())
    # Sparsity must cut the ViT's cost by well over the paper's 4x claim
    # (vs RITnet) and bring it under both the dense ViT and RITnet.
    sparse = demands["Our ViT (sparse, 10.8% tokens)"]
    assert sparse < demands["Our ViT (dense)"] / 4
    assert sparse < demands["RITnet-style (dense)"] / 4
