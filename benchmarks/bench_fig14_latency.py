"""Fig. 14 — end-to-end tracking latency of the four designs at 120 FPS.

Paper numbers: BlissCam cuts tracking latency 1.4x over NPU-Full, mainly
by accelerating segmentation 7.7x (it runs on 10.8 % of the pixels);
latency is similar to S+NPU/NPU-ROI because exposure dominates all three;
the in-sensor stages shrink exposure by only ~1.8 %.
"""

from _helpers import bench_evaluate_spec, once
from repro.api import ExperimentSpec, Session, stage_timing_table
from repro.core import PaperComparison, Table
from repro.hardware import TimingModel, VARIANTS, WorkloadProfile

FPS = 120.0


def run_fig14():
    # As in Fig. 13: headline latencies at the paper-scale workload
    # profile, with the CI pipeline's measured fractions (and the
    # engine's measured stage timings, via RunResult) reported too.
    with Session() as session:
        run_result = session.run(
            ExperimentSpec.from_dict(bench_evaluate_spec(fps=FPS))
        )
    measured = WorkloadProfile(**run_result.workload_profile)
    profile = WorkloadProfile()
    timing = TimingModel()
    latencies = {v: timing.tracking_latency(v, profile, FPS) for v in VARIANTS}
    reduction = timing.exposure_reduction("BlissCam", profile, FPS)
    feasible = {v: timing.schedule_feasible(v, profile, FPS) for v in VARIANTS}
    measured_ratio = (
        timing.tracking_latency("NPU-Full", measured, FPS).total
        / timing.tracking_latency("BlissCam", measured, FPS).total
    )
    return latencies, reduction, feasible, measured_ratio, run_result.stage_timings


def test_fig14_latency(benchmark):
    latencies, exposure_reduction, feasible, measured_ratio, stage_timings = (
        once(benchmark, run_fig14)
    )

    stages = sorted({k for lat in latencies.values() for k in lat.stages})
    table = Table(
        ["stage (ms)"] + list(VARIANTS),
        title="Fig. 14 — latency breakdown at 120 FPS",
    )
    for stage in stages:
        table.add_row(
            stage,
            *(
                round(latencies[v].stages.get(stage, 0.0) * 1e3, 3)
                for v in VARIANTS
            ),
        )
    table.add_row("TOTAL", *(round(latencies[v].total * 1e3, 2) for v in VARIANTS))
    table.add_row("sustains 120 FPS", *(str(feasible[v]) for v in VARIANTS))
    print()
    print(table.render())

    full = latencies["NPU-Full"].total
    bliss = latencies["BlissCam"].total
    seg_speedup = (
        latencies["NPU-Full"].stages["segmentation"]
        / latencies["BlissCam"].stages["segmentation"]
    )

    cmp = PaperComparison("Fig. 14 @ 120 FPS")
    cmp.add("latency reduction over NPU-Full (x)", 1.4, round(full / bliss, 2))
    cmp.add("segmentation speedup (x)", 7.7, round(seg_speedup, 1))
    cmp.add("NPU-Full latency (ms)", "~15", round(full * 1e3, 1))
    cmp.add("BlissCam seg time (ms)", 0.87, round(
        latencies["BlissCam"].stages["segmentation"] * 1e3, 2))
    cmp.add("exposure reduction (%)", 1.8, round(100 * exposure_reduction, 1))
    cmp.add(
        "reduction with CI-measured fractions (x)",
        "(smaller frame, bigger eye)",
        round(measured_ratio, 2),
    )
    print(cmp.render())

    # Modeled milliseconds above; measured engine wall-clock shares of
    # the same evaluation run below (stage timings via RunResult).
    print()
    print(
        stage_timing_table(
            stage_timings,
            title="measured engine wall-clock shares (same run)",
        ).render()
    )

    assert full / bliss > 1.2
    assert all(feasible.values())
    # Exposure dominates, so S+NPU / NPU-ROI / BlissCam are all close.
    assert (
        abs(latencies["S+NPU"].total - latencies["BlissCam"].total)
        < 0.1 * latencies["BlissCam"].total
    )
