"""Packaging for the BlissCam reproduction (pure-numpy, src layout)."""

from setuptools import find_packages, setup

setup(
    name="blisscam-repro",
    version="1.0.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of BlissCam (ISCA'24): in-sensor eventified ROI "
        "sampling for ultra-low-power eye tracking, with a staged "
        "execution engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # Only the offline eventification noise analysis
        # (repro.hardware.sensor.noise_analysis) uses scipy; the
        # training hot path's grey morphology is a numpy helper
        # (repro.nn.functional.grey_dilation / grey_erosion).
        "analysis": ["scipy"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ]
    },
)
