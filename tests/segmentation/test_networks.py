"""Tests for the three segmentation networks and metrics."""

import numpy as np
import pytest

from repro.nn import Adam, CrossEntropyLoss
from repro.segmentation import (
    EdGazeNet,
    RITNet,
    ViTConfig,
    ViTSegmenter,
    confusion_matrix,
    mean_iou,
    per_class_iou,
    pixel_accuracy,
)

RNG = np.random.default_rng(0)


def tiny_vit(height=32, width=32, patch=8):
    cfg = ViTConfig(
        height=height, width=width, patch=patch, dim=24, heads=3,
        depth=1, decoder_depth=1,
    )
    return ViTSegmenter(cfg, np.random.default_rng(1))


def _train_briefly(model, frames, masks, targets, steps=15, lr=5e-3):
    loss_fn = CrossEntropyLoss()
    opt = Adam(model.parameters(), lr=lr)
    first = None
    for _ in range(steps):
        logits = model(frames, masks)
        loss = loss_fn.forward(logits, targets)
        if first is None:
            first = loss
        model.zero_grad()
        model.backward(loss_fn.backward())
        opt.step()
    return first, loss


class TestViT:
    def test_output_shape(self):
        model = tiny_vit()
        logits = model(RNG.random((2, 32, 32)), np.ones((2, 32, 32), dtype=bool))
        assert logits.shape == (2, 32, 32, 4)

    def test_predict_returns_labels(self):
        model = tiny_vit()
        seg = model.predict(RNG.random((32, 32)), np.ones((32, 32), dtype=bool))
        assert seg.shape == (32, 32)
        assert seg.min() >= 0 and seg.max() < 4

    def test_trains_on_sparse_input(self):
        model = tiny_vit()
        frames = RNG.random((2, 32, 32))
        masks = RNG.random((2, 32, 32)) < 0.2
        targets = RNG.integers(0, 4, size=(2, 32, 32))
        first, last = _train_briefly(model, frames * masks, masks, targets)
        assert last < first

    def test_empty_tokens_are_masked_not_crashing(self):
        model = tiny_vit()
        masks = np.zeros((1, 32, 32), dtype=bool)
        masks[0, :8, :8] = True  # only one patch token valid
        logits = model(RNG.random((1, 32, 32)) * masks, masks)
        assert np.isfinite(logits).all()

    def test_mac_count_shrinks_with_sparsity(self):
        model = tiny_vit()
        dense = model.mac_count()
        sparse = model.mac_count(valid_tokens=2)
        assert sparse < dense / 3

    def test_paper_config_dimensions(self):
        cfg = ViTConfig.paper()
        assert cfg.depth == 12 and cfg.decoder_depth == 2
        assert cfg.dim == 192 and cfg.heads == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ViTConfig(height=30, width=32, patch=8)
        with pytest.raises(ValueError):
            ViTConfig(height=32, width=32, patch=8, dim=25, heads=3)

    def test_backward_to_input_shapes(self):
        model = tiny_vit()
        frames = RNG.random((1, 32, 32))
        masks = np.ones((1, 32, 32), dtype=bool)
        logits = model(frames, masks)
        grad_pix, grad_bit = model.backward_to_input(np.ones_like(logits))
        assert grad_pix.shape == (1, 32, 32)
        assert grad_bit.shape == (1, 32, 32)

    def test_state_dict_roundtrip(self):
        model = tiny_vit()
        frames = RNG.random((1, 32, 32))
        masks = np.ones((1, 32, 32), dtype=bool)
        out_a = model(frames, masks)
        clone = tiny_vit()
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(out_a, clone(frames, masks))


class TestCNNBaselines:
    @pytest.mark.parametrize("cls", [RITNet, EdGazeNet])
    def test_output_shape(self, cls):
        model = cls(np.random.default_rng(2), base_channels=4)
        logits = model(RNG.random((2, 32, 32)), np.ones((2, 32, 32)))
        assert logits.shape == (2, 32, 32, 4)

    @pytest.mark.parametrize("cls", [RITNet, EdGazeNet])
    def test_trains_dense(self, cls):
        model = cls(np.random.default_rng(3), base_channels=4)
        frames = RNG.random((2, 32, 32))
        masks = np.ones((2, 32, 32))
        targets = RNG.integers(0, 4, size=(2, 32, 32))
        first, last = _train_briefly(model, frames, masks, targets)
        assert last < first

    def test_edgaze_cheaper_than_ritnet(self):
        """EdGaze's depthwise-separable design uses fewer MACs (Fig. 2)."""
        rit = RITNet(np.random.default_rng(4), base_channels=8)
        edg = EdGazeNet(np.random.default_rng(5), base_channels=8)
        assert edg.mac_count(64, 64) < rit.mac_count(64, 64)

    def test_vit_sparse_cost_below_cnn(self):
        """At the paper's sparsity the ViT does less work than the CNNs,
        whose convolutions still cover the whole frame."""
        vit = tiny_vit(64, 64, patch=8)
        rit = RITNet(np.random.default_rng(6), base_channels=8)
        sparse_tokens = int(vit.config.tokens * 0.108)
        assert vit.mac_count(sparse_tokens) < rit.mac_count(64, 64)


class TestPredictBatchInvariance:
    """``predict_batch`` rows == per-frame ``predict``, bitwise.

    Mirrors the ROI predictor's ``TestBatchInvariance``: the batched
    dense forwards must be row-independent so the strategy graph's
    segment-or-reuse stage can stack the rank without changing any row.
    """

    B = 5

    def _inputs(self):
        rng = np.random.default_rng(11)
        frames = rng.random((self.B, 32, 32))
        masks = rng.random((self.B, 32, 32)) < 0.25
        return frames * masks, masks

    @pytest.mark.parametrize("cls", [EdGazeNet, RITNet])
    def test_cnn_batch_matches_per_frame(self, cls):
        model = cls(np.random.default_rng(7), base_channels=4).eval()
        frames, masks = self._inputs()
        batched = model.predict_batch(frames, masks)
        assert batched.shape == frames.shape
        for i in range(self.B):
            solo = model.predict(frames[i], masks[i])
            assert np.array_equal(batched[i], solo)

    def test_vit_dense_batch_matches_per_frame(self):
        model = tiny_vit()
        frames, masks = self._inputs()
        batched = model.predict_batch(frames, masks)
        for i in range(self.B):
            solo = model.predict(frames[i], masks[i])
            assert np.array_equal(batched[i], solo)

    @pytest.mark.parametrize("cls", [EdGazeNet, RITNet])
    def test_requires_eval_contract(self, cls):
        """Conv nets declare the eval-mode requirement the engine's
        segment stage keys its training-mode fallback on; the ViT's
        forward has no batch-coupled modules and opts out."""
        assert cls.predict_batch_requires_eval
        assert not ViTSegmenter.predict_batch_requires_eval


class TestMetrics:
    def test_perfect_prediction(self):
        seg = RNG.integers(0, 4, size=(16, 16))
        assert pixel_accuracy(seg, seg) == 1.0
        assert mean_iou(seg, seg) == pytest.approx(1.0)

    def test_confusion_matrix_totals(self):
        pred = RNG.integers(0, 4, size=(16, 16))
        target = RNG.integers(0, 4, size=(16, 16))
        cm = confusion_matrix(pred, target)
        assert cm.sum() == 256

    def test_per_class_iou_absent_class_is_nan(self):
        pred = np.zeros((8, 8), dtype=int)
        target = np.zeros((8, 8), dtype=int)
        iou = per_class_iou(pred, target)
        assert iou[0] == pytest.approx(1.0)
        assert np.isnan(iou[1:]).all()

    def test_known_iou(self):
        target = np.zeros((4, 4), dtype=int)
        target[:2] = 1
        pred = np.zeros((4, 4), dtype=int)
        pred[1:3] = 1
        iou = per_class_iou(pred, target)
        # Class 1: inter 4, union 12.
        assert iou[1] == pytest.approx(4 / 12)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pixel_accuracy(np.zeros((2, 2)), np.zeros((3, 3)))
