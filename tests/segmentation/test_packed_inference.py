"""Tests for dropped-token (packed) sparse inference."""

import numpy as np
import pytest

from repro.segmentation import ViTConfig, ViTSegmenter


@pytest.fixture(scope="module")
def vit():
    return ViTSegmenter(
        ViTConfig(height=32, width=32, patch=8, dim=24, heads=3,
                  depth=2, decoder_depth=1),
        np.random.default_rng(0),
    )


def roi_mask(shape=(32, 32), box=(8, 8, 24, 24), rate=0.3, seed=1):
    rng = np.random.default_rng(seed)
    mask = np.zeros(shape, dtype=bool)
    r0, c0, r1, c1 = box
    mask[r0:r1, c0:c1] = rng.random((r1 - r0, c1 - c0)) < rate
    return mask


class TestPackedInference:
    def test_valid_patches_match_masked_forward(self, vit):
        rng = np.random.default_rng(2)
        frame = rng.random((32, 32))
        mask = roi_mask()
        masked = vit.forward((frame * mask)[None], mask[None])[0]
        packed, valid = vit.forward_packed(frame * mask, mask)
        patch = vit.config.patch
        grid = 32 // patch
        for t in np.nonzero(valid)[0]:
            gr, gc = divmod(int(t), grid)
            np.testing.assert_allclose(
                masked[gr * patch : (gr + 1) * patch, gc * patch : (gc + 1) * patch],
                packed[gr * patch : (gr + 1) * patch, gc * patch : (gc + 1) * patch],
                atol=1e-9,
            )

    def test_invalid_patches_predict_background(self, vit):
        frame = np.zeros((32, 32))
        mask = roi_mask(box=(8, 8, 16, 16), rate=1.0)
        seg = vit.predict_packed(frame, mask)
        # Patches with no samples must decode to the background class.
        assert np.all(seg[24:, 24:] == 0)

    def test_empty_mask_is_all_background(self, vit):
        seg = vit.predict_packed(np.zeros((32, 32)), np.zeros((32, 32), dtype=bool))
        assert np.all(seg == 0)

    def test_predictions_agree_inside_roi(self, vit):
        rng = np.random.default_rng(3)
        frame = rng.random((32, 32))
        mask = roi_mask()
        full = vit.predict(frame * mask, mask)
        packed = vit.predict_packed(frame * mask, mask)
        # Identical argmax wherever tokens were valid.
        _, valid = vit.forward_packed(frame * mask, mask)
        patch = vit.config.patch
        grid = 32 // patch
        for t in np.nonzero(valid)[0]:
            gr, gc = divmod(int(t), grid)
            np.testing.assert_array_equal(
                full[gr * patch : (gr + 1) * patch, gc * patch : (gc + 1) * patch],
                packed[gr * patch : (gr + 1) * patch, gc * patch : (gc + 1) * patch],
            )

    def test_valid_count_matches_mask(self, vit):
        mask = roi_mask(box=(0, 0, 8, 8), rate=1.0)  # exactly one patch
        _, valid = vit.forward_packed(np.ones((32, 32)) * mask, mask)
        assert valid.sum() == 1
