"""Self-check: the repository's own tree passes its own linter.

This is the test-suite mirror of the CI gate — if a PR introduces a
naked RNG draw, a wall-clock read in a deterministic module, an
unpicklable shard job, an unordered float reduction, a mutation of a
transport-resolved array, or spec drift, this fails locally before CI
ever sees it.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def _report(relative: str):
    target = REPO_ROOT / relative
    if not target.exists():
        pytest.skip(f"{relative} not present")
    return run_lint([target])


def test_src_tree_is_clean():
    report = _report("src")
    assert report.exit_code == 0, "\n" + report.render_text()


def test_tests_tree_is_clean():
    report = _report("tests")
    assert report.exit_code == 0, "\n" + report.render_text()


def test_benchmarks_tree_is_clean():
    report = _report("benchmarks")
    assert report.exit_code == 0, "\n" + report.render_text()


def test_src_waivers_all_carry_reasons():
    # exit_code == 0 already implies no REP000 (reason-less waiver)
    # findings; assert it explicitly so the waiver policy is pinned.
    report = _report("src")
    assert not any(f.rule == "REP000" for f in report.findings)
    # And the tree genuinely exercises the waiver machinery: the timing
    # seams in the runner/benchmarks are waived, not rule-invisible.
    assert report.suppressed, "expected at least one reasoned waiver in src/"
