"""Fixture-driven rule tests: per rule, snippets that must fire and
sanctioned patterns that must pass.

Fixtures live as inline strings (never as real files under ``tests/``)
so the repository's own gating ``repro lint tests/`` run does not trip
over them.
"""

import textwrap

from repro.analysis.lint import lint_source


def findings_for(code: str, rule: str | None = None):
    found = lint_source(textwrap.dedent(code))
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


class TestREP101NakedRNG:
    def test_module_level_draw_fires(self):
        found = findings_for(
            """
            import numpy as np

            def jitter(x):
                return x + np.random.rand()
            """,
            "REP101",
        )
        assert len(found) == 1
        assert "numpy.random.rand" in found[0].message

    def test_global_seed_fires(self):
        assert findings_for(
            "import numpy as np\nnp.random.seed(0)\n", "REP101"
        )

    def test_stdlib_random_fires(self):
        found = findings_for(
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            "REP101",
        )
        assert len(found) == 1

    def test_stdlib_from_import_fires(self):
        assert findings_for(
            "from random import shuffle\nshuffle([1, 2])\n", "REP101"
        )

    def test_unkeyed_default_rng_fires(self):
        found = findings_for(
            "import numpy as np\nrng = np.random.default_rng()\n", "REP101"
        )
        assert len(found) == 1
        assert "un-keyed" in found[0].message

    def test_none_seed_fires(self):
        assert findings_for(
            "import numpy as np\nrng = np.random.default_rng(None)\n",
            "REP101",
        )

    def test_keyed_default_rng_passes(self):
        assert not findings_for(
            """
            import numpy as np

            SERVE_STREAM_TAG = 7

            def stream(seed, client_id):
                return np.random.default_rng([seed, SERVE_STREAM_TAG, client_id])
            """,
            "REP101",
        )

    def test_generator_method_calls_pass(self):
        # Draws *from a keyed stream object* are the sanctioned pattern.
        assert not findings_for(
            """
            import numpy as np

            def draw(rng: np.random.Generator):
                return rng.normal(size=3)
            """,
            "REP101",
        )

    def test_from_import_default_rng_keyed_passes(self):
        assert not findings_for(
            "from numpy.random import default_rng\nr = default_rng([0, 1])\n",
            "REP101",
        )


class TestREP102WallClock:
    def test_time_time_fires(self):
        found = findings_for(
            "import time\nstamp = time.time()\n", "REP102"
        )
        assert len(found) == 1

    def test_perf_counter_from_import_fires(self):
        assert findings_for(
            "from time import perf_counter\nt0 = perf_counter()\n", "REP102"
        )

    def test_datetime_now_fires(self):
        assert findings_for(
            "from datetime import datetime\nwhen = datetime.now()\n",
            "REP102",
        )

    def test_datetime_module_form_fires(self):
        assert findings_for(
            "import datetime\nwhen = datetime.datetime.utcnow()\n", "REP102"
        )

    def test_virtual_clock_passes(self):
        # The sanctioned pattern: all latencies in virtual ticks.
        assert not findings_for(
            """
            def latency_ticks(arrive_tick, done_tick):
                return done_tick - arrive_tick
            """,
            "REP102",
        )

    def test_waivered_measurement_seam_passes(self):
        code = (
            "import time\n"
            "t0 = time.perf_counter()  "
            "# repro: allow[REP102] timing harness\n"
        )
        assert not findings_for(code, "REP102")


class TestREP103ShardJobs:
    def test_lambda_to_submit_fires(self):
        found = findings_for(
            """
            def run(executor, xs):
                return [executor.submit(lambda x: x + 1, x) for x in xs]
            """,
            "REP103",
        )
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_nested_def_fires(self):
        found = findings_for(
            """
            def run(executor, xs):
                def job(x):
                    return x + 1
                return [executor.submit(job, x) for x in xs]
            """,
            "REP103",
        )
        assert len(found) == 1
        assert "job" in found[0].message

    def test_bound_method_fires(self):
        found = findings_for(
            """
            class Runner:
                def go(self, executor, shard):
                    return executor.submit(self.execute, shard)
            """,
            "REP103",
        )
        assert len(found) == 1
        assert "instance" in found[0].message

    def test_lambda_to_pool_map_fires(self):
        assert findings_for(
            """
            def run(pool, xs):
                return list(pool.map(lambda x: x * 2, xs))
            """,
            "REP103",
        )

    def test_module_level_job_passes(self):
        assert not findings_for(
            """
            def _execute_shard(shard):
                return shard

            def run(executor, shards):
                return [executor.submit(_execute_shard, s) for s in shards]
            """,
            "REP103",
        )

    def test_partial_of_module_level_passes(self):
        assert not findings_for(
            """
            import functools

            def _job(x, y):
                return x + y

            def run(executor):
                return executor.submit(functools.partial(_job, 1), 2)
            """,
            "REP103",
        )

    def test_partial_of_lambda_fires(self):
        assert findings_for(
            """
            import functools

            def run(executor):
                return executor.submit(functools.partial(lambda x: x, 1))
            """,
            "REP103",
        )

    def test_non_pool_map_ignored(self):
        # ``.map`` on something that is not an executor/pool is not a
        # dispatch seam.
        assert not findings_for(
            """
            def rename(frame):
                return frame.map(lambda v: v + 1)
            """,
            "REP103",
        )


class TestREP104UnorderedReductions:
    def test_sum_over_set_fires(self):
        assert findings_for(
            "def f(xs):\n    return sum(set(xs))\n", "REP104"
        )

    def test_sum_over_dict_values_fires(self):
        found = findings_for(
            "def f(d):\n    return sum(d.values())\n", "REP104"
        )
        assert len(found) == 1

    def test_sum_generator_over_items_fires(self):
        assert findings_for(
            "def f(d):\n    return sum(v for _, v in d.items())\n", "REP104"
        )

    def test_fsum_over_values_fires(self):
        assert findings_for(
            "import math\n\ndef f(d):\n    return math.fsum(d.values())\n",
            "REP104",
        )

    def test_sum_over_sorted_items_passes(self):
        assert not findings_for(
            "def f(d):\n    return sum(v for _, v in sorted(d.items()))\n",
            "REP104",
        )

    def test_sum_over_list_passes(self):
        assert not findings_for(
            "def f(xs):\n    return sum(x * 2 for x in xs)\n", "REP104"
        )

    def test_unsorted_glob_fires(self):
        found = findings_for(
            "import glob\n\ndef f():\n    return glob.glob('*.npz')\n",
            "REP104",
        )
        assert len(found) == 1
        assert "filesystem order" in found[0].message

    def test_sorted_glob_passes(self):
        assert not findings_for(
            "import glob\n\ndef f():\n    return sorted(glob.glob('*.npz'))\n",
            "REP104",
        )

    def test_sorted_path_glob_passes(self):
        assert not findings_for(
            """
            def f(root):
                return sorted(root.glob("*.npz"))
            """,
            "REP104",
        )

    def test_accumulation_loop_over_items_fires(self):
        assert findings_for(
            """
            def merge(totals, shard):
                for name, t in shard.items():
                    totals[name] += t
            """,
            "REP104",
        )

    def test_accumulation_loop_over_sorted_items_passes(self):
        assert not findings_for(
            """
            def merge(totals, shard):
                for name, t in sorted(shard.items()):
                    totals[name] += t
            """,
            "REP104",
        )

    def test_non_accumulating_dict_loop_passes(self):
        assert not findings_for(
            """
            def render(d):
                rows = []
                for name, value in d.items():
                    rows.append((name, value))
                return rows
            """,
            "REP104",
        )


class TestREP105SharedMutation:
    def test_item_assignment_fires(self):
        found = findings_for(
            """
            from repro.engine.transport import resolve_payload

            def job(handle):
                frames = resolve_payload(handle)
                frames[0] = 0.0
                return frames
            """,
            "REP105",
        )
        assert len(found) == 1

    def test_augmented_assignment_fires(self):
        assert findings_for(
            """
            from repro.engine.transport import resolve_payload

            def job(handle):
                acc = resolve_payload(handle)
                acc += 1.0
                return acc
            """,
            "REP105",
        )

    def test_alias_subscript_fires(self):
        # Taint flows through plain aliasing: a view of a resolved
        # payload is still the shared read-only buffer.
        assert findings_for(
            """
            from repro.engine.transport import resolve_payload

            def job(handle):
                payload = resolve_payload(handle)
                frames = payload["frames"]
                frames[3] = 1.0
            """,
            "REP105",
        )

    def test_out_kwarg_fires(self):
        assert findings_for(
            """
            import numpy as np
            from repro.engine.transport import resolve_payload

            def job(handle, other):
                arr = resolve_payload(handle)
                np.add(arr, other, out=arr)
            """,
            "REP105",
        )

    def test_worker_cached_mutating_method_fires(self):
        assert findings_for(
            """
            from repro.engine.transport import worker_cached

            def job(key, factory):
                dataset = worker_cached(key, factory)
                dataset.append("poisoned")
            """,
            "REP105",
        )

    def test_copy_then_write_passes(self):
        assert not findings_for(
            """
            from repro.engine.transport import resolve_payload

            def job(handle):
                frames = resolve_payload(handle).copy()
                frames[0] = 0.0
                return frames
            """,
            "REP105",
        )

    def test_copy_of_alias_passes(self):
        assert not findings_for(
            """
            from repro.engine.transport import resolve_payload

            def job(handle):
                payload = resolve_payload(handle)
                frames = payload["frames"].copy()
                frames[3] = 1.0
            """,
            "REP105",
        )

    def test_read_only_use_passes(self):
        assert not findings_for(
            """
            from repro.engine.transport import resolve_payload

            def job(handle):
                runner, shard = resolve_payload(handle)
                return runner, [s for s in shard]
            """,
            "REP105",
        )

    def test_unrelated_mutation_passes(self):
        assert not findings_for(
            """
            def job(xs):
                out = [0.0] * len(xs)
                out[0] = 1.0
                return out
            """,
            "REP105",
        )


SPEC_FIXTURE = """
_SECTIONS = {{
    "dataset": DatasetSection,
}}


class NoiseSection:
    bit_depth: int | None = None


class DatasetSection:
    preset: str = "ci"
    fps: float = 120.0
    seed: int = 0
    batched: bool = False
    noise: NoiseSection = None


class ExperimentSpec:
    workload: str = "evaluate"
    dataset: DatasetSection = None
    {extra_field}

    def validate(self):
        d = self.dataset
        if d.preset not in ("ci", "paper"):
            raise ValueError("dataset.preset")
        {validation}
        return self
"""


def spec_findings(extra_field="", validation="pass"):
    return findings_for(
        SPEC_FIXTURE.format(extra_field=extra_field, validation=validation),
        "REP106",
    )


class TestREP106SpecDrift:
    def test_unvalidated_fields_fire(self):
        found = spec_findings()
        messages = [f.message for f in found]
        # fps and seed are never touched by validate(); preset is.
        assert any("dataset.fps" in m for m in messages)
        assert any("dataset.seed" in m for m in messages)
        assert not any("dataset.preset" in m for m in messages)

    def test_bool_fields_exempt(self):
        assert not any(
            "batched" in f.message for f in spec_findings()
        )

    def test_nested_section_recurses(self):
        assert any(
            "dataset.noise.bit_depth" in f.message for f in spec_findings()
        )

    def test_dotted_string_coverage_passes(self):
        found = spec_findings(
            validation=(
                'self._require("dataset.fps", d.fps > 0)\n'
                '        self._require("dataset.seed", d.seed >= 0)\n'
                '        self._require("dataset.noise.bit_depth", True)'
            )
        )
        assert not found

    def test_attribute_read_coverage_passes(self):
        found = spec_findings(
            validation=(
                "assert d.fps > 0\n"
                "        assert d.seed >= 0\n"
                "        assert d.noise.bit_depth is None"
            )
        )
        assert not found

    def test_section_missing_from_sections_map_fires(self):
        found = spec_findings(extra_field="sensor: NoiseSection = None")
        assert any(
            "_SECTIONS" in f.message and "'sensor'" in f.message
            for f in found
        )

    def test_module_without_spec_ignored(self):
        assert not findings_for(
            "class Foo:\n    x: int = 1\n", "REP106"
        )


class TestREP107StoreKeys:
    def test_repr_in_store_put_fires(self):
        found = findings_for(
            """
            def save(store, pipeline, value):
                store.put(("pipeline", repr(pipeline)), value)
            """,
            "REP107",
        )
        assert len(found) == 1
        assert "repr()" in found[0].message

    def test_id_in_store_get_fires(self):
        found = findings_for(
            """
            def load(store, pipeline):
                return store.get(("pipeline", id(pipeline)))
            """,
            "REP107",
        )
        assert len(found) == 1
        assert "id()" in found[0].message

    def test_hash_in_store_contains_fires(self):
        assert findings_for(
            """
            def probe(store, obj):
                return store.contains(("x", hash(obj)))
            """,
            "REP107",
        )

    def test_str_of_object_in_key_fires(self):
        found = findings_for(
            """
            def save(artifact_store, dataset, value):
                artifact_store.put(("dataset", str(dataset)), value)
            """,
            "REP107",
        )
        assert len(found) == 1
        assert "str(<object>)" in found[0].message

    def test_fstring_repr_conversion_fires(self):
        found = findings_for(
            """
            def save(store, obj, value):
                store.put(("x", f"{obj!r}"), value)
            """,
            "REP107",
        )
        assert len(found) == 1
        assert "!r" in found[0].message

    def test_store_digest_function_seam_fires(self):
        from textwrap import dedent

        found = findings_for(
            dedent(
                """
                from repro.store import store_digest

                def key_of(obj):
                    return store_digest(("x", repr(obj)))
                """
            ),
            "REP107",
        )
        assert len(found) == 1

    def test_keyword_key_argument_fires(self):
        assert findings_for(
            """
            def save(store, obj, value):
                store.put(key=("x", id(obj)), value=value)
            """,
            "REP107",
        )

    def test_hash_derived_key_passes(self):
        assert not findings_for(
            """
            def save(store, spec, value):
                key = ("pipeline", spec.section_hash("dataset"), 16.0)
                store.put(key, value)
            """,
            "REP107",
        )

    def test_registry_names_and_scalars_pass(self):
        assert not findings_for(
            """
            def save(store, spec, name, value):
                store.put(
                    ("strategy_training", spec.spec_hash(), name, 4), value
                )
            """,
            "REP107",
        )

    def test_str_of_literal_passes(self):
        # str() of a constant is just a cast, not an identity leak.
        assert not findings_for(
            """
            def save(store, value):
                store.put(("x", str(16)), value)
            """,
            "REP107",
        )

    def test_repr_outside_key_seam_ignored(self):
        assert not findings_for(
            """
            def describe(obj):
                return repr(obj)
            """,
            "REP107",
        )

    def test_non_store_receiver_ignored(self):
        assert not findings_for(
            """
            def note(cache, obj):
                cache.put(("x", repr(obj)), 1)
            """,
            "REP107",
        )


class TestREP108ObsPlane:
    def _lint_as(self, code: str, filename: str):
        return [
            f
            for f in lint_source(textwrap.dedent(code), filename=filename)
            if f.rule == "REP108"
        ]

    def test_wall_read_in_obs_module_fires(self):
        found = self._lint_as(
            """
            import time

            def sample():
                return time.perf_counter()
            """,
            "src/repro/obs/tracer.py",
        )
        assert len(found) == 1
        assert "wall.py" in found[0].message

    def test_wall_read_in_wall_seam_passes(self):
        assert not self._lint_as(
            """
            import time

            def wall_now():
                return time.perf_counter()
            """,
            "src/repro/obs/wall.py",
        )

    def test_wall_read_outside_obs_ignored(self):
        # REP102's jurisdiction, not REP108's.
        assert not self._lint_as(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            "src/repro/engine/timing.py",
        )

    def test_rep102_waiver_does_not_waive_rep108(self):
        found = self._lint_as(
            """
            import time

            def sample():
                return time.perf_counter()  # repro: allow[REP102] seam
            """,
            "src/repro/obs/export.py",
        )
        assert len(found) == 1

    def test_ambient_tracer_in_worker_entry_fires(self):
        found = self._lint_as(
            """
            from repro.obs.tracer import current_tracer

            def _file_queue_worker(job):
                tracer = current_tracer()
                return job, tracer
            """,
            "src/repro/engine/executors.py",
        )
        assert len(found) == 1
        assert "capture_job" in found[0].message

    def test_install_tracer_via_reexport_in_shard_job_fires(self):
        assert self._lint_as(
            """
            from repro.obs import install_tracer

            def _epoch_shard_job(models, shard, epoch):
                with install_tracer(None):
                    return shard
            """,
            "src/repro/training/runtime.py",
        )

    def test_capture_job_in_worker_passes(self):
        assert not self._lint_as(
            """
            def _file_queue_worker(spans_path, fn, args, kwargs):
                from repro.obs.spool import capture_job

                return capture_job(spans_path, fn, args, kwargs)
            """,
            "src/repro/engine/executors.py",
        )

    def test_ambient_tracer_outside_worker_passes(self):
        assert not self._lint_as(
            """
            from repro.obs.tracer import current_tracer

            def run(self):
                return current_tracer()
            """,
            "src/repro/serve/scheduler.py",
        )
