"""Framework behaviour: suppressions, baselines, JSON record, exit codes.

Rule *semantics* live in ``test_lint_rules.py``; this module pins the
machinery every rule rides on — waiver placement and the mandatory
reason, baseline round-trips, the versioned ``--json`` shape, and the
CLI's documented 0/1/2 exit-code convention.
"""

import json

import pytest

from repro.analysis.lint import (
    Finding,
    LintUsageError,
    apply_baseline,
    collect_files,
    collect_suppressions,
    lint_source,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.lint import main as lint_main
from repro.analysis.lint.findings import JSON_VERSION
from repro.cli import main as cli_main

NAKED = "import numpy as np\nx = np.random.rand()\n"
CLEAN = "def f(x):\n    return x + 1\n"


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestSuppressions:
    def test_trailing_comment_waives_own_line(self):
        code = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro: allow[REP101] fixture noise\n"
        )
        assert lint_source(code) == []

    def test_standalone_comment_waives_next_line(self):
        code = (
            "import numpy as np\n"
            "# repro: allow[REP101] fixture noise\n"
            "x = np.random.rand()\n"
        )
        assert lint_source(code) == []

    def test_waiver_does_not_leak_to_other_lines(self):
        code = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro: allow[REP101] here only\n"
            "y = np.random.rand()\n"
        )
        found = lint_source(code)
        assert [f.rule for f in found] == ["REP101"]
        assert found[0].line == 3

    def test_waiver_is_rule_specific(self):
        # An allow[REP102] does not silence a REP101 on the same line.
        code = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro: allow[REP102] wrong rule\n"
        )
        assert [f.rule for f in lint_source(code)] == ["REP101"]

    def test_multi_rule_waiver(self):
        code = (
            "import time\n"
            "import numpy as np\n"
            "x = np.random.rand() * time.time()  "
            "# repro: allow[REP101,REP102] fixture exercises both\n"
        )
        assert lint_source(code) == []

    def test_missing_reason_reports_rep000_and_suppresses_nothing(self):
        code = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro: allow[REP101]\n"
        )
        rules = sorted(f.rule for f in lint_source(code))
        assert rules == ["REP000", "REP101"]

    def test_reason_after_dash_is_accepted(self):
        code = (
            "import numpy as np\n"
            "x = np.random.rand()  # repro: allow[REP101] - legacy seam\n"
        )
        assert lint_source(code) == []

    def test_collect_tracks_usage(self):
        sup = collect_suppressions(
            "f.py", "x = 1  # repro: allow[REP101] reason\n"
        )
        assert sup.waives(1, "REP101")
        assert not sup.waives(1, "REP104")
        assert sup.used == {(1, "REP101")}


class TestBaseline:
    def test_round_trip_absorbs_recorded_findings(self, tmp_path):
        target = write_module(tmp_path, "legacy.py", NAKED)
        baseline = tmp_path / "lint-baseline.json"
        first = run_lint([target])
        assert first.exit_code == 1
        write_baseline(baseline, first.findings)

        second = run_lint([target], baseline=baseline)
        assert second.exit_code == 0
        assert len(second.baselined) == len(first.findings)
        assert second.findings == []

    def test_baseline_survives_line_shifts(self, tmp_path):
        target = write_module(tmp_path, "legacy.py", NAKED)
        baseline = tmp_path / "b.json"
        write_baseline(baseline, run_lint([target]).findings)
        # Unrelated edit above the finding moves its line number.
        target.write_text("import os\n\n" + NAKED)
        assert run_lint([target], baseline=baseline).exit_code == 0

    def test_new_findings_stay_live_past_baseline(self, tmp_path):
        target = write_module(tmp_path, "legacy.py", NAKED)
        baseline = tmp_path / "b.json"
        write_baseline(baseline, run_lint([target]).findings)
        target.write_text(NAKED + "import time\nt = time.time()\n")
        report = run_lint([target], baseline=baseline)
        assert report.exit_code == 1
        assert [f.rule for f in report.findings] == ["REP102"]

    def test_counts_are_a_multiset(self):
        f = Finding("REP101", "f.py", 1, 1, "same message")
        g = Finding("REP101", "f.py", 9, 1, "same message")
        fresh, absorbed = apply_baseline([f, g], load_counter([f]))
        assert absorbed == [f]
        assert fresh == [g]

    def test_load_rejects_bad_shapes(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text(json.dumps([1, 2]))
        with pytest.raises(ValueError):
            load_baseline(bad)


def load_counter(findings):
    from collections import Counter

    return Counter(f.fingerprint for f in findings)


class TestRunner:
    def test_collect_files_sorted_and_deduped(self, tmp_path):
        b = write_module(tmp_path, "b.py", CLEAN)
        a = write_module(tmp_path, "a.py", CLEAN)
        files = collect_files([tmp_path, a, b])
        assert files == [a, b]

    def test_collect_files_missing_path_raises(self, tmp_path):
        with pytest.raises(LintUsageError):
            collect_files([tmp_path / "nope"])

    def test_unparseable_file_reports_rep000(self, tmp_path):
        target = write_module(tmp_path, "broken.py", "def f(:\n")
        report = run_lint([target])
        assert report.exit_code == 1
        assert [f.rule for f in report.findings] == ["REP000"]
        assert "cannot lint" in report.findings[0].message

    def test_clean_tree_report(self, tmp_path):
        write_module(tmp_path, "ok.py", CLEAN)
        report = run_lint([tmp_path])
        assert report.exit_code == 0
        assert report.files_scanned == 1
        assert report.render_text().startswith("clean: 0 findings")


class TestJSONRecord:
    def test_record_shape(self, tmp_path):
        write_module(tmp_path, "dirty.py", NAKED)
        record = run_lint([tmp_path]).to_dict()
        assert record["version"] == JSON_VERSION
        assert record["exit_code"] == 1
        assert record["files_scanned"] == 1
        assert record["counts"] == {"REP101": 1}
        (finding,) = record["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "REP101"

    def test_json_round_trips(self, tmp_path):
        write_module(tmp_path, "dirty.py", NAKED)
        report = run_lint([tmp_path])
        assert json.loads(report.to_json()) == report.to_dict()

    def test_json_flag_writes_file(self, tmp_path, capsys):
        write_module(tmp_path, "dirty.py", NAKED)
        out = tmp_path / "lint.json"
        code = lint_main([str(tmp_path), "--json", str(out)])
        assert code == 1
        record = json.loads(out.read_text())
        assert record["version"] == JSON_VERSION
        # Human-readable report still goes to stdout.
        assert "REP101" in capsys.readouterr().out

    def test_json_dash_streams_to_stdout(self, tmp_path, capsys):
        write_module(tmp_path, "ok.py", CLEAN)
        assert lint_main([str(tmp_path), "--json", "-"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["exit_code"] == 0


class TestExitCodes:
    """The documented convention: 0 clean, 1 findings, 2 usage error."""

    def test_clean_exits_zero(self, tmp_path):
        write_module(tmp_path, "ok.py", CLEAN)
        assert lint_main([str(tmp_path)]) == 0

    def test_findings_exit_one(self, tmp_path):
        write_module(tmp_path, "dirty.py", NAKED)
        assert lint_main([str(tmp_path)]) == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_bad_flag_exits_two(self, tmp_path, capsys):
        assert lint_main(["--no-such-flag"]) == 2
        capsys.readouterr()

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        write_module(tmp_path, "ok.py", CLEAN)
        bad = tmp_path / "b.json"
        bad.write_text("not json")
        assert lint_main([str(tmp_path), "--baseline", str(bad)]) == 2
        capsys.readouterr()

    def test_write_baseline_exits_zero_despite_findings(self, tmp_path, capsys):
        write_module(tmp_path, "dirty.py", NAKED)
        out = tmp_path / "b.json"
        assert lint_main([str(tmp_path), "--write-baseline", str(out)]) == 0
        assert load_baseline(out)
        capsys.readouterr()

    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP102", "REP103", "REP104", "REP105",
                       "REP106"):
            assert rule_id in out


class TestCLIIntegration:
    def test_repro_cli_dispatches_lint(self, tmp_path, capsys):
        write_module(tmp_path, "dirty.py", NAKED)
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "REP101" in capsys.readouterr().out

    def test_repro_cli_lint_clean(self, tmp_path, capsys):
        write_module(tmp_path, "ok.py", CLEAN)
        assert cli_main(["lint", str(tmp_path)]) == 0
        capsys.readouterr()
