"""Tests for hardware component models: scaling, MIPI, NPU, DRAM, area."""

import numpy as np
import pytest

from repro.hardware import (
    AreaModel,
    LPDDR3Model,
    MipiLink,
    STANDARD_RESOLUTIONS,
    LATENCY_REQUIREMENT_S,
    host_npu,
    in_sensor_npu,
    scaling,
)
from repro.hardware.npu import SystolicNPU


class TestScaling:
    def test_reference_node_is_unity(self):
        assert scaling.energy_factor(16) == pytest.approx(1.0)
        assert scaling.delay_factor(16) == pytest.approx(1.0)
        assert scaling.leakage_factor(16) == pytest.approx(1.0)

    def test_energy_monotone_in_node(self):
        nodes = [7, 16, 22, 28, 40, 65, 90, 130]
        factors = [scaling.energy_factor(n) for n in nodes]
        assert all(a < b for a, b in zip(factors, factors[1:]))

    def test_interpolated_node_between_neighbors(self):
        mid = scaling.energy_factor(50)
        assert scaling.energy_factor(40) < mid < scaling.energy_factor(65)

    def test_scale_energy_roundtrip(self):
        assert scaling.scale_energy(2.0, 16) == pytest.approx(2.0)
        assert scaling.scale_energy(1.0, 65) > 5.0

    def test_rejects_nonpositive_node(self):
        with pytest.raises(ValueError):
            scaling.energy_factor(0)

    def test_7nm_cheaper_than_22nm(self):
        """The Fig. 13 argument: host at 7 nm beats in-sensor 22 nm per op."""
        assert scaling.energy_factor(7) < scaling.energy_factor(22) / 2


class TestMipi:
    def test_energy_per_byte_is_paper_value(self):
        link = MipiLink()
        assert link.transfer_energy(1) == pytest.approx(100e-12)

    def test_4k_latency_matches_fig3(self):
        """Fig. 3 anchor: 4K transfer (~22 ms) exceeds the 15 ms budget."""
        link = MipiLink()
        latency = link.frame_latency(*STANDARD_RESOLUTIONS["4K"])
        assert 18e-3 < latency < 26e-3
        assert latency > LATENCY_REQUIREMENT_S

    def test_720p_within_budget(self):
        link = MipiLink()
        assert link.frame_latency(*STANDARD_RESOLUTIONS["720P"]) < (
            LATENCY_REQUIREMENT_S
        )

    def test_latency_monotone_in_resolution(self):
        link = MipiLink()
        latencies = [
            link.frame_latency(*STANDARD_RESOLUTIONS[k])
            for k in ("720P", "1080P", "2K", "4K", "8K")
        ]
        assert all(a < b for a, b in zip(latencies, latencies[1:]))

    def test_frame_bytes_ten_bit_packing(self):
        link = MipiLink()
        assert link.frame_bytes(4) == 5  # 40 bits -> 5 bytes

    def test_negative_counts_raise(self):
        link = MipiLink()
        with pytest.raises(ValueError):
            link.frame_bytes(-1)
        with pytest.raises(ValueError):
            link.transfer_energy(-1)


class TestNPU:
    def test_paper_configurations(self):
        host = host_npu()
        sensor = in_sensor_npu()
        assert host.peak_macs_per_s == 32 * 32 * 1e9
        assert sensor.peak_macs_per_s == 8 * 8 * 0.5e9
        assert host.buffer_kb == 2048 and sensor.buffer_kb == 512

    def test_latency_scales_with_macs(self):
        npu = host_npu()
        assert npu.compute_latency(2_000_000) == pytest.approx(
            2 * npu.compute_latency(1_000_000)
        )

    def test_energy_cheaper_at_7nm_than_22nm(self):
        macs = 10_000_000
        assert host_npu(7).mac_energy(macs) < host_npu(22).mac_energy(macs)

    def test_leakage_positive(self):
        assert host_npu().leakage_power() > 0

    def test_workload_energy_components(self):
        npu = in_sensor_npu()
        total = npu.workload_energy(1_000_000, 10_000, active_time_s=1e-3)
        assert total > npu.mac_energy(1_000_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicNPU(0, 8, 1e9, 64, 16)
        with pytest.raises(ValueError):
            SystolicNPU(8, 8, 1e9, 64, 16, utilization=0.0)
        with pytest.raises(ValueError):
            host_npu().compute_latency(-1)


class TestDram:
    def test_traffic_energy_linear(self):
        dram = LPDDR3Model()
        assert dram.traffic_energy(2000) == pytest.approx(
            2 * dram.traffic_energy(1000)
        )

    def test_frame_energy_includes_background(self):
        dram = LPDDR3Model()
        assert dram.frame_energy(0, 1e-3) == pytest.approx(
            dram.background_energy(1e-3)
        )

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            LPDDR3Model().traffic_energy(-1)


class TestArea:
    def test_paper_numbers(self):
        """Sec. VI-D: 6.4 / 0.4 / 0.1 mm^2 at 640x400, 5 um pitch."""
        report = AreaModel().estimate(400, 640)
        assert report.pixel_array_mm2 == pytest.approx(6.4, rel=0.01)
        assert report.in_sensor_npu_mm2 == 0.4
        assert report.output_buffer_mm2 == 0.1

    def test_npu_overhead_near_paper(self):
        report = AreaModel().estimate(400, 640)
        assert report.npu_overhead_fraction == pytest.approx(0.058, abs=0.01)

    def test_augmentation_is_small(self):
        """The per-pixel augmentation (~12 SRAM cells) is tiny vs the pixel."""
        report = AreaModel().estimate(400, 640)
        pixel_um2 = 5.0 * 5.0
        assert report.augmentation_per_pixel_um2 < 0.1 * pixel_um2

    def test_host_decoder_negligible(self):
        assert AreaModel().host_rle_decoder_fraction() < 0.001

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            AreaModel().estimate(0, 640)
