"""Cross-model consistency: the independent hardware models must agree.

The energy/latency models use summary parameters (RLE overhead, frame
bytes, stage times); the functional datapath (RLE codec, packetizer,
phase controller) computes the same quantities bottom-up.  These tests
pin the two views together so a change to one cannot silently diverge
from the other.
"""

import numpy as np
import pytest

from repro.hardware import MipiLink, TimingModel, WorkloadProfile
from repro.hardware.mipi_packet import CsiPacketizer
from repro.hardware.sensor import RunLengthCodec
from repro.hardware.sensor.phase_controller import PhaseController
from repro.hardware.timing import (
    ANALOG_EVENTIFICATION_S,
    SAMPLING_DECISION_S,
)


class TestRleOverheadParameter:
    def test_profile_overhead_matches_codec_on_realistic_stream(self):
        """WorkloadProfile.rle_overhead (~1.12) must match what the codec
        actually produces on a paper-sized in-ROI stream (~20 % density)."""
        profile = WorkloadProfile()
        rng = np.random.default_rng(0)
        roi_pixels = int(profile.num_pixels * profile.roi_fraction)
        in_roi_rate = profile.sampled_fraction / profile.roi_fraction
        stream = np.where(
            rng.random(roi_pixels) < in_roi_rate,
            rng.integers(1, 1024, roi_pixels),
            0,
        )
        _, stats = RunLengthCodec().encode(stream)
        sampled = int(np.count_nonzero(stream))
        raw_sampled_bytes = (sampled * 10 + 7) // 8
        measured_overhead = stats.encoded_bytes / raw_sampled_bytes
        assert measured_overhead == pytest.approx(
            profile.rle_overhead, rel=0.15
        )
        # And the encoded ROI stream stays far below the raw ROI size.
        raw_roi_bytes = (roi_pixels * 10 + 7) // 8
        assert stats.encoded_bytes < 0.7 * raw_roi_bytes


class TestPacketizerVsLinkModel:
    def test_wire_bytes_close_to_frame_bytes(self):
        """CSI framing adds <1.5 % to the 10-bit payload the link model
        counts, so the energy model's byte counts are sound."""
        link = MipiLink()
        packetizer = CsiPacketizer()
        num_pixels = 12_000
        codes = np.random.default_rng(1).integers(0, 1024, num_pixels)
        packets = packetizer.pack_codes(codes)
        wire = packetizer.wire_bytes(packets)
        modelled = link.frame_bytes(num_pixels)
        assert wire == pytest.approx(modelled, rel=0.015)


class TestPhaseControllerVsTimingModel:
    def test_frame_schedule_fits_timing_model_budget(self):
        """A controller that budgets exposure as the frame period minus
        the serialized in-sensor stages sustains 120 FPS with a small
        (<5 %) exposure loss — the paper's Fig. 8 property."""
        timing = TimingModel()
        profile = WorkloadProfile()
        lat = timing.tracking_latency("BlissCam", profile, 120)
        period = 1 / 120
        serialized = (
            ANALOG_EVENTIFICATION_S
            + lat.stages["roi_prediction"] * 0.2  # non-overlapped part
            + SAMPLING_DECISION_S
            + timing.adc.conversion_time_s
            + lat.stages["readout"]
        )
        exposure = period - serialized
        assert serialized < 0.05 * period  # small exposure loss
        controller = PhaseController()
        for _ in range(4):
            controller.run_frame(
                exposure_s=exposure,
                eventify_s=ANALOG_EVENTIFICATION_S,
                roi_s=lat.stages["roi_prediction"] * 0.2 + SAMPLING_DECISION_S,
                adc_s=timing.adc.conversion_time_s,
                readout_s=lat.stages["readout"],
            )
        assert controller.validate_against_period(period)

    def test_exposure_dominates_the_analog_schedule(self):
        timing = TimingModel()
        profile = WorkloadProfile()
        lat = timing.tracking_latency("BlissCam", profile, 120)
        non_exposure = (
            ANALOG_EVENTIFICATION_S
            + SAMPLING_DECISION_S
            + timing.adc.conversion_time_s
            + lat.stages["readout"]
        )
        assert non_exposure < 0.05 * lat.stages["exposure"]


class TestSensorOutputVsLinkModel:
    def test_functional_sensor_bytes_below_model_full_frame(self):
        """The functional sensor's RLE-compressed output is far below the
        full-frame bytes the NPU-Full variant's model charges."""
        from repro.hardware.sensor import BlissCamSensor

        rng = np.random.default_rng(2)
        link = MipiLink()
        sensor = BlissCamSensor(
            64, 64,
            roi_predictor=lambda e, s: np.array([0.3, 0.3, 0.7, 0.7]),
            sampling_rate=0.2,
            seed=0,
        )
        sensor.capture(rng.random((64, 64)), None)
        out = sensor.capture(rng.random((64, 64)), None)
        full_frame = link.frame_bytes(64 * 64)
        assert out.transmitted_bytes < 0.2 * full_frame
