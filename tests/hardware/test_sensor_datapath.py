"""Tests for the sensor datapath: SRAM RNG, RLE, ADC, readout, composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.sensor import (
    BLISSCAM_DPS,
    BlissCamSensor,
    RunLengthCodec,
    SingleSlopeADC,
    SparseReadout,
    SramPowerUpRNG,
)


class TestSramRNG:
    def test_popcount_range(self):
        rng = SramPowerUpRNG(256, seed=0)
        pop = rng.power_up_popcounts()
        assert pop.shape == (256,)
        assert pop.min() >= 0 and pop.max() <= 10

    def test_calibration_lut_monotone(self):
        rng = SramPowerUpRNG(1024, seed=1)
        lut = rng.calibrate(cycles=32)
        rates = lut.rate_for_theta
        assert rates[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[11] == 0.0  # popcount cannot reach 11

    def test_threshold_achieves_requested_rate(self):
        """The calibration -> LUT -> theta loop controls the sample rate."""
        rng = SramPowerUpRNG(4096, seed=2)
        lut = rng.calibrate(cycles=64)
        theta = lut.theta_for_rate(0.2)
        achieved = np.mean(
            [rng.sample_mask((64, 64), theta).mean() for _ in range(16)]
        )
        assert achieved <= 0.25  # never exceeds target band
        assert achieved > 0.02  # and is not degenerate

    def test_spatial_decorrelation(self):
        """Neighbouring pixels' decisions are uncorrelated (differential
        signaling of the cross-coupled pair, Sec. IV-C)."""
        rng = SramPowerUpRNG(4096, variation=0.1, seed=3)
        lut = rng.calibrate(cycles=32)
        theta = lut.theta_for_rate(0.5)
        mask = rng.sample_mask((64, 64), theta).astype(float)
        a = mask[:, :-1].ravel() - mask[:, :-1].mean()
        b = mask[:, 1:].ravel() - mask[:, 1:].mean()
        corr = float(np.sum(a * b) / np.sqrt(np.sum(a * a) * np.sum(b * b)))
        assert abs(corr) < 0.1

    def test_masks_differ_across_frames(self):
        rng = SramPowerUpRNG(1024, seed=4)
        lut = rng.calibrate()
        theta = lut.theta_for_rate(0.3)
        m1 = rng.sample_mask((32, 32), theta)
        m2 = rng.sample_mask((32, 32), theta)
        assert (m1 != m2).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            SramPowerUpRNG(0)
        with pytest.raises(ValueError):
            SramPowerUpRNG(16, variation=0.6)
        rng = SramPowerUpRNG(16, seed=0)
        with pytest.raises(ValueError):
            rng.sample_mask((5, 5), 3)
        with pytest.raises(ValueError):
            rng.sample_mask((4, 4), 99)
        lut = rng.calibrate(cycles=4)
        with pytest.raises(ValueError):
            lut.theta_for_rate(1.5)


class TestRLE:
    def test_paper_example(self):
        """Fig. 11: 1110000000 -> three ones then seven zeros."""
        codec = RunLengthCodec()
        stream = np.array([1, 1, 1, 0, 0, 0, 0, 0, 0, 0])
        tokens, stats = codec.encode(stream)
        assert tokens == [("lit", 1), ("lit", 1), ("lit", 1), ("run", 7)]
        assert stats.literal_tokens == 3 and stats.run_tokens == 1

    @given(
        data=st.lists(st.integers(0, 1023), min_size=0, max_size=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_exact(self, data):
        codec = RunLengthCodec()
        stream = np.array(data, dtype=np.int64)
        tokens, _ = codec.encode(stream)
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_long_run_splits(self):
        codec = RunLengthCodec()
        stream = np.zeros(10000, dtype=np.int64)
        tokens, stats = codec.encode(stream)
        assert stats.run_tokens == 3  # 4095 + 4095 + 1810
        np.testing.assert_array_equal(codec.decode(tokens), stream)

    def test_sparse_stream_compresses(self):
        """~20 % density (the paper's in-ROI rate) compresses well."""
        rng = np.random.default_rng(5)
        stream = np.where(rng.random(10000) < 0.2, rng.integers(1, 1024, 10000), 0)
        _, stats = RunLengthCodec().encode(stream)
        assert stats.compression_ratio > 1.5

    def test_dense_stream_no_blowup(self):
        rng = np.random.default_rng(6)
        stream = rng.integers(1, 1024, size=1000)
        _, stats = RunLengthCodec().encode(stream)
        # Literals cost 11 bits vs 10 raw: at most 10 % expansion.
        assert stats.encoded_bytes <= stats.raw_bytes * 1.11 + 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RunLengthCodec().encode(np.array([2000]))
        with pytest.raises(ValueError):
            RunLengthCodec().encode(np.zeros((2, 2)))


class TestADCAndReadout:
    def test_quantize_range(self):
        adc = SingleSlopeADC()
        codes = adc.quantize(np.array([0.0, 0.5, 1.0]))
        assert list(codes) == [0, 512, 1023]

    def test_clamp_min_lsb(self):
        adc = SingleSlopeADC()
        codes = adc.quantize(np.array([0.0]), clamp_min_lsb=1)
        assert codes[0] == 1

    def test_skip_saves_energy(self):
        adc = SingleSlopeADC()
        full = adc.readout_energy(1000, 0)
        sparse = adc.readout_energy(50, 950)
        assert sparse < 0.1 * full

    def test_readout_column_major_order(self):
        codes = np.arange(16).reshape(4, 4)
        mask = np.ones((4, 4), dtype=bool)
        result = SparseReadout().read(codes, mask, (0, 0, 4, 4))
        np.testing.assert_array_equal(result.stream[:4], codes[:, 0])

    def test_readout_reconstruct_roundtrip(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(1, 1024, size=(16, 16))
        mask = rng.random((16, 16)) < 0.3
        box = (2, 3, 12, 14)
        result = SparseReadout().read(codes, mask, box)
        rec_codes, rec_mask = SparseReadout.reconstruct(result.stream, box, (16, 16))
        inside = np.zeros((16, 16), dtype=bool)
        inside[2:12, 3:14] = True
        np.testing.assert_array_equal(rec_mask, mask & inside)
        np.testing.assert_array_equal(rec_codes[rec_mask], codes[mask & inside])

    def test_readout_counts(self):
        codes = np.ones((8, 8), dtype=np.int64)
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        result = SparseReadout().read(codes, mask, (0, 0, 8, 8))
        assert result.converted_pixels == 1
        assert result.skipped_pixels == 63

    def test_readout_validates_roi(self):
        with pytest.raises(ValueError):
            SparseReadout().read(
                np.zeros((4, 4)), np.zeros((4, 4), dtype=bool), (0, 0, 9, 9)
            )


class TestBlissCamSensor:
    @staticmethod
    def _center_predictor(event_map, prev_seg):
        return np.array([0.25, 0.25, 0.75, 0.75])

    def make(self, size=32, rate=0.3):
        return BlissCamSensor(
            size, size, roi_predictor=self._center_predictor,
            sampling_rate=rate, seed=0,
        )

    def test_first_frame_bootstraps(self):
        sensor = self.make()
        assert sensor.capture(np.zeros((32, 32)), None) is None

    def test_capture_pipeline(self):
        rng = np.random.default_rng(8)
        sensor = self.make()
        sensor.capture(rng.random((32, 32)), None)
        out = sensor.capture(rng.random((32, 32)), None)
        assert out is not None
        assert out.roi_box == (8, 8, 24, 24)
        assert out.sampled_pixels > 0
        # Sampling confined to the ROI.
        outside = out.sample_mask.copy()
        outside[8:24, 8:24] = False
        assert not outside.any()

    def test_host_decode_recovers_sampled_pixels(self):
        rng = np.random.default_rng(9)
        sensor = self.make()
        frame0 = rng.random((32, 32))
        frame1 = rng.random((32, 32))
        sensor.capture(frame0, None)
        out = sensor.capture(frame1, None)
        sparse, mask = sensor.host_decode(out)
        np.testing.assert_array_equal(mask, out.sample_mask)
        # Recovered values match the original within quantization error.
        err = np.abs(sparse[mask] - frame1[mask])
        assert err.max() < 2 / 1023

    def test_eventification_tracks_motion(self):
        from repro.synth import EyeGeometry, EyeRenderer, EyeState

        rng = np.random.default_rng(10)
        renderer = EyeRenderer(EyeGeometry(), 32, 32, rng)
        sensor = self.make()
        a = renderer.render(EyeState(gaze_h=0.0)).image
        b = renderer.render(EyeState(gaze_h=15.0)).image
        sensor.capture(a, None)
        out = sensor.capture(b, None)
        assert out.event_map.sum() > 0

    def test_static_scene_produces_few_events(self):
        sensor = self.make()
        frame = np.full((32, 32), 0.5)
        sensor.capture(frame, None)
        out = sensor.capture(frame, None)
        # Comparator noise may fire a stray event, but not many.
        assert out.event_map.mean() < 0.05

    def test_transmitted_bytes_below_full_frame(self):
        rng = np.random.default_rng(11)
        sensor = self.make(rate=0.2)
        sensor.capture(rng.random((32, 32)), None)
        out = sensor.capture(rng.random((32, 32)), None)
        full_frame_bytes = 32 * 32 * 10 // 8
        assert out.transmitted_bytes < full_frame_bytes

    def test_reset_clears_state(self):
        sensor = self.make()
        sensor.capture(np.zeros((32, 32)), None)
        sensor.reset()
        assert sensor.capture(np.zeros((32, 32)), None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BlissCamSensor(32, 32, self._center_predictor, sampling_rate=0.0)
        sensor = self.make()
        with pytest.raises(ValueError):
            sensor.capture(np.zeros((8, 8)), None)
