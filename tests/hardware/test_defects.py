"""Failure-injection tests: defective pixels through the BlissCam datapath."""

import numpy as np
import pytest

from repro.hardware.sensor import BlissCamSensor
from repro.hardware.sensor.defects import DefectMap
from repro.sampling import eventify


def make_defects(shape=(32, 32), seed=0, **kwargs):
    return DefectMap.random(shape, np.random.default_rng(seed), **kwargs)


class TestDefectMap:
    def test_apply_overrides_values(self):
        defects = DefectMap.random(
            (16, 16), np.random.default_rng(1),
            dead_fraction=0.05, hot_fraction=0.05, stuck_fraction=0.05,
        )
        frame = np.full((16, 16), 0.3)
        out = defects.apply(frame)
        assert np.all(out[defects.dead] == 0.0)
        assert np.all(out[defects.hot] == 1.0)
        assert np.all(out[defects.stuck] == defects.stuck_value)
        clean = ~defects.any_defect
        np.testing.assert_array_equal(out[clean], frame[clean])

    def test_random_density(self):
        defects = make_defects((200, 200), dead_fraction=0.01, hot_fraction=0.01)
        total_fraction = defects.defect_count / (200 * 200)
        assert 0.01 < total_fraction < 0.03

    def test_none_has_no_defects(self):
        assert DefectMap.none((8, 8)).defect_count == 0

    def test_overlap_rejected(self):
        mask = np.ones((4, 4), dtype=bool)
        with pytest.raises(ValueError):
            DefectMap(dead=mask, hot=mask, stuck=np.zeros((4, 4), dtype=bool))

    def test_shape_mismatch_rejected(self):
        defects = DefectMap.none((8, 8))
        with pytest.raises(ValueError):
            defects.apply(np.zeros((4, 4)))

    def test_excessive_density_rejected(self):
        with pytest.raises(ValueError):
            make_defects(dead_fraction=0.4, hot_fraction=0.4)


class TestDefectRobustness:
    """BlissCam's differencing makes static defects invisible to the cue."""

    def test_static_defects_produce_no_events(self):
        rng = np.random.default_rng(2)
        defects = make_defects(
            dead_fraction=0.02, hot_fraction=0.02, stuck_fraction=0.02
        )
        base = rng.random((32, 32)) * 0.2 + 0.4
        moving = base.copy()
        moving[10:20, 10:20] += 0.3  # genuine motion
        prev = defects.apply(base)
        cur = defects.apply(moving)
        events = eventify(prev, cur)
        # No event at any defective pixel: they are constant across frames.
        assert not events[defects.any_defect].any()
        assert events.any()  # genuine motion still detected

    def test_sensor_pipeline_survives_defects(self):
        rng = np.random.default_rng(3)
        defects = make_defects(dead_fraction=0.01, hot_fraction=0.01)
        sensor = BlissCamSensor(
            32, 32,
            roi_predictor=lambda e, s: np.array([0.2, 0.2, 0.8, 0.8]),
            sampling_rate=0.3,
            seed=0,
        )
        frames = [defects.apply(rng.random((32, 32))) for _ in range(3)]
        sensor.capture(frames[0], None)
        for frame in frames[1:]:
            out = sensor.capture(frame, None)
            assert out is not None
            sparse, mask = sensor.host_decode(out)
            assert np.isfinite(sparse).all()
            # Dead pixels that got sampled decode as unsampled (code 0 ->
            # RLE zero-run), shrinking the mask but never corrupting it.
            assert not (sparse > 1.0).any()

    def test_event_rate_unaffected_by_defect_density(self):
        """Static scenes stay quiet regardless of how many defects exist."""
        rng = np.random.default_rng(4)
        frame = rng.random((32, 32))
        for density in (0.0, 0.02, 0.1):
            defects = DefectMap.random(
                (32, 32), np.random.default_rng(5), dead_fraction=density
            )
            prev = defects.apply(frame)
            cur = defects.apply(frame)
            assert not eventify(prev, cur).any()
