"""Tests for the eventification noise analysis and the power-budget model."""

import numpy as np
import pytest

from repro.hardware.power_budget import HeadsetBudget
from repro.hardware.sensor import noise_analysis
from repro.hardware.sensor.noise_analysis import (
    EventificationErrorModel,
    adc_code_error_probability,
)

#: Only the Gaussian-tail queries need scipy — an optional extra
#: (blisscam-repro[analysis]).  The zero-noise fast paths and the
#: validation checks (which raise *before* the scipy requirement) run
#: everywhere, pinning the scipy-less behavior this repo supports.
needs_scipy = pytest.mark.skipif(
    noise_analysis.norm is None, reason="scipy not installed"
)


def test_scipy_is_optional():
    # Importing the module (and the zero-noise fast paths) must work
    # without scipy; only the Gaussian-tail queries require it.
    model = EventificationErrorModel(noise_rms=0.0, sigma=15 / 255)
    assert model.false_event_probability(0.0) == 0.0
    assert adc_code_error_probability(0.0) == 0.0


class TestEventificationErrorModel:
    def test_zero_noise_is_error_free(self):
        model = EventificationErrorModel(noise_rms=0.0, sigma=15 / 255)
        assert model.false_event_probability(0.0) == 0.0
        assert model.missed_event_probability(0.5) == 0.0

    @needs_scipy
    def test_false_rate_grows_with_noise(self):
        quiet = EventificationErrorModel(0.005, 15 / 255)
        loud = EventificationErrorModel(0.02, 15 / 255)
        assert loud.false_event_probability() > quiet.false_event_probability()

    @needs_scipy
    def test_false_rate_grows_near_threshold(self):
        model = EventificationErrorModel(0.01, 15 / 255)
        assert model.false_event_probability(0.05) > model.false_event_probability(
            0.0
        )

    @needs_scipy
    def test_missed_rate_shrinks_for_large_events(self):
        model = EventificationErrorModel(0.01, 15 / 255)
        assert model.missed_event_probability(0.5) < model.missed_event_probability(
            0.07
        )

    def test_missed_requires_true_event(self):
        model = EventificationErrorModel(0.01, 15 / 255)
        with pytest.raises(ValueError):
            model.missed_event_probability(0.01)

    @needs_scipy
    def test_max_tolerable_noise_meets_budget(self):
        """The designed margin: at the returned noise level, the false
        rate equals the budget (the paper's 'no functional errors')."""
        model = EventificationErrorModel(0.01, 15 / 255)
        budget = 1e-4
        tolerable = model.max_tolerable_noise(budget)
        at_limit = EventificationErrorModel(tolerable, 15 / 255)
        assert at_limit.false_event_probability() == pytest.approx(budget, rel=1e-6)

    @needs_scipy
    def test_designed_operating_point_is_safe(self):
        """Our sensor's default comparator noise (1 LSB) against sigma=15
        produces essentially zero spurious events per frame."""
        model = EventificationErrorModel(noise_rms=1 / 1023, sigma=15 / 255)
        expected = model.expected_false_events(640 * 400)
        assert expected < 1e-6

    @needs_scipy
    def test_expected_false_events_includes_scene_noise(self):
        model = EventificationErrorModel(0.005, 15 / 255)
        clean = model.expected_false_events(10000, background_diff_rms=0.0)
        noisy = model.expected_false_events(10000, background_diff_rms=0.02)
        assert noisy > clean

    def test_validation(self):
        with pytest.raises(ValueError):
            EventificationErrorModel(-0.1, 0.1)
        with pytest.raises(ValueError):
            EventificationErrorModel(0.1, 0.0)
        with pytest.raises(ValueError):
            EventificationErrorModel(0.01, 0.1).max_tolerable_noise(2.0)


class TestAdcErrorProbability:
    def test_zero_noise(self):
        assert adc_code_error_probability(0.0) == 0.0

    @needs_scipy
    def test_monotone_in_noise(self):
        assert adc_code_error_probability(1e-3) > adc_code_error_probability(1e-4)

    @needs_scipy
    def test_lower_bit_depth_more_robust(self):
        assert adc_code_error_probability(1e-3, bit_depth=8) < (
            adc_code_error_probability(1e-3, bit_depth=12)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            adc_code_error_probability(-1e-3)
        with pytest.raises(ValueError):
            adc_code_error_probability(1e-3, bit_depth=0)


class TestHeadsetBudget:
    def test_blisscam_cheaper_than_conventional(self):
        budget = HeadsetBudget()
        full = budget.tracking_power("NPU-Full", 120)
        bliss = budget.tracking_power("BlissCam", 120)
        assert bliss < full / 3

    def test_report_fields(self):
        report = HeadsetBudget().report("BlissCam", 120)
        assert 0 < report.budget_fraction < 1
        assert report.power_w > 0
        assert report.battery_hours > 0

    def test_two_eyes_double_one(self):
        one = HeadsetBudget(num_eyes=1).tracking_power("BlissCam", 120)
        two = HeadsetBudget(num_eyes=2).tracking_power("BlissCam", 120)
        assert two == pytest.approx(2 * one)

    def test_battery_gain_positive(self):
        gain = HeadsetBudget().battery_gain_hours("NPU-Full", "BlissCam", 120)
        assert gain > 0

    def test_over_budget_raises(self):
        tiny = HeadsetBudget(total_power_w=0.01)
        with pytest.raises(ValueError):
            tiny.report("NPU-Full", 120)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeadsetBudget(total_power_w=0)
        with pytest.raises(ValueError):
            HeadsetBudget(num_eyes=0)
