"""Tests for the analog phase sequencer and CSI-2 packet framing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.mipi_packet import (
    CsiPacketizer,
    crc16_x25,
    header_ecc,
)
from repro.hardware.sensor.phase_controller import (
    PHASE_SWITCHES,
    Phase,
    PhaseController,
)


class TestPhaseController:
    def test_starts_in_hold_with_feedback_closed(self):
        controller = PhaseController()
        assert controller.phase is Phase.HOLD
        assert controller.switches.hold_closed

    def test_legal_frame_sequence(self):
        controller = PhaseController()
        total = controller.run_frame(
            exposure_s=8.3e-3,
            eventify_s=5e-6,
            roi_s=150e-6,
            adc_s=5e-6,
            readout_s=30e-6,
        )
        assert controller.phase is Phase.HOLD
        assert total == pytest.approx(8.3e-3 + 5e-6 + 150e-6 + 5e-6 + 30e-6)
        assert controller.frames_completed() == 1

    def test_illegal_transition_rejected(self):
        controller = PhaseController()
        with pytest.raises(ValueError):
            controller.advance(Phase.ADC, 1e-6)  # HOLD -> ADC skips stages

    def test_cannot_start_frame_mid_sequence(self):
        controller = PhaseController()
        controller.advance(Phase.EVENTIFY_POS, 1e-6)
        with pytest.raises(RuntimeError):
            controller.run_frame(1e-3, 1e-6, 1e-6, 1e-6, 1e-6)

    def test_negative_dwell_rejected(self):
        controller = PhaseController()
        with pytest.raises(ValueError):
            controller.advance(Phase.EVENTIFY_POS, -1.0)

    def test_switch_states_match_fig10(self):
        """HOLD buffers (feedback closed); eventify applies +/-sigma; ADC
        connects the ramp and runs the counter."""
        assert PHASE_SWITCHES[Phase.HOLD].hold_closed
        assert PHASE_SWITCHES[Phase.EVENTIFY_POS].caz_plus_source == "vth1"
        assert PHASE_SWITCHES[Phase.EVENTIFY_NEG].caz_plus_source == "vth2"
        adc = PHASE_SWITCHES[Phase.ADC]
        assert adc.caz_plus_source == "ramp" and adc.counter_enabled
        # SRAM is power-gated during HOLD (that duty cycle is the RNG).
        assert not PHASE_SWITCHES[Phase.HOLD].sram_powered

    def test_sustained_rate_validation(self):
        controller = PhaseController()
        for _ in range(3):
            controller.run_frame(8e-3, 5e-6, 150e-6, 5e-6, 30e-6)
        assert controller.validate_against_period(1 / 120)
        assert not controller.validate_against_period(1 / 200)

    def test_validation_needs_complete_frames(self):
        with pytest.raises(RuntimeError):
            PhaseController().validate_against_period(1 / 120)

    def test_history_records_sequence(self):
        controller = PhaseController()
        controller.run_frame(1e-3, 1e-6, 1e-6, 1e-6, 1e-6)
        assert controller.history[0] is Phase.HOLD
        assert controller.history[-1] is Phase.HOLD
        assert Phase.EVENTIFY_POS in controller.history


class TestCrcAndEcc:
    def test_crc_known_vector(self):
        # CRC-16/X25 of "123456789" is 0x906E.
        assert crc16_x25(b"123456789") == 0x906E

    def test_crc_detects_flip(self):
        data = bytes(range(64))
        corrupted = bytes([data[0] ^ 1]) + data[1:]
        assert crc16_x25(data) != crc16_x25(corrupted)

    def test_ecc_changes_with_header(self):
        assert header_ecc(0x00AB12) != header_ecc(0x00AB13)

    def test_ecc_range_check(self):
        with pytest.raises(ValueError):
            header_ecc(1 << 24)


class TestCsiPacketizer:
    @given(
        codes=st.lists(st.integers(0, 1023), min_size=0, max_size=400),
    )
    @settings(max_examples=40, deadline=None)
    def test_codes_roundtrip(self, codes):
        packetizer = CsiPacketizer(max_payload_bytes=128)
        arr = np.array(codes, dtype=np.int64)
        packets = packetizer.pack_codes(arr)
        back = packetizer.unpack_codes(packets, num_pixels=arr.size)
        np.testing.assert_array_equal(back, arr)

    def test_raw10_packing_density(self):
        """RAW10 packs 4 pixels into 5 bytes."""
        packetizer = CsiPacketizer()
        packets = packetizer.pack_codes(np.zeros(400, dtype=np.int64))
        payload = sum(len(p.payload) for p in packets)
        assert payload == 400 * 5 // 4

    def test_corrupted_payload_detected(self):
        packetizer = CsiPacketizer()
        packets = packetizer.pack_bytes(bytes(range(100)))
        bad = packets[0]
        tampered = type(bad)(
            data_id=bad.data_id,
            payload=bytes([bad.payload[0] ^ 0xFF]) + bad.payload[1:],
            ecc=bad.ecc,
            checksum=bad.checksum,
        )
        with pytest.raises(ValueError):
            packetizer.unpack_bytes([tampered])

    def test_corrupted_header_detected(self):
        packetizer = CsiPacketizer()
        packets = packetizer.pack_bytes(bytes(range(10)))
        bad = packets[0]
        tampered = type(bad)(
            data_id=bad.data_id,
            payload=bad.payload + b"\x00",  # word count now wrong
            ecc=bad.ecc,
            checksum=crc16_x25(bad.payload + b"\x00"),
        )
        with pytest.raises(ValueError):
            packetizer.unpack_bytes([tampered])

    def test_large_stream_splits_into_packets(self):
        packetizer = CsiPacketizer(max_payload_bytes=256)
        packets = packetizer.pack_bytes(bytes(1000))
        assert len(packets) == 4
        assert packetizer.unpack_bytes(packets) == bytes(1000)

    def test_wire_overhead_small_for_real_payloads(self):
        """Framing overhead on a BlissCam-sized sparse payload is ~<1 %."""
        packetizer = CsiPacketizer()
        sampled_pixels = 12_400  # ~4.85 % of 640x400
        packets = packetizer.pack_codes(
            np.random.default_rng(0).integers(1, 1024, sampled_pixels)
        )
        payload = sum(len(p.payload) for p in packets)
        overhead = packetizer.wire_bytes(packets) / payload - 1
        assert overhead < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            CsiPacketizer(max_payload_bytes=0)
        with pytest.raises(ValueError):
            CsiPacketizer().pack_codes(np.array([5000]))
        packetizer = CsiPacketizer()
        packets = packetizer.pack_codes(np.arange(4))
        with pytest.raises(ValueError):
            packetizer.unpack_codes(packets, num_pixels=100)
